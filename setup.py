"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP-517 editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
