"""Tests for the Elman RNN forecaster, including a BPTT gradient check."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import ElmanForecaster
from repro import nn


def windows_from(series, w):
    return np.stack([series[i : i + w] for i in range(series.shape[0] - w)])


class TestElmanForecaster:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ElmanForecaster(window=1, n_channels=2)
        with pytest.raises(ConfigurationError):
            ElmanForecaster(window=8, n_channels=0)
        with pytest.raises(ConfigurationError):
            ElmanForecaster(window=8, n_channels=2, hidden=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ElmanForecaster(window=6, n_channels=2).predict(np.zeros((6, 2)))

    def test_forecast_shape(self, small_windows):
        model = ElmanForecaster(window=8, n_channels=3, epochs=2, seed=0)
        model.fit(small_windows)
        assert model.predict(small_windows[0]).shape == (3,)

    def test_bptt_gradients_match_finite_differences(self):
        rng = np.random.default_rng(0)
        model = ElmanForecaster(window=5, n_channels=2, hidden=4, seed=0)
        inputs = rng.normal(size=(3, 4, 2))
        targets = rng.normal(size=(3, 2))

        def loss():
            forecast, _ = model._forward(inputs)
            return nn.mse_loss(forecast, targets)

        for param in model.parameters():
            param.zero_grad()
        forecast, states = model._forward(inputs)
        model._backward(inputs, states, nn.mse_loss_grad(forecast, targets))
        eps = 1e-6
        for param in model.parameters():
            numeric = np.zeros_like(param.value)
            it = np.nditer(param.value, flags=["multi_index"])
            while not it.finished:
                idx = it.multi_index
                original = param.value[idx]
                param.value[idx] = original + eps
                plus = loss()
                param.value[idx] = original - eps
                minus = loss()
                param.value[idx] = original
                numeric[idx] = (plus - minus) / (2 * eps)
                it.iternext()
            np.testing.assert_allclose(
                param.grad, numeric, atol=1e-5, rtol=1e-4,
                err_msg=param.name,
            )

    def test_learns_sinusoid(self):
        t = np.arange(400, dtype=np.float64)
        series = np.stack(
            [np.sin(2 * np.pi * t / 25), np.cos(2 * np.pi * t / 25)], axis=1
        )
        w = 12
        windows = windows_from(series, w)
        model = ElmanForecaster(window=w, n_channels=2, epochs=60, seed=0)
        model.fit(windows)
        errors = [
            np.linalg.norm(model.predict(window) - window[-1])
            for window in windows[-50:]
        ]
        assert np.mean(errors) < 0.3

    def test_training_reduces_loss(self, small_windows):
        model = ElmanForecaster(window=8, n_channels=3, seed=0)
        first = model.fit(small_windows, epochs=1)
        last = model.finetune(small_windows, epochs=40)
        assert last < first

    def test_gradient_clipping_keeps_finite(self, rng):
        windows = rng.normal(scale=1e4, size=(30, 8, 2))
        model = ElmanForecaster(window=8, n_channels=2, epochs=5, seed=0)
        model.fit(windows)
        for param in model.parameters():
            assert np.all(np.isfinite(param.value))

    def test_wrong_shape_rejected(self, small_windows):
        model = ElmanForecaster(window=8, n_channels=3, epochs=1)
        model.fit(small_windows)
        with pytest.raises(ConfigurationError):
            model.predict(np.zeros((7, 3)))

    def test_streams_through_framework(self, rng):
        from repro.core.config import DetectorConfig
        from repro.core.registry import AlgorithmSpec, build_detector
        from repro.core.types import TimeSeries
        from repro.streaming import run_stream

        n = 500
        t = np.arange(n, dtype=np.float64)
        values = np.stack(
            [np.sin(2 * np.pi * t / 40), np.cos(2 * np.pi * t / 40)], axis=1
        ) + rng.normal(scale=0.05, size=(n, 2))
        series = TimeSeries(values=values, labels=np.zeros(n, dtype=np.int_))
        config = DetectorConfig(window=8, train_capacity=48, fit_epochs=5)
        detector = build_detector(AlgorithmSpec("rnn", "sw", "musigma"), 2, config)
        result = run_stream(detector, series)
        assert np.all(np.isfinite(result.scores))
