"""Tests for the Page-Hinkley drift detector (extension)."""

import numpy as np
import pytest

from repro.learning import PageHinkley
from repro.learning.base import Update, UpdateKind


def feed(detector, values, start_t=0):
    for i, value in enumerate(values):
        detector.observe(
            Update(UpdateKind.ADDED, added=np.full(4, value)), t=start_t + i
        )


class TestPageHinkley:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PageHinkley(delta=-1.0)
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_samples=1)

    def test_no_fire_before_min_samples(self, rng):
        detector = PageHinkley(min_samples=50)
        feed(detector, rng.normal(size=20))
        assert not detector.should_finetune(20, np.empty(0))

    def test_no_fire_on_stationary_stream(self, rng):
        detector = PageHinkley()
        feed(detector, rng.normal(size=500))
        assert not detector.should_finetune(500, np.empty(0))

    def test_fires_on_upward_shift(self, rng):
        detector = PageHinkley()
        feed(detector, rng.normal(size=200))
        feed(detector, rng.normal(loc=3.0, size=100), start_t=200)
        assert detector.should_finetune(300, np.empty(0))

    def test_fires_on_downward_shift(self, rng):
        detector = PageHinkley()
        feed(detector, rng.normal(size=200))
        feed(detector, rng.normal(loc=-3.0, size=100), start_t=200)
        assert detector.should_finetune(300, np.empty(0))

    def test_notify_restarts_test(self, rng):
        detector = PageHinkley()
        feed(detector, rng.normal(size=200))
        feed(detector, rng.normal(loc=3.0, size=100), start_t=200)
        assert detector.should_finetune(300, np.empty(0))
        detector.notify_finetuned(300, np.empty(0))
        # Shortly after the restart the detector must be quiet again.
        feed(detector, rng.normal(loc=3.0, size=100), start_t=300)
        assert not detector.should_finetune(400, np.empty(0))

    def test_unchanged_updates_ignored(self):
        detector = PageHinkley()
        detector.observe(Update(UpdateKind.UNCHANGED), t=0)
        assert detector._count == 0

    def test_counts_operations(self, rng):
        detector = PageHinkley()
        feed(detector, rng.normal(size=10))
        assert detector.ops.additions > 0
        detector.reset()
        assert detector.ops.additions == 0

    def test_usable_in_detector_pipeline(self, rng):
        from repro.core.config import DetectorConfig
        from repro.core.registry import AlgorithmSpec, build_detector
        from repro.core.types import TimeSeries
        from repro.streaming import run_stream

        n = 700
        values = rng.normal(size=(n, 3))
        values[400:] += 4.0
        series = TimeSeries(values=values, labels=np.zeros(n, dtype=np.int_))
        config = DetectorConfig(window=6, train_capacity=48, fit_epochs=2)
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "page_hinkley"), 3, config
        )
        result = run_stream(detector, series)
        assert result.n_finetunes >= 1
        fired = [e.t for e in result.events if e.reason == "page_hinkley"]
        assert any(t >= 400 for t in fired)
