"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def quadratic_descent(optimizer_factory, steps=200):
    """Minimize ||p - target||^2; return the final distance to the optimum."""
    param = Parameter(np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        param.grad += 2.0 * (param.value - target)
        optimizer.step()
    return float(np.linalg.norm(param.value - target))


class TestSGD:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(lambda p: nn.SGD(p, lr=0.1)) < 1e-6

    def test_momentum_converges(self):
        assert quadratic_descent(lambda p: nn.SGD(p, lr=0.05, momentum=0.9)) < 1e-4

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(2))], lr=0.1, momentum=1.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(lambda p: nn.Adam(p, lr=0.3), steps=400) < 1e-4

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(2))], beta1=1.0)
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(2))], beta2=-0.1)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction the first update has magnitude ~lr regardless
        # of the gradient scale.
        param = Parameter(np.array([0.0]))
        optimizer = nn.Adam([param], lr=0.01)
        param.grad += np.array([1234.5])
        optimizer.step()
        assert abs(param.value[0]) == pytest.approx(0.01, rel=1e-3)

    def test_zero_grad_resets(self):
        param = Parameter(np.array([0.0]))
        optimizer = nn.Adam([param])
        param.grad += 5.0
        optimizer.zero_grad()
        np.testing.assert_array_equal(param.grad, [0.0])


class TestTrainingEndToEnd:
    def test_network_learns_linear_map(self):
        rng = np.random.default_rng(1)
        true_w = rng.normal(size=(4, 2))
        x = rng.normal(size=(256, 4))
        y = x @ true_w
        net = nn.Sequential(nn.Linear(4, 8, rng), nn.Tanh(), nn.Linear(8, 2, rng))
        optimizer = nn.Adam(list(net.parameters()), lr=5e-3)
        first_loss = None
        for _ in range(300):
            optimizer.zero_grad()
            out = net(x)
            loss = nn.mse_loss(out, y)
            if first_loss is None:
                first_loss = loss
            net.backward(nn.mse_loss_grad(out, y))
            optimizer.step()
        assert loss < first_loss * 0.05
