"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import AnomalyWindow, TimeSeries, labels_from_windows


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_windows(rng: np.random.Generator) -> np.ndarray:
    """A training set of 40 windows, shape (40, 8, 3)."""
    t = np.arange(200, dtype=np.float64)
    base = np.stack(
        [
            np.sin(2 * np.pi * t / 25.0),
            np.cos(2 * np.pi * t / 25.0),
            0.5 * np.sin(2 * np.pi * t / 50.0),
        ],
        axis=1,
    )
    base += rng.normal(scale=0.05, size=base.shape)
    return np.stack([base[i : i + 8] for i in range(40)])


@pytest.fixture
def labelled_series(rng: np.random.Generator) -> TimeSeries:
    """A 600-step 2-channel series with two anomaly windows."""
    t = np.arange(600, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 40.0), np.cos(2 * np.pi * t / 40.0)], axis=1
    )
    values += rng.normal(scale=0.05, size=values.shape)
    windows = [AnomalyWindow(300, 320), AnomalyWindow(450, 465)]
    for window in windows:
        values[window.start : window.end] += 3.0
    return TimeSeries(
        values=values,
        labels=labels_from_windows(windows, 600),
        name="test/series",
        windows=windows,
    )
