"""Tests for the ADWIN drift detector (extension)."""

import numpy as np
import pytest

from repro.learning import ADWIN
from repro.learning.base import Update, UpdateKind


def feed(detector, values, start_t=0):
    for i, value in enumerate(values):
        detector.observe(
            Update(UpdateKind.ADDED, added=np.full(3, value)), t=start_t + i
        )


class TestADWIN:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ADWIN(delta=0.0)
        with pytest.raises(ValueError):
            ADWIN(max_window=10, min_subwindow=10)
        with pytest.raises(ValueError):
            ADWIN(check_every=0)

    def test_no_fire_on_stationary_stream(self, rng):
        detector = ADWIN()
        feed(detector, rng.normal(size=600))
        assert not detector.should_finetune(600, np.empty(0))

    def test_fires_on_mean_shift(self, rng):
        detector = ADWIN()
        feed(detector, rng.normal(size=300))
        feed(detector, rng.normal(loc=2.0, size=120), start_t=300)
        assert detector.should_finetune(420, np.empty(0))

    def test_window_shrinks_after_cut(self, rng):
        detector = ADWIN()
        feed(detector, rng.normal(size=300))
        length_before = detector.window_length
        feed(detector, rng.normal(loc=3.0, size=120), start_t=300)
        detector.should_finetune(420, np.empty(0))
        # The stale prefix was dropped, only the post-drift data remains.
        assert detector.window_length < length_before + 120

    def test_drift_flag_consumed_once(self, rng):
        detector = ADWIN()
        feed(detector, rng.normal(size=300))
        feed(detector, rng.normal(loc=3.0, size=120), start_t=300)
        assert detector.should_finetune(420, np.empty(0))
        # The pending flag was consumed; quiet until new evidence arrives.
        assert not detector.should_finetune(421, np.empty(0))

    def test_window_capped(self, rng):
        detector = ADWIN(max_window=100)
        feed(detector, rng.normal(size=500))
        assert detector.window_length <= 100

    def test_unchanged_updates_ignored(self):
        detector = ADWIN()
        detector.observe(Update(UpdateKind.UNCHANGED), t=0)
        assert detector.window_length == 0

    def test_reset(self, rng):
        detector = ADWIN()
        feed(detector, rng.normal(size=50))
        detector.reset()
        assert detector.window_length == 0
        assert detector.ops.additions == 0

    def test_usable_in_detector_pipeline(self, rng):
        from repro.core.config import DetectorConfig
        from repro.core.registry import AlgorithmSpec, build_detector
        from repro.core.types import TimeSeries
        from repro.streaming import run_stream

        n = 800
        values = rng.normal(size=(n, 3))
        values[500:] += 3.0
        series = TimeSeries(values=values, labels=np.zeros(n, dtype=np.int_))
        config = DetectorConfig(window=6, train_capacity=48, fit_epochs=2)
        detector = build_detector(AlgorithmSpec("ae", "sw", "adwin"), 3, config)
        result = run_stream(detector, series)
        fired = [e.t for e in result.events if e.reason == "adwin"]
        assert any(t >= 500 for t in fired)
