"""Crash-safe durability: WAL replay recovers in-flight state bitwise.

The acceptance property of :mod:`repro.serve.wal`: kill the serving
process at *any* point — mid-chunk, between a barrier checkpoint and its
log truncation, during an eviction, even with a torn half-written log
record — restart over the same directories, and the recovered score
sequence (scores, nonconformities, drift/fine-tune events) is bitwise
identical to a run that was never interrupted, with no sequence number
scored twice and replay cost bounded by the barrier interval.

In-process "crashes" abandon the service object without flush or close
(nothing on disk is touched, exactly what SIGKILL leaves behind); one
test kills a real worker process with SIGKILL through the sharded
router and lets the respawned worker self-recover.
"""

import struct

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.exceptions import ConfigurationError
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.serve import (
    DetectionService,
    RouterConfig,
    RouterService,
    ServeClient,
    ServeConfig,
    SessionWal,
    WalConfig,
    WalCorruption,
    plan_replay,
    read_records,
    wal_filename,
)
from repro.streaming import run_stream
from repro.streaming.checkpoint import save_detector

SPEC = ("ae", "sw", "kswin")
LABEL = "+".join(SPEC)

CONFIG = dict(
    window=6,
    train_capacity=24,
    fit_epochs=3,
    initial_train_size=40,
    kswin_check_every=1,
)

N = 240


def make_stream(n=N, seed=11):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    values[n // 2 :] += 1.2
    return values + rng.normal(scale=0.08, size=values.shape)


_OFFLINE_CACHE: dict[int, object] = {}


def offline_reference(values):
    key = len(values)
    if key not in _OFFLINE_CACHE:
        detector = build_detector(
            AlgorithmSpec(*SPEC), n_channels=2, config=DetectorConfig(**CONFIG)
        )
        series = TimeSeries(values=values, labels=np.zeros(len(values), dtype=int))
        _OFFLINE_CACHE[key] = run_stream(detector, series, batch_size=1)
    return _OFFLINE_CACHE[key]


def make_service(tmp_path, **overrides):
    defaults = dict(
        spill_dir=str(tmp_path / "spill"),
        wal_dir=str(tmp_path / "wal"),
        wal_barrier_interval=48,
        max_batch=16,
        max_delay_ms=0.0,
        detector=DetectorConfig(**CONFIG),
    )
    defaults.update(overrides)
    return DetectionService(ServeConfig(**defaults), autostart=False)


def stream_range(client, stream, values, start, stop, results, chunk=17):
    """Ingest ``values[start:stop]`` with the idempotent cursor and
    collect everything scored along the way into ``results``."""
    sent = start
    while sent < stop:
        reply = client.ingest(
            stream, values[sent : min(sent + chunk, stop)], expect=sent
        )
        assert reply["ok"], reply
        sent += reply["accepted"]
        reply = client.score(stream)
        assert reply["ok"], reply
        for result in reply["results"]:
            assert result["seq"] not in results, "sequence scored twice"
            results[result["seq"]] = result
    return sent


def drain(client, stream, results):
    reply = client.score(stream)
    assert reply["ok"], reply
    for result in reply["results"]:
        results.setdefault(result["seq"], result)


def assert_matches_reference(results, values):
    ref = offline_reference(values)
    n = len(values)
    assert sorted(results) == list(range(n))
    scores = np.array([results[i]["score"] for i in range(n)])
    ncs = np.array([results[i]["nonconformity"] for i in range(n)])
    assert np.array_equal(scores, ref.scores)
    assert np.array_equal(ncs, ref.nonconformities)
    # the fine-tune history round-tripped too: the served flags land on
    # exactly the steps where the offline run records events
    finetuned = {i for i in range(n) if results[i]["finetuned"]}
    assert finetuned == {e.t for e in ref.events}


# ----------------------------------------------------------------------
# log-format unit tests
# ----------------------------------------------------------------------
def test_wal_config_validation():
    with pytest.raises(ConfigurationError):
        WalConfig(dir="x", fsync="sometimes")
    with pytest.raises(ConfigurationError):
        WalConfig(dir="x", barrier_interval=0)


def test_wal_record_roundtrip_and_torn_tail(tmp_path):
    wal = SessionWal(WalConfig(dir=tmp_path), "stream-a")
    wal.open({"spec": LABEL, "n_channels": 2, "config": {}, "scorer": None})
    blocks = [np.arange(6, dtype=np.float64).reshape(3, 2) + i for i in range(4)]
    seq = 0
    for block in blocks:
        wal.append(seq, block)
        seq += len(block)
    wal.close(delete=False)

    records, good_bytes, torn = read_records(wal.path)
    assert not torn
    assert [r["kind"] for r in records] == ["open"] + ["ingest"] * 4
    for record, block in zip(records[1:], blocks):
        assert np.array_equal(record["rows"], block)

    # Tear the tail mid-record (a crash mid-append): the complete prefix
    # survives, the torn bytes are reported.
    size = wal.path.stat().st_size
    with open(wal.path, "rb+") as handle:
        handle.truncate(size - 5)
    records2, good2, torn2 = read_records(wal.path)
    assert torn2
    assert [r["kind"] for r in records2] == ["open"] + ["ingest"] * 3
    assert good2 < size - 5

    # A corrupted (bit-flipped) record also reads as a tear, stopping at
    # the last intact record — CRC catches silent corruption.
    data = bytearray(wal.path.read_bytes())
    data[good2 + 12] ^= 0xFF
    wal.path.write_bytes(bytes(data))
    records3, _, torn3 = read_records(wal.path)
    assert torn3 and len(records3) == len(records2)


def test_barrier_compaction_is_lazy(tmp_path):
    """Barriers advance the replay bound without rewriting the log until
    the stale prefix is worth reclaiming; a forced compaction truncates
    everything at or before the barrier clock."""
    detector = build_detector(
        AlgorithmSpec(*SPEC), n_channels=2, config=DetectorConfig(**CONFIG)
    )
    detector.step_chunk(make_stream(12))

    wal = SessionWal(WalConfig(dir=tmp_path, fsync="never"), "s")
    wal.open({"spec": LABEL, "n_channels": 2, "config": {}, "scorer": None})
    wal.append(0, make_stream(12))
    size_before = wal.path.stat().st_size
    assert wal.barrier(detector) == 0  # tiny log: no rewrite
    assert wal.barrier_t == detector.t
    assert wal.path.stat().st_size == size_before

    assert wal.barrier(detector, compact=True) == 12
    assert wal.path.stat().st_size < size_before
    records, _, torn = read_records(wal.path)
    assert not torn
    assert [r["kind"] for r in records] == ["open"]
    wal.close(delete=False)


def test_plan_replay_dedups_and_trims():
    def ingest(seq_from, n):
        return {
            "kind": "ingest",
            "seq_from": seq_from,
            "rows": np.zeros((n, 2)),
        }

    open_record = {"kind": "open", "stream": "s", "n_channels": 2}
    # duplicate replay (a retried append) + an overlap get dropped/trimmed
    records = [open_record, ingest(0, 4), ingest(0, 4), ingest(2, 4), ingest(6, 2)]
    meta, blocks, dropped = plan_replay(records, barrier_t=-1)
    assert meta["stream"] == "s"
    assert [(s, len(r)) for s, r in blocks] == [(0, 4), (4, 2), (6, 2)]
    assert dropped == 6

    # entries at or before the barrier clock are already scored
    meta, blocks, dropped = plan_replay(
        [open_record, ingest(0, 4), ingest(4, 4)], barrier_t=5
    )
    assert [(s, len(r)) for s, r in blocks] == [(6, 2)]
    assert dropped == 6

    # a gap is an acknowledged record gone missing: hard error
    with pytest.raises(WalCorruption):
        plan_replay([open_record, ingest(0, 4), ingest(6, 2)], barrier_t=-1)
    # as is a log with no open record
    with pytest.raises(WalCorruption):
        plan_replay([ingest(0, 4)], barrier_t=-1)


# ----------------------------------------------------------------------
# crash / recovery equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cut", [23, 52, 121, 170, 239])
def test_crash_recovery_bitwise_equal(tmp_path, cut):
    """Kill at an arbitrary stream position (some in flight), restart,
    finish: scores and events bitwise match an uninterrupted run."""
    values = make_stream()
    results: dict[int, dict] = {}

    service = make_service(tmp_path)
    client = ServeClient(service)
    assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]
    sent = stream_range(client, "s", values, 0, cut, results)

    # Leave up to a chunk in flight, unscored and uncollected, then
    # "crash": abandon the service without flush/close — exactly the
    # on-disk state SIGKILL leaves.
    tail = min(sent + 13, N)
    reply = client.ingest("s", values[sent:tail], expect=sent)
    assert reply["ok"], reply
    del service, client

    restarted = make_service(tmp_path)
    counters = restarted.telemetry.as_dict()["counters"]
    assert counters.get("wal_recovered") == 1
    # Replay is bounded: at most one barrier interval plus what was in
    # flight at the kill.
    assert counters.get("wal_replayed", 0) <= 48 + 16 + 13
    client = ServeClient(restarted)
    drain(client, "s", results)  # re-emitted unacknowledged results
    stream_range(client, "s", values, tail, N, results)
    drain(client, "s", results)
    assert_matches_reference(results, values)

    # close drains leftovers into the reply and deletes the on-disk state
    reply = client.close("s")
    assert reply["ok"], reply
    assert list((tmp_path / "wal").glob("session-*")) == []


def test_crash_between_barrier_and_truncation(tmp_path):
    """A new barrier checkpoint with an untruncated log replays clean:
    the already-scored entries dedup against the checkpoint's clock."""
    values = make_stream()
    results: dict[int, dict] = {}

    service = make_service(tmp_path)
    client = ServeClient(service)
    assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]
    sent = stream_range(client, "s", values, 0, 150, results)

    # Simulate the torn barrier: checkpoint saved, crash before the log
    # compaction — by re-saving the barrier at the current clock and
    # leaving the log alone.
    session = service.store.get("s")
    with session.lock:
        save_detector(session.detector, session.wal.barrier_path, durable=True)
    del service, client

    restarted = make_service(tmp_path)
    counters = restarted.telemetry.as_dict()["counters"]
    assert counters.get("wal_recovered") == 1
    client = ServeClient(restarted)
    stream_range(client, "s", values, sent, N, results)
    drain(client, "s", results)
    assert_matches_reference(results, values)


def test_crash_during_eviction_window(tmp_path):
    """Evict (barrier + durable spill), keep streaming, crash: recovery
    adopts the newest checkpoint of the two."""
    values = make_stream()
    results: dict[int, dict] = {}

    service = make_service(tmp_path)
    client = ServeClient(service)
    assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]
    sent = stream_range(client, "s", values, 0, 100, results)
    assert client.evict("s")["ok"]
    sent = stream_range(client, "s", values, sent, 130, results)
    del service, client

    restarted = make_service(tmp_path)
    assert restarted.telemetry.as_dict()["counters"].get("wal_recovered") == 1
    client = ServeClient(restarted)
    drain(client, "s", results)  # re-emitted replayed results
    stream_range(client, "s", values, sent, N, results)
    drain(client, "s", results)
    assert_matches_reference(results, values)


def test_torn_tail_recovery(tmp_path):
    """Truncate the log mid-record (crash mid-append): the torn block
    was never acknowledged, so recovery proceeds without it and the
    client's normal resend completes the stream."""
    values = make_stream()
    results: dict[int, dict] = {}

    service = make_service(tmp_path)
    client = ServeClient(service)
    assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]
    sent = stream_range(client, "s", values, 0, 90, results)
    del service, client

    wal_path = tmp_path / "wal" / wal_filename("s")
    size = wal_path.stat().st_size
    with open(wal_path, "rb+") as handle:
        handle.truncate(size - 7)

    restarted = make_service(tmp_path)
    counters = restarted.telemetry.as_dict()["counters"]
    assert counters.get("wal_recovered") == 1
    assert counters.get("wal_torn_tails") == 1
    client = ServeClient(restarted)
    drain(client, "s", results)
    # the torn block's points were lost pre-ack: find the resend cursor
    recovered_seq = restarted.store.get("s").seq
    assert recovered_seq <= sent
    for seq in range(recovered_seq, sent):
        results.pop(seq, None)
    stream_range(client, "s", values, recovered_seq, N, results)
    drain(client, "s", results)
    assert_matches_reference(results, values)


def test_corrupt_log_reported_not_fatal(tmp_path):
    """A log recovery cannot repair (a gap) is left on disk, counted,
    and the service still starts."""
    values = make_stream()
    service = make_service(tmp_path)
    client = ServeClient(service)
    assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]
    stream_range(client, "s", values, 0, 40, {})
    del service, client

    # Surgically remove a middle ingest record to fake a gap.
    wal_path = tmp_path / "wal" / wal_filename("s")
    frame = struct.Struct("<II")
    data = wal_path.read_bytes()
    spans = []
    offset = 0
    while offset < len(data):
        length, _ = frame.unpack_from(data, offset)
        spans.append((offset, offset + frame.size + length))
        offset += frame.size + length
    assert len(spans) >= 4
    start, end = spans[2]
    wal_path.write_bytes(data[:start] + data[end:])

    restarted = make_service(tmp_path)
    counters = restarted.telemetry.as_dict()["counters"]
    assert counters.get("wal_recovery_failed") == 1
    assert "wal_recovered" not in counters
    assert wal_path.exists()  # left for the operator
    assert restarted.stats_payload()["orphaned_wals"] == [wal_path.name]


# ----------------------------------------------------------------------
# idempotent ingest + close ordering
# ----------------------------------------------------------------------
def test_ingest_idempotent_replay(tmp_path):
    values = make_stream()
    service = make_service(tmp_path)
    client = ServeClient(service)
    assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]

    first = client.ingest("s", values[:20], expect=0)
    assert first["ok"] and "duplicate" not in first

    # exact replay of an acknowledged block: dropped, re-acked
    replay = client.ingest("s", values[:20], expect=0)
    assert replay["ok"] and replay["duplicate"] is True
    assert (replay["seq_from"], replay["seq_to"]) == (0, 19)

    # a gapped or partially overlapping ingest is a protocol violation
    gapped = client.ingest("s", values[30:40], expect=30)
    assert not gapped["ok"] and gapped["error"]["type"] == "bad_points"
    overlapping = client.ingest("s", values[10:40], expect=10)
    assert not overlapping["ok"]

    # nothing was double-enqueued: the stream completes bitwise-equal
    results: dict[int, dict] = {}
    drain(client, "s", results)
    stream_range(client, "s", values, 20, N, results)
    drain(client, "s", results)
    assert_matches_reference(results, values)
    counters = service.telemetry.as_dict()["counters"]
    assert counters.get("ingest_deduped") == 1


def test_close_deletes_files_last(tmp_path, monkeypatch):
    """A crash injected between close's bookkeeping and the file
    deletion leaves a recoverable stream: the final barrier ran first,
    so the detector state survives at the stream's exact clock."""
    values = make_stream()
    service = make_service(tmp_path)
    client = ServeClient(service)
    assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]
    reply = client.ingest("s", values[:60], expect=0)
    assert reply["ok"], reply

    def explode(session):
        raise RuntimeError("injected crash before deletion")

    monkeypatch.setattr(service.store, "_delete_session_files", explode)
    reply = client.close("s")
    assert not reply["ok"]  # the injected crash surfaced
    monkeypatch.undo()

    wal_path = tmp_path / "wal" / wal_filename("s")
    assert wal_path.exists(), "crash mid-close must leave the log on disk"

    restarted = make_service(tmp_path)
    assert restarted.telemetry.as_dict()["counters"].get("wal_recovered") == 1
    session = restarted.store.get("s")
    assert session.seq == 60  # every acknowledged point survived

    # the recovered detector continues bitwise-on-track from seq 60
    ref = offline_reference(values)
    client = ServeClient(restarted)
    results: dict[int, dict] = {}
    drain(client, "s", results)
    stream_range(client, "s", values, 60, N, results)
    drain(client, "s", results)
    tail = sorted(seq for seq in results if seq >= 60)
    assert tail == list(range(60, N))
    scores = np.array([results[seq]["score"] for seq in tail])
    assert np.array_equal(scores, ref.scores[60:])

    # a clean close drains leftovers into the reply and deletes files
    reply = client.close("s")
    assert reply["ok"], reply
    assert reply["results"] == []
    assert not wal_path.exists()
    assert list((tmp_path / "spill").glob("session-*")) == []


def test_run_log_deterministic_across_recovery(tmp_path):
    """The run log holds only logical state — two recovered runs over the
    same WAL produce identical entries."""
    values = make_stream()
    for round_dir in ("a", "b"):
        root = tmp_path / round_dir
        service = make_service(root)
        client = ServeClient(service)
        assert client.create("s", spec=LABEL, n_channels=2, config=CONFIG)["ok"]
        stream_range(client, "s", values, 0, 80, {})
        del service, client
    logs = []
    for round_dir in ("a", "b"):
        restarted = make_service(tmp_path / round_dir)
        logs.append(restarted.run_log.entries())
    assert logs[0] == logs[1]
    assert [entry["kind"] for entry in logs[0]] == ["session_recovered"]


# ----------------------------------------------------------------------
# real SIGKILL through the sharded router
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sigkill_worker_self_recovers_bitwise(tmp_path):
    values = make_stream()
    worker_config = ServeConfig(
        max_delay_ms=5.0,
        wal_dir="wal",  # per-worker path assigned by the router
        wal_barrier_interval=48,
        detector=DetectorConfig(**CONFIG),
    )
    router = RouterService(
        RouterConfig(n_workers=2, spill_dir=str(tmp_path), worker=worker_config)
    )
    try:
        client = ServeClient(router)
        reply = client.create("s", spec=LABEL, n_channels=2, config=CONFIG)
        assert reply["ok"], reply
        owner = reply["worker"]

        results: dict[int, dict] = {}
        sent = stream_range(client, "s", values, 0, 140, results)
        # in-flight points, then SIGKILL — no evict, no flush, no mercy
        reply = client.ingest("s", values[sent : sent + 20], expect=sent)
        assert reply["ok"], reply
        sent += 20
        router.workers[owner].kill()
        assert not router.workers[owner].alive()

        drain(client, "s", results)  # heals the worker, replays the log
        stream_range(client, "s", values, sent, N, results)
        drain(client, "s", results)
        assert_matches_reference(results, values)

        counters = router.telemetry.counters
        assert counters.get("workers_respawned") == 1
        assert counters.get("streams_recovered") == 1
        assert "streams_restarted" not in counters
    finally:
        router.shutdown()
