"""Tests for detector checkpointing."""

import pickle

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.streaming import (
    CHECKPOINT_VERSION,
    load_detector,
    run_stream,
    save_detector,
)


def make_stream(n, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    return values + rng.normal(scale=0.05, size=values.shape)


def fresh_detector(spec=("ae", "sw", "musigma")):
    return build_detector(
        AlgorithmSpec(*spec),
        n_channels=2,
        config=DetectorConfig(window=6, train_capacity=24, fit_epochs=3),
    )


class TestCheckpoint:
    def test_roundtrip_resumes_identically(self, tmp_path):
        values = make_stream(400)
        detector = fresh_detector()
        for v in values[:200]:
            detector.step(v)
        path = save_detector(detector, tmp_path / "ckpt.pkl")
        resumed = load_detector(path)

        original_scores = [detector.step(v).score for v in values[200:]]
        resumed_scores = [resumed.step(v).score for v in values[200:]]
        np.testing.assert_allclose(original_scores, resumed_scores)

    def test_roundtrip_preserves_time_and_events(self, tmp_path):
        detector = fresh_detector()
        for v in make_stream(120):
            detector.step(v)
        resumed = load_detector(save_detector(detector, tmp_path / "c.pkl"))
        assert resumed.t == detector.t
        assert len(resumed.events) == len(detector.events)
        assert resumed.model.is_fitted

    @pytest.mark.parametrize(
        "spec",
        [
            ("online_arima", "sw", "musigma"),
            ("usad", "ares", "kswin"),
            ("nbeats", "ures", "musigma"),
            ("pcb_iforest", "sw", "kswin"),
        ],
    )
    def test_every_model_family_picklable(self, tmp_path, spec):
        detector = fresh_detector(spec)
        for v in make_stream(120):
            detector.step(v)
        resumed = load_detector(save_detector(detector, tmp_path / "m.pkl"))
        next_value = make_stream(121)[-1]
        assert np.isfinite(resumed.step(next_value).score)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(ValueError, match="not a detector checkpoint"):
            load_detector(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"version": -1, "detector": None}, handle)
        with pytest.raises(ValueError, match="incompatible"):
            load_detector(path)

    def test_wrong_payload_type_rejected(self, tmp_path):
        path = tmp_path / "odd.pkl"
        with open(path, "wb") as handle:
            pickle.dump(
                {"version": CHECKPOINT_VERSION, "detector": "not a detector"},
                handle,
            )
        with pytest.raises(ValueError, match="does not contain"):
            load_detector(path)

    def test_pre_chunked_engine_version_rejected(self, tmp_path):
        # Version 1 predates the chunked-engine state (score rings,
        # nonconformity snapshots); resuming it silently would be wrong.
        path = tmp_path / "v1.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"version": 1, "detector": "stale"}, handle)
        with pytest.raises(ValueError, match="incompatible"):
            load_detector(path)

    def test_save_is_atomic_under_injected_failure(self, tmp_path, monkeypatch):
        """A crash mid-serialization never corrupts an existing checkpoint
        (save writes a temp file, then ``os.replace``) and never leaves a
        stray temp file behind."""
        from repro.streaming import checkpoint as checkpoint_module

        detector = fresh_detector()
        for v in make_stream(120):
            detector.step(v)
        path = tmp_path / "ckpt.pkl"
        save_detector(detector, path)
        good_bytes = path.read_bytes()

        def exploding_dump(*args, **kwargs):
            raise OSError("disk full mid-write")

        monkeypatch.setattr(checkpoint_module.pickle, "dump", exploding_dump)
        with pytest.raises(OSError, match="disk full"):
            save_detector(detector, path)
        monkeypatch.undo()

        # The previous checkpoint is untouched and still loads.
        assert path.read_bytes() == good_bytes
        assert load_detector(path).t == detector.t
        # The failed attempt's temp file was cleaned up.
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_failed_first_save_leaves_nothing(self, tmp_path, monkeypatch):
        from repro.streaming import checkpoint as checkpoint_module

        detector = fresh_detector()
        monkeypatch.setattr(
            checkpoint_module.pickle,
            "dump",
            lambda *a, **k: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            save_detector(detector, tmp_path / "never.pkl")
        assert list(tmp_path.iterdir()) == []

    def test_checkpoint_meta_identifies_run(self, tmp_path):
        detector = fresh_detector()
        for v in make_stream(120):
            detector.step(v)
        path = save_detector(detector, tmp_path / "meta.pkl")
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["version"] == CHECKPOINT_VERSION
        meta = payload["meta"]
        assert meta["t"] == detector.t
        assert meta["model"] == type(detector.model).__name__
        assert meta["scorer"] == detector.scorer.name
        assert meta["nonconformity"] == detector.nonconformity.name
