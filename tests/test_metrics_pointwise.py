"""Tests for point-wise metrics and threshold candidates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    candidate_thresholds,
    point_adjusted_confusion,
    point_adjusted_predictions,
    pointwise_confusion,
)


class TestPointwiseConfusion:
    def test_perfect_prediction(self):
        labels = np.array([0, 0, 1, 1, 0])
        scores = labels.astype(float)
        confusion = pointwise_confusion(scores, labels, threshold=0.5)
        assert (confusion.tp, confusion.fp, confusion.fn, confusion.tn) == (2, 0, 0, 3)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0
        assert confusion.f1 == 1.0

    def test_all_negative_prediction(self):
        labels = np.array([0, 1, 1, 0])
        confusion = pointwise_confusion(np.zeros(4), labels, threshold=0.5)
        assert confusion.tp == 0
        assert confusion.precision == 0.0
        assert confusion.recall == 0.0
        assert confusion.f1 == 0.0

    def test_threshold_inclusive(self):
        scores = np.array([0.5, 0.4])
        labels = np.array([1, 0])
        confusion = pointwise_confusion(scores, labels, threshold=0.5)
        assert confusion.tp == 1
        assert confusion.fp == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pointwise_confusion(np.zeros(3), np.zeros(4, dtype=int), 0.5)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            pointwise_confusion(np.zeros((2, 2)), np.zeros((2, 2), dtype=int), 0.5)


class TestPointAdjusted:
    def test_single_hit_fills_window(self):
        labels = np.array([0, 1, 1, 1, 0])
        predicted = np.array([False, False, True, False, False])
        adjusted = point_adjusted_predictions(predicted, labels)
        np.testing.assert_array_equal(adjusted, [False, True, True, True, False])

    def test_no_hit_stays_empty(self):
        labels = np.array([0, 1, 1, 0])
        predicted = np.zeros(4, dtype=bool)
        adjusted = point_adjusted_predictions(predicted, labels)
        assert not adjusted.any()

    def test_false_positives_preserved(self):
        labels = np.array([0, 0, 1, 1])
        predicted = np.array([True, False, False, False])
        adjusted = point_adjusted_predictions(predicted, labels)
        assert adjusted[0]

    def test_confusion_improves_recall(self):
        labels = np.array([0, 1, 1, 1, 1, 0])
        scores = np.array([0.0, 0.9, 0.0, 0.0, 0.0, 0.0])
        raw = pointwise_confusion(scores, labels, 0.5)
        adjusted = point_adjusted_confusion(scores, labels, 0.5)
        assert adjusted.recall > raw.recall
        assert adjusted.recall == 1.0

    def test_input_not_mutated(self):
        labels = np.array([1, 1])
        predicted = np.array([True, False])
        point_adjusted_predictions(predicted, labels)
        np.testing.assert_array_equal(predicted, [True, False])


class TestCandidateThresholds:
    def test_includes_above_max(self):
        scores = np.array([0.1, 0.5, 0.9])
        thresholds = candidate_thresholds(scores, n_thresholds=5)
        assert thresholds.max() > scores.max()

    def test_sorted_unique(self):
        scores = np.array([0.3] * 10 + [0.7] * 10)
        thresholds = candidate_thresholds(scores, n_thresholds=10)
        assert np.all(np.diff(thresholds) > 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            candidate_thresholds(np.array([]))

    def test_too_few_thresholds_rejected(self):
        with pytest.raises(ValueError):
            candidate_thresholds(np.array([1.0]), n_thresholds=1)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=2,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_all_negative_operating_point_reachable(self, values):
        scores = np.asarray(values)
        thresholds = candidate_thresholds(scores, n_thresholds=10)
        # The largest threshold predicts nothing positive.
        assert not np.any(scores >= thresholds.max())
