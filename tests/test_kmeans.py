"""Tests for the online k-means detector and its clustering primitives."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import OnlineKMeans, kmeans_plus_plus, lloyd


@pytest.fixture
def blobs(rng):
    """Three well-separated Gaussian blobs, shape (300, 2)."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate(
        [center + rng.normal(scale=0.5, size=(100, 2)) for center in centers]
    )
    rng.shuffle(points)
    return points


class TestKMeansPrimitives:
    def test_plus_plus_returns_k_centroids(self, blobs, rng):
        seeds = kmeans_plus_plus(blobs, 3, rng)
        assert seeds.shape == (3, 2)

    def test_plus_plus_spreads_seeds(self, blobs, rng):
        seeds = kmeans_plus_plus(blobs, 3, rng)
        pairwise = [
            np.linalg.norm(seeds[i] - seeds[j])
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert min(pairwise) > 3.0  # one seed per blob, almost surely

    def test_plus_plus_handles_duplicates(self, rng):
        data = np.zeros((50, 3))
        seeds = kmeans_plus_plus(data, 4, rng)
        assert seeds.shape == (4, 3)

    def test_lloyd_recovers_blob_centers(self, blobs, rng):
        seeds = kmeans_plus_plus(blobs, 3, rng)
        centroids, assignments = lloyd(blobs, seeds)
        recovered = np.sort(np.round(centroids).astype(int), axis=0)
        expected = np.sort(np.array([[0, 0], [10, 0], [0, 10]]), axis=0)
        np.testing.assert_array_equal(recovered, expected)
        assert len(np.unique(assignments)) == 3

    def test_lloyd_converges_quickly_when_seeded_at_optimum(self, blobs):
        optimum = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        centroids, _ = lloyd(blobs, optimum, max_iter=3)
        np.testing.assert_allclose(centroids, optimum, atol=0.2)


class TestOnlineKMeans:
    def _windows(self, points):
        return np.stack([np.tile(p, (2, 1)) for p in points])

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            OnlineKMeans(k=0)
        with pytest.raises(ConfigurationError):
            OnlineKMeans(max_iter=0)

    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OnlineKMeans().score(np.zeros(4))

    def test_scores_bounded(self, blobs):
        model = OnlineKMeans(k=3, seed=0)
        model.fit(self._windows(blobs))
        for point in blobs[:20]:
            assert 0.0 <= model.score(np.tile(point, (2, 1))) < 1.0

    def test_outlier_scores_higher(self, blobs):
        model = OnlineKMeans(k=3, seed=0)
        model.fit(self._windows(blobs))
        inlier = np.mean([model.score(np.tile(p, (2, 1))) for p in blobs[:30]])
        outlier = model.score(np.tile(np.array([30.0, 30.0]), (2, 1)))
        assert outlier > 0.9
        assert outlier > inlier + 0.4

    def test_k_capped_by_data(self, rng):
        model = OnlineKMeans(k=100, seed=0)
        model.fit(self._windows(rng.normal(size=(10, 2))))
        assert model.centroids.shape[0] == 10

    def test_refit_moves_centroids(self, blobs):
        model = OnlineKMeans(k=3, seed=0)
        model.fit(self._windows(blobs))
        model.fit(self._windows(blobs + 100.0))
        assert model.score(np.tile(blobs[0] + 100.0, (2, 1))) < 0.5
        assert model.score(np.tile(blobs[0], (2, 1))) > 0.9

    def test_dimension_mismatch_rejected(self, blobs):
        model = OnlineKMeans(k=3, seed=0)
        model.fit(self._windows(blobs))
        with pytest.raises(ConfigurationError):
            model.score(np.zeros(5))

    def test_loss_is_mean_distance(self, blobs):
        model = OnlineKMeans(k=3, seed=0)
        model.fit(self._windows(blobs))
        assert model.loss(self._windows(blobs[:20])) < 2.0
