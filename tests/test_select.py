"""Online algorithm selection: racing, promotion, hot-swap, recovery.

The acceptance properties of ``repro.select``:

- **Shadow neutrality** — with a race armed but no promotion, served
  scores are bitwise identical to the offline ``run_stream`` reference;
  shadow work is accounted separately (``points_shadow``), never in the
  user-facing scoring counters or latency reservoirs.
- **Point-lossless promotion** — a hot-swap at ``swap_t`` yields served
  scores equal to the champion's offline reference through ``swap_t``
  and the challenger's from ``swap_t + 1``: no point skipped, doubled
  or re-scored.
- **Crash-safe swap** — SIGKILL at either crash window of the swap
  protocol (after the WAL intent record, after the commit checkpoint)
  recovers to a consistent session whose delivered results, merged with
  what the child collected before dying, cover every point exactly once
  and match the correct composite reference.
- **Anti-flapping** — warm-up, hysteresis margin, dwell and min-dwell
  gate promotions deterministically.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import _select_crash_child as child
from repro.core.config import DetectorConfig
from repro.core.exceptions import ConfigurationError
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.select import (
    EwmaLossPolicy,
    LaneStats,
    SelectionConfig,
    UcbBanditPolicy,
    make_policy,
    make_postprocessor,
    warm_start_detector,
)
from repro.serve import DetectionService, ServeClient, ServeConfig
from repro.serve.wal import SessionWal, WalConfig, plan_replay, read_records
from repro.streaming import run_stream
from repro.streaming.checkpoint import peek_checkpoint, save_detector
from repro.streaming.ensemble import EnsembleDetector

CONFIG = child.CONFIG
SELECT = child.SELECT
N = child.N

_OFFLINE_CACHE: dict[str, object] = {}


def offline_reference(label):
    """``run_stream`` over the shared drifting series (sequential ref)."""
    if label not in _OFFLINE_CACHE:
        detector = build_detector(
            AlgorithmSpec(*label.split("+")),
            n_channels=2,
            config=DetectorConfig(**CONFIG),
        )
        values = child.make_values()
        series = TimeSeries(values=values, labels=np.zeros(N, dtype=int))
        _OFFLINE_CACHE[label] = run_stream(detector, series, batch_size=1)
    return _OFFLINE_CACHE[label]


def make_service(tmp_path, *, wal=False, **overrides):
    defaults = dict(
        max_batch=16,
        spill_dir=str(tmp_path / "spill"),
        detector=DetectorConfig(**CONFIG),
    )
    if wal:
        defaults.update(
            wal_dir=str(tmp_path / "wal"), wal_barrier_interval=48
        )
    defaults.update(overrides)
    return DetectionService(ServeConfig(**defaults), autostart=False)


def stream_all(client, stream, values, start=0, chunk=25, results=None):
    """Ingest with the idempotent cursor, collecting every result."""
    results = {} if results is None else results
    sent = start
    while sent < len(values):
        reply = client.ingest(
            stream, values[sent : sent + chunk], expect=sent
        )
        assert reply["ok"], reply
        sent += reply["accepted"]
        reply = client.score(stream)
        assert reply["ok"], reply
        for result in reply["results"]:
            previous = results.setdefault(result["seq"], result)
            assert previous == result, "conflicting re-emission"
    return results


# ----------------------------------------------------------------------
# policy units
# ----------------------------------------------------------------------
def test_selection_config_validation():
    with pytest.raises(ConfigurationError):
        SelectionConfig(policy="greedy")
    with pytest.raises(ConfigurationError):
        SelectionConfig(warmup=0)
    with pytest.raises(ConfigurationError):
        SelectionConfig(margin=1.0)
    with pytest.raises(ConfigurationError):
        SelectionConfig(dwell=0)
    with pytest.raises(ConfigurationError):
        SelectionConfig(min_dwell=-1)
    with pytest.raises(ConfigurationError):
        SelectionConfig(ewma_alpha=0.0)
    with pytest.raises(ConfigurationError):
        SelectionConfig(fire_weight=-0.1)
    assert isinstance(make_policy(SelectionConfig()), EwmaLossPolicy)
    assert isinstance(make_policy(SelectionConfig(policy="ucb")), UcbBanditPolicy)


def _feed(stats, losses, alpha=1.0):
    losses = np.asarray(losses, dtype=np.float64)
    stats.update(losses, np.zeros(len(losses), dtype=bool), alpha)


def test_ewma_policy_promotion_needs_margin_dwell_and_min_dwell():
    config = SelectionConfig(
        policy="ewma", warmup=4, margin=0.10, dwell=8, min_dwell=12,
        ewma_alpha=1.0, fire_weight=0.0,
    )
    policy = EwmaLossPolicy(config)
    champ, lane = LaneStats(), LaneStats()
    points = 0

    def step(champ_loss, lane_loss, batch=4):
        nonlocal points
        _feed(champ, [champ_loss] * batch)
        _feed(lane, [lane_loss] * batch)
        points += batch
        return policy.step(champ, [lane], batch, points)

    # Warm-up: neither side eligible on the first batch.
    assert step(1.0, 0.5) is None
    # Beating the champion, but min_dwell (12) not reached at 8 points.
    assert step(1.0, 0.5) is None
    # 12 points: margin + dwell (8 = two batches of wins) + min_dwell met.
    assert step(1.0, 0.5) == 0

    # A hair inside the margin never wins, however long it persists.
    champ2, lane2 = LaneStats(), LaneStats()
    policy2 = EwmaLossPolicy(config)
    for round_index in range(50):
        _feed(champ2, [1.0] * 4)
        _feed(lane2, [0.95] * 4)  # 5% better < 10% margin
        assert (
            policy2.step(champ2, [lane2], 4, (round_index + 1) * 4) is None
        )
    assert lane2.win_points == 0  # the streak never starts

    # An interrupted streak resets the dwell counter: two wins, a losing
    # blip, then the streak must restart from zero.
    champ3, lane3 = LaneStats(), LaneStats()
    policy3 = EwmaLossPolicy(
        SelectionConfig(
            policy="ewma", warmup=4, margin=0.10, dwell=12, min_dwell=0,
            ewma_alpha=1.0, fire_weight=0.0,
        )
    )
    points3 = 0

    def step3(loss):
        nonlocal points3
        _feed(champ3, [1.0] * 4)
        _feed(lane3, [loss] * 4)
        points3 += 4
        return policy3.step(champ3, [lane3], 4, points3)

    assert step3(0.5) is None and step3(0.5) is None  # win_points 8 < 12
    assert step3(2.0) is None
    assert lane3.win_points == 0  # the blip wiped the streak
    assert step3(0.5) is None and step3(0.5) is None  # 8 again, not 16
    assert step3(0.5) == 0  # third consecutive win completes the dwell


def test_ewma_policy_fire_weight_penalizes_flappy_lane():
    config = SelectionConfig(
        policy="ewma", warmup=2, margin=0.05, dwell=2, min_dwell=0,
        ewma_alpha=1.0, fire_weight=10.0,
    )
    policy = EwmaLossPolicy(config)
    champ, lane = LaneStats(), LaneStats()
    # The lane's loss is lower but its drift detector fires every point.
    for _ in range(4):
        champ.update(np.array([1.0]), np.array([False]), 1.0)
        lane.update(np.array([0.8]), np.array([True]), 1.0)
        assert policy.step(champ, [lane], 1, 99) is None
    assert lane.signal(10.0) > champ.signal(10.0)


def test_ucb_policy_promotes_consistent_winner_only():
    config = SelectionConfig(
        policy="ucb", warmup=1, margin=0.1, dwell=3, min_dwell=0,
        ewma_alpha=1.0, ucb_c=0.5,
    )
    policy = UcbBanditPolicy(config)
    champ, lane = LaneStats(), LaneStats()
    promoted = None
    for _ in range(12):
        _feed(champ, [1.0])
        _feed(lane, [0.5])  # challenger wins every round
        promoted = policy.step(champ, [lane], 1, 999)
        if promoted is not None:
            break
    assert promoted == 0
    assert lane.reward > champ.reward

    # A coin-flip lane (alternating wins) never accumulates the margin.
    policy2 = UcbBanditPolicy(config)
    champ2, lane2 = LaneStats(), LaneStats()
    for round_index in range(30):
        win = round_index % 2 == 0
        _feed(champ2, [1.0 if win else 0.5])
        _feed(lane2, [0.5 if win else 1.0])
        assert policy2.step(champ2, [lane2], 1, 999) is None


# ----------------------------------------------------------------------
# postprocessor units
# ----------------------------------------------------------------------
def test_postprocessors_transform_and_reset():
    z = make_postprocessor("zscore")
    assert z.update(5.0) == 0.0  # first value defines the running mean
    assert z.update(5.0) == 0.0  # zero variance stays 0
    assert z.update(8.0) > 0.0
    z.reset()
    assert z.update(100.0) == 0.0

    m = make_postprocessor("minmax")
    assert m.update(2.0) == 0.0
    assert m.update(4.0) == 1.0
    assert m.update(3.0) == 0.5
    m.reset()
    assert m.update(7.0) == 0.0

    e = make_postprocessor("ewma:0.5")
    assert e.update(1.0) == 1.0
    assert e.update(3.0) == 2.0
    e.reset()
    assert e.update(9.0) == 9.0

    with pytest.raises(ConfigurationError):
        make_postprocessor("sigmoid")
    with pytest.raises(ConfigurationError):
        make_postprocessor("zscore:3")
    with pytest.raises(ConfigurationError):
        make_postprocessor("ewma:1.5")


def test_ensemble_postprocess_chain_is_chunking_invariant():
    values = child.make_values()[:160]

    def build(postprocess):
        members = [
            build_detector(
                AlgorithmSpec("ae", "sw", "kswin"),
                n_channels=2,
                config=DetectorConfig(**CONFIG),
            )
        ]
        return EnsembleDetector(members, postprocess=postprocess)

    raw = build(None)
    _, f_raw, _, _ = raw.step_chunk(values)

    whole = build(["zscore", "ewma:0.3"])
    _, f_whole, _, _ = whole.step_chunk(values)

    split = build(["zscore", "ewma:0.3"])
    _, f_a, _, _ = split.step_chunk(values[:71])
    _, f_b, _, _ = split.step_chunk(values[71:])

    assert np.array_equal(f_whole, np.concatenate([f_a, f_b]))
    assert not np.array_equal(f_whole, f_raw)  # the chain did something
    # reset() restarts the calibration stages along with the members.
    split.reset()
    assert split.t == -1
    assert split.postprocess[0].n == 0  # zscore state cleared
    assert split.postprocess[1].value is None  # ewma state cleared


# ----------------------------------------------------------------------
# warm-start
# ----------------------------------------------------------------------
def test_warm_start_detector_clock_and_validation():
    detector = warm_start_detector("ae+sw+kswin", 2, at=120)
    assert detector.t == 119
    assert detector.first_scored_step is None  # cold model, preset clock
    with pytest.raises(ConfigurationError):
        warm_start_detector("ae+sw", 2)
    with pytest.raises(ConfigurationError):
        warm_start_detector("ae+sw+kswin", 2, at=-1)


# ----------------------------------------------------------------------
# serve integration
# ----------------------------------------------------------------------
def test_shadow_race_without_promotion_is_bitwise_neutral(tmp_path):
    """An armed race whose policy can never fire must not perturb served
    scores by a single bit — and its cost lands in the shadow counters,
    not the scoring ones."""
    values = child.make_values()
    ref = offline_reference(child.SPEC)

    service = make_service(tmp_path)
    client = ServeClient(service)
    select = dict(SELECT, min_dwell=10**9)  # promotion structurally off
    reply = client.create("s", spec=child.SPEC, n_channels=2, select=select)
    assert reply["ok"], reply
    results = stream_all(client, "s", values)

    assert sorted(results) == list(range(N))
    scores = np.array([results[i]["score"] for i in range(N)])
    assert np.array_equal(scores, ref.scores)

    describe = client.describe("s")
    assert describe["ok"], describe
    selection = describe["selection"]
    assert selection["promotions"] == 0
    assert selection["champion"]["n_points"] == N
    assert selection["challengers"][0]["t"] == N - 1  # clock-aligned
    assert describe["shadow"]["points_shadow"] == N

    counters = client.stats()["rollup"]["counters"]
    assert counters["points_shadow"] == N
    assert counters["points_scored"] == N  # shadow points not in here
    assert counters.get("promotions", 0) == 0


def test_promotion_is_point_lossless_and_matches_composite(tmp_path):
    """Served scores equal the champion's offline reference through the
    swap offset and the challenger's offline reference after it."""
    values = child.make_values()
    champ_ref = offline_reference(child.SPEC)
    chall_ref = offline_reference(child.CHALLENGER)

    service = make_service(tmp_path)
    client = ServeClient(service)
    reply = client.create(
        "s", spec=child.SPEC, n_channels=2, select=dict(SELECT)
    )
    assert reply["ok"], reply
    results = stream_all(client, "s", values)
    assert sorted(results) == list(range(N))

    describe = client.describe("s")
    events = describe["selection"]["events"]
    assert len(events) == 1, "expected exactly one promotion"
    swap_t = events[0]["t"]
    assert 0 < swap_t < N - 1
    assert events[0]["from"] == child.SPEC
    assert events[0]["to"] == child.CHALLENGER
    assert describe["spec"] == child.CHALLENGER

    scores = np.array([results[i]["score"] for i in range(N)])
    assert np.array_equal(scores[: swap_t + 1], champ_ref.scores[: swap_t + 1])
    assert np.array_equal(scores[swap_t + 1 :], chall_ref.scores[swap_t + 1 :])
    # The challenger's post-swap scores are its *uninterrupted* offline
    # run over the full prefix — the shadow lane saw every point.
    assert not np.array_equal(scores, champ_ref.scores)

    counters = client.stats()["rollup"]["counters"]
    assert counters["promotions"] == 1
    assert counters["points_scored"] == N


def test_promotion_with_demotion_keeps_old_champion_racing(tmp_path):
    values = child.make_values()
    service = make_service(tmp_path)
    client = ServeClient(service)
    select = dict(SELECT, demote=True)
    assert client.create(
        "s", spec=child.SPEC, n_channels=2, select=select
    )["ok"]
    stream_all(client, "s", values)
    describe = client.describe("s")
    selection = describe["selection"]
    assert selection["promotions"] >= 1
    # The demoted ex-champion is back in a lane, clock-aligned.
    specs = [lane["spec"] for lane in selection["challengers"]]
    assert child.SPEC in specs
    for lane in selection["challengers"]:
        assert lane["t"] == N - 1


def test_selection_requires_registry_session_and_real_challenger(tmp_path):
    service = make_service(tmp_path)
    client = ServeClient(service)
    reply = client.create(
        "s", spec=child.SPEC, n_channels=2, select={"challengers": []}
    )
    assert not reply["ok"]
    assert reply["error"]["type"] == "bad_config"
    # The failed create must not leak a half-open session.
    reply = client.create(
        "s", spec=child.SPEC, n_channels=2,
        select={"challengers": [child.SPEC]},
    )
    assert not reply["ok"]
    assert "identical" in reply["error"]["message"]
    reply = client.create("s", spec=child.SPEC, n_channels=2)
    assert reply["ok"], reply


def test_describe_op_shape_and_errors(tmp_path):
    service = make_service(tmp_path, wal=True)
    client = ServeClient(service)
    reply = client.describe("nope")
    assert not reply["ok"]
    assert reply["error"]["type"] == "unknown_stream"
    assert not client.request("describe")["ok"]  # stream is required

    assert client.create("s", spec=child.SPEC, n_channels=2)["ok"]
    values = child.make_values()[:96]
    stream_all(client, "s", values)
    describe = client.describe("s")
    assert describe["ok"], describe
    assert describe["stream"] == "s"
    assert describe["spec"] == child.SPEC
    assert "selection" not in describe  # no race armed
    barrier = describe["checkpoints"]["barrier"]
    assert barrier["model"] == "TwoLayerAutoencoder"
    assert 0 <= barrier["t"] < len(values)
    service.shutdown()


# ----------------------------------------------------------------------
# WAL swap records
# ----------------------------------------------------------------------
def test_plan_replay_folds_committed_swaps_only():
    def ingest(seq_from, n):
        return {
            "kind": "ingest",
            "seq_from": seq_from,
            "rows": np.zeros((n, 2)),
        }

    open_record = {
        "kind": "open", "stream": "s", "n_channels": 2,
        "spec": "a+b+c", "config": {}, "scorer": None,
    }
    swap = {
        "kind": "swap", "t": 7, "spec": "x+y+z",
        "config": {"window": 6}, "scorer": "al",
        "results": [{"seq": 7, "score": 0.5}],
    }
    records = [open_record, ingest(0, 4), ingest(4, 4), swap, ingest(8, 4)]

    # Committed: the surviving checkpoint covers the swap clock.
    meta, blocks, _ = plan_replay(records, barrier_t=7)
    assert meta["swapped"] and meta["swap_t"] == 7
    assert meta["spec"] == "x+y+z"
    assert meta["config"] == {"window": 6}
    assert meta["scorer"] == "al"
    assert meta["swap_results"] == [{"seq": 7, "score": 0.5}]
    assert [(s, len(r)) for s, r in blocks] == [(8, 4)]

    # Aborted: no checkpoint reached t=7, the record is ignored and the
    # pre-swap recipe replays everything.
    meta, blocks, _ = plan_replay(records, barrier_t=3)
    assert "swapped" not in meta
    assert meta["spec"] == "a+b+c"
    assert [(s, len(r)) for s, r in blocks] == [(4, 4), (8, 4)]


def test_scrub_aborted_swaps_rewrites_log(tmp_path):
    wal = SessionWal(WalConfig(dir=tmp_path, fsync="never"), "s")
    wal.open({"spec": "a+b+c", "n_channels": 2, "config": {}, "scorer": None})
    wal.append(0, np.zeros((4, 2)))
    wal.log_swap({"t": 3, "spec": "x+y+z", "config": {}, "scorer": None})
    wal.append(4, np.zeros((4, 2)))
    wal.close(delete=False)

    # t=3 committed (a checkpoint covers it): nothing to scrub.
    assert wal.scrub_aborted_swaps(3) == 0
    kinds = [r["kind"] for r in read_records(wal.path)[0]]
    assert kinds == ["open", "ingest", "swap", "ingest"]

    # No checkpoint reached t=3: the intent is scrubbed, data kept.
    assert wal.scrub_aborted_swaps(1) == 1
    kinds = [r["kind"] for r in read_records(wal.path)[0]]
    assert kinds == ["open", "ingest", "ingest"]


def test_swap_survives_abandon_and_recovery(tmp_path):
    """Promotion, then a simulated crash (abandon without close): the
    recovered session continues under the challenger and the full
    delivered sequence matches the composite reference."""
    values = child.make_values()
    champ_ref = offline_reference(child.SPEC)
    chall_ref = offline_reference(child.CHALLENGER)

    service = make_service(tmp_path, wal=True)
    client = ServeClient(service)
    assert client.create(
        "s", spec=child.SPEC, n_channels=2, select=dict(SELECT)
    )["ok"]
    cut = 380  # past the deterministic promotion offset
    results = {}
    sent = 0
    while sent < cut:
        reply = client.ingest(
            "s", values[sent : min(cut, sent + 25)], expect=sent
        )
        assert reply["ok"], reply
        sent += reply["accepted"]
        for result in client.score("s")["results"]:
            results[result["seq"]] = result
    swap_t = client.describe("s")["selection"]["events"][0]["t"]
    del service, client

    restarted = make_service(tmp_path, wal=True)
    counters = restarted.telemetry.as_dict()["counters"]
    assert counters.get("wal_recovered") == 1
    client = ServeClient(restarted)
    describe = client.describe("s")
    assert describe["spec"] == child.CHALLENGER  # swap fold survived
    assert describe["seq"] == cut
    stream_all(client, "s", values, start=sent, results=results)
    for result in client.score("s")["results"]:
        results.setdefault(result["seq"], result)

    assert sorted(results) == list(range(N))
    scores = np.array([results[i]["score"] for i in range(N)])
    assert np.array_equal(scores[: swap_t + 1], champ_ref.scores[: swap_t + 1])
    assert np.array_equal(scores[swap_t + 1 :], chall_ref.scores[swap_t + 1 :])
    restarted.shutdown()


def test_stale_checkpoint_label_recovers_on_per_session_path(tmp_path):
    """Defensive fallback: a checkpoint whose model class contradicts
    the log's recipe (possible only under fsync="never" reordering)
    is served rather than fused under the wrong label."""
    values = child.make_values()[:12]
    wal_dir = tmp_path / "wal"
    wal_dir.mkdir()
    wal = SessionWal(WalConfig(dir=wal_dir, fsync="never"), "s")
    wal.open(
        {"spec": child.SPEC, "n_channels": 2, "config": dict(CONFIG),
         "scorer": None}
    )
    wal.append(0, values)
    # A different model family scored the stream (a swap whose record
    # never landed): checkpoint it at the log's clock.
    other = build_detector(
        AlgorithmSpec("var", "sw", "kswin"),
        n_channels=2,
        config=DetectorConfig(**CONFIG),
    )
    other.step_chunk(values)
    save_detector(other, wal.barrier_path)
    wal.close(delete=False)

    service = make_service(tmp_path, wal=True)
    counters = service.telemetry.as_dict()["counters"]
    assert counters.get("wal_recovered") == 1
    assert counters.get("wal_stale_labels") == 1
    session = service.store.get("s")
    assert session.fleet_key is None  # never fused under the stale label
    assert type(session.detector.model).__name__ == "VARModel"
    service.shutdown()


# ----------------------------------------------------------------------
# SIGKILL mid-swap
# ----------------------------------------------------------------------
@pytest.mark.parametrize("window", ["after_record", "after_checkpoint"])
def test_sigkill_mid_swap_recovers_lossless(tmp_path, window):
    """Kill -9 the serving process at either crash window of the swap
    protocol; recover; finish the stream.  The union of the child's
    collected results and everything delivered after recovery covers
    every point exactly once and matches the correct reference:
    aborted swap -> pure champion; committed swap -> composite."""
    env = dict(os.environ)
    env["REPRO_SELECT_CRASH"] = window
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).with_name("_select_crash_child.py")),
         str(tmp_path)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(tmp_path),
    )
    assert proc.returncode == 42, (
        f"child did not crash at the injected point: rc={proc.returncode}\n"
        f"{proc.stdout}\n{proc.stderr}"
    )

    results = {}
    sent = 0
    for line in (tmp_path / "results.jsonl").read_text().splitlines():
        round_ = json.loads(line)
        sent = round_["sent"]
        for result in round_["results"]:
            results[result["seq"]] = result
    # The crash fired inside the score() after the last recorded ingest
    # round — that block was acked but its results never returned.
    sent += child.CHUNK
    assert max(results) < sent - 1

    values = child.make_values()
    champ_ref = offline_reference(child.SPEC)
    chall_ref = offline_reference(child.CHALLENGER)

    service = child.make_service(tmp_path)
    counters = service.telemetry.as_dict()["counters"]
    assert counters.get("wal_recovered") == 1, counters
    client = ServeClient(service)
    describe = client.describe("s")
    assert describe["ok"], describe

    if window == "after_record":
        # Intent only: the swap aborted, recovery replays through the
        # old champion and the record is scrubbed from the log.
        assert describe["spec"] == child.SPEC
        session = service.store.get("s")
        kinds = [r["kind"] for r in read_records(session.wal.path)[0]]
        assert "swap" not in kinds
    else:
        # Committed: the challenger took over at the checkpoint clock.
        assert describe["spec"] == child.CHALLENGER
        swap_t = describe["checkpoints"]["barrier"]["t"]
        assert describe["seq"] >= swap_t + 1

    # Drain re-emissions (replayed or carried in the swap record), then
    # finish the stream.
    for result in client.score("s")["results"]:
        previous = results.setdefault(result["seq"], result)
        assert previous == result, "conflicting re-emission"
    stream_all(client, "s", values, start=sent, results=results)

    assert sorted(results) == list(range(N)), "dropped or doubled points"
    scores = np.array([results[i]["score"] for i in range(N)])
    if window == "after_record":
        assert np.array_equal(scores, champ_ref.scores)
    else:
        assert np.array_equal(
            scores[: swap_t + 1], champ_ref.scores[: swap_t + 1]
        )
        assert np.array_equal(
            scores[swap_t + 1 :], chall_ref.scores[swap_t + 1 :]
        )
    service.shutdown()
