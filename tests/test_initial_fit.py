"""Tests for the decoupled initial training set (paper's 5000-step warm-up)."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import StreamingAnomalyDetector
from repro.core.exceptions import ConfigurationError
from repro.core.registry import AlgorithmSpec, build_detector
from repro.learning import NeverFineTune, SlidingWindow
from repro.models import TwoLayerAutoencoder
from repro.scoring import AverageScore, CosineNonconformity


def make_detector(capacity, min_train_size):
    return StreamingAnomalyDetector(
        model=TwoLayerAutoencoder(window=4, n_channels=2, epochs=2, seed=0),
        train_strategy=SlidingWindow(capacity),
        drift_detector=NeverFineTune(),
        nonconformity=CosineNonconformity(),
        scorer=AverageScore(k=4),
        window=4,
        min_train_size=min_train_size,
    )


def stream(n):
    rng = np.random.default_rng(0)
    t = np.arange(n, dtype=np.float64)
    return np.stack([np.sin(t / 5), np.cos(t / 5)], axis=1) + rng.normal(
        scale=0.05, size=(n, 2)
    )


class TestInitialTrainSize:
    def test_initial_fit_uses_larger_buffer(self):
        detector = make_detector(capacity=10, min_train_size=50)
        for v in stream(80):
            detector.step(v)
        assert detector.model.is_fitted
        assert detector.events[0].train_set_size == 50
        # The maintained training set stays at its capacity.
        assert len(detector.train_strategy) == 10

    def test_initial_buffer_discarded_after_fit(self):
        detector = make_detector(capacity=10, min_train_size=30)
        for v in stream(60):
            detector.step(v)
        assert detector._initial_buffer == []

    def test_fit_timing(self):
        detector = make_detector(capacity=10, min_train_size=30)
        fitted_at = None
        for t, v in enumerate(stream(60)):
            detector.step(v)
            if detector.model.is_fitted and fitted_at is None:
                fitted_at = t
        # Window warm-up (first vector at t=3) + 29 more vectors.
        assert fitted_at == 32

    def test_default_equals_capacity(self):
        detector = make_detector(capacity=10, min_train_size=None)
        for v in stream(40):
            detector.step(v)
        assert detector.events[0].train_set_size == 10

    def test_config_plumbs_through_registry(self):
        config = DetectorConfig(
            window=6, train_capacity=8, initial_train_size=20, fit_epochs=1
        )
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "never"), n_channels=2, config=config
        )
        for v in stream(60):
            detector.step(v)
        assert detector.events[0].train_set_size == 20

    def test_config_validates_initial_train_size(self):
        with pytest.raises(ConfigurationError):
            DetectorConfig(initial_train_size=1)

    def test_reset_clears_initial_buffer(self):
        detector = make_detector(capacity=10, min_train_size=100)
        for v in stream(20):
            detector.step(v)
        assert detector._initial_buffer
        detector.reset()
        assert detector._initial_buffer == []
