"""Tests for range-based (Hundman-style) precision, recall and PR-AUC."""

import numpy as np
import pytest

from repro.core.types import AnomalyWindow
from repro.metrics import (
    range_confusion,
    range_pr_auc,
    range_pr_curve,
    range_precision_recall,
)


class TestRangeConfusion:
    def test_exact_match(self):
        truth = [AnomalyWindow(10, 20)]
        predicted = [AnomalyWindow(10, 20)]
        confusion = range_confusion(predicted, truth)
        assert (confusion.tp, confusion.fp, confusion.fn) == (1, 0, 0)

    def test_partial_overlap_counts_tp(self):
        truth = [AnomalyWindow(10, 20)]
        predicted = [AnomalyWindow(19, 30)]
        confusion = range_confusion(predicted, truth)
        assert confusion.tp == 1
        assert confusion.fp == 0  # the prediction overlaps a truth window

    def test_miss_counts_fn(self):
        confusion = range_confusion([], [AnomalyWindow(0, 5)])
        assert confusion.fn == 1
        assert confusion.recall == 0.0

    def test_spurious_prediction_counts_fp(self):
        confusion = range_confusion([AnomalyWindow(50, 60)], [AnomalyWindow(0, 5)])
        assert confusion.fp == 1
        assert confusion.fn == 1

    def test_one_long_prediction_covers_all(self):
        # The paper's Exathlon phenomenon: one giant predicted interval
        # overlapping every truth window yields perfect ranged P/R.
        truth = [AnomalyWindow(10, 20), AnomalyWindow(50, 60), AnomalyWindow(90, 95)]
        predicted = [AnomalyWindow(0, 100)]
        confusion = range_confusion(predicted, truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_multiple_predictions_in_one_window(self):
        truth = [AnomalyWindow(10, 30)]
        predicted = [AnomalyWindow(12, 14), AnomalyWindow(20, 22)]
        confusion = range_confusion(predicted, truth)
        assert confusion.tp == 1  # counted once per truth window
        assert confusion.fp == 0

    def test_f1(self):
        confusion = range_confusion(
            [AnomalyWindow(0, 5), AnomalyWindow(50, 55)],
            [AnomalyWindow(0, 5), AnomalyWindow(10, 15)],
        )
        assert confusion.precision == 0.5
        assert confusion.recall == 0.5
        assert confusion.f1 == 0.5


class TestRangePrecisionRecall:
    def test_perfect_scores(self, labelled_series):
        scores = labelled_series.labels.astype(float)
        precision, recall = range_precision_recall(
            scores, labelled_series.labels, threshold=0.5
        )
        assert precision == 1.0 and recall == 1.0

    def test_inverted_scores(self, labelled_series):
        scores = 1.0 - labelled_series.labels.astype(float)
        precision, recall = range_precision_recall(
            scores, labelled_series.labels, threshold=0.5
        )
        assert recall == 0.0


class TestRangePRAUC:
    def test_perfect_detector_high_auc(self, labelled_series):
        rng = np.random.default_rng(0)
        scores = labelled_series.labels + rng.uniform(0, 0.1, labelled_series.n_steps)
        auc = range_pr_auc(scores, labelled_series.labels)
        assert auc > 0.9

    def test_random_detector_low_auc(self, labelled_series):
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=labelled_series.n_steps)
        auc = range_pr_auc(scores, labelled_series.labels)
        assert auc < 0.9

    def test_auc_in_unit_interval(self, labelled_series):
        rng = np.random.default_rng(1)
        for _ in range(5):
            scores = rng.uniform(size=labelled_series.n_steps)
            auc = range_pr_auc(scores, labelled_series.labels)
            assert 0.0 <= auc <= 1.0

    def test_curve_shapes(self, labelled_series):
        scores = np.random.default_rng(0).uniform(size=labelled_series.n_steps)
        thresholds, precisions, recalls = range_pr_curve(
            scores, labelled_series.labels, n_thresholds=20
        )
        assert thresholds.shape == precisions.shape == recalls.shape
        assert np.all((precisions >= 0) & (precisions <= 1))
        assert np.all((recalls >= 0) & (recalls <= 1))

    def test_perfect_better_than_random(self, labelled_series):
        rng = np.random.default_rng(2)
        perfect = labelled_series.labels + rng.uniform(0, 0.05, labelled_series.n_steps)
        random_scores = rng.uniform(size=labelled_series.n_steps)
        assert range_pr_auc(perfect, labelled_series.labels) > range_pr_auc(
            random_scores, labelled_series.labels
        )
