"""Deeper behavioural tests on the detector's component interplay."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import StreamingAnomalyDetector
from repro.core.registry import AlgorithmSpec, build_detector
from repro.learning import (
    AnomalyAwareReservoir,
    MuSigmaChange,
    NeverFineTune,
    RegularFineTuning,
    SlidingWindow,
)
from repro.models import TwoLayerAutoencoder
from repro.scoring import AnomalyLikelihood, AverageScore, CosineNonconformity


def periodic_stream(n, seed=0, n_channels=2):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30 + p) for p in rng.uniform(0, 6, n_channels)],
        axis=1,
    )
    return values + rng.normal(scale=0.05, size=values.shape)


class TestAresReceivesScores:
    def test_priorities_reflect_stream_scores(self):
        """The detector must feed f_t into ARES (the Task-1/score loop)."""
        reservoir = AnomalyAwareReservoir(30, rng=np.random.default_rng(0))
        detector = StreamingAnomalyDetector(
            model=TwoLayerAutoencoder(window=6, n_channels=2, epochs=5, seed=0),
            train_strategy=reservoir,
            drift_detector=NeverFineTune(),
            nonconformity=CosineNonconformity(),
            scorer=AverageScore(k=8),
            window=6,
        )
        values = periodic_stream(200)
        values[120:140] += 4.0  # anomalous block after the initial fit
        for v in values:
            detector.step(v)
        # The reservoir's training set should be dominated by normal data:
        # the anomalous windows carry values near +4 on every channel.
        train = reservoir.training_set()
        anomalous_fraction = float(np.mean(train.mean(axis=(1, 2)) > 2.0))
        assert anomalous_fraction < 0.3


class TestRegularFineTuningCadence:
    def test_finetunes_at_fixed_interval(self):
        detector = StreamingAnomalyDetector(
            model=TwoLayerAutoencoder(window=6, n_channels=2, epochs=2, seed=0),
            train_strategy=SlidingWindow(20),
            drift_detector=RegularFineTuning(interval=50),
            nonconformity=CosineNonconformity(),
            scorer=AverageScore(k=8),
            window=6,
        )
        for v in periodic_stream(310):
            detector.step(v)
        fired = [e.t for e in detector.events if e.reason == "regular"]
        assert fired == [50, 100, 150, 200, 250, 300]


class TestMuSigmaReferenceLifecycle:
    def test_reference_updates_after_each_finetune(self):
        """After a fine-tune the reference snapshot moves, so a persistent
        regime change fires once, not at every subsequent step."""
        detector = StreamingAnomalyDetector(
            model=TwoLayerAutoencoder(window=6, n_channels=2, epochs=2, seed=0),
            train_strategy=SlidingWindow(30),
            drift_detector=MuSigmaChange(),
            nonconformity=CosineNonconformity(),
            scorer=AverageScore(k=8),
            window=6,
        )
        values = periodic_stream(400)
        values[200:] += 5.0  # one persistent level shift
        drift_steps = [
            t for t, v in enumerate(values) if detector.step(v).drift_detected
        ]
        assert drift_steps, "the shift must be detected"
        # All detections should cluster around the transition, not recur
        # for the rest of the stream.
        assert max(drift_steps) < 300


class TestScorerStateAcrossFinetunes:
    def test_anomaly_likelihood_window_not_reset_by_finetune(self):
        config = DetectorConfig(
            window=6, train_capacity=24, fit_epochs=2, scorer="al",
            scorer_k=16, scorer_k_short=2,
        )
        detector = build_detector(AlgorithmSpec("ae", "sw", "regular"), 2, config)
        scores = [detector.step(v).score for v in periodic_stream(200)]
        # If the scorer were reset at each regular fine-tune, long runs of
        # exactly-0.5 likelihoods would appear right after each interval.
        post_warmup = np.asarray(scores[60:])
        assert np.std(post_warmup) > 0.01


class TestInitialFitEvent:
    def test_event_carries_training_loss(self):
        config = DetectorConfig(window=6, train_capacity=24, fit_epochs=5)
        detector = build_detector(AlgorithmSpec("ae", "sw", "never"), 2, config)
        for v in periodic_stream(80):
            detector.step(v)
        event = detector.events[0]
        assert event.reason == "initial_fit"
        assert np.isfinite(event.loss_after)
        assert np.isnan(event.loss_before)  # no model existed before


class TestStepResultFlags:
    def test_finetuned_implies_event_appended(self):
        config = DetectorConfig(window=6, train_capacity=20, fit_epochs=1)
        detector = build_detector(AlgorithmSpec("ae", "sw", "regular"), 2, config)
        event_counts = []
        for v in periodic_stream(150):
            result = detector.step(v)
            event_counts.append((result.finetuned, len(detector.events)))
        for (finetuned, count), (_, previous) in zip(
            event_counts[1:], event_counts[:-1]
        ):
            if finetuned:
                assert count == previous + 1
