"""Unit tests for the online detection service's building blocks.

Covers the wire protocol (envelope validation, float round-trip
exactness), the micro-batch scheduler's backpressure and fairness
contracts, the LRU session store's eviction machinery, and the protocol
dispatch of :class:`DetectionService` — the end-to-end bitwise
equivalence claims live in ``tests/test_serve_e2e.py``.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.exceptions import StreamError
from repro.core.registry import AlgorithmSpec, build_detector
from repro.serve import (
    DetectionService,
    ProtocolError,
    ServeClient,
    ServeConfig,
    SchedulerConfig,
    decode_line,
    encode,
    parse_request,
    spill_filename,
)
from repro.streaming import EnsembleDetector

CONFIG = dict(window=6, train_capacity=24, fit_epochs=2, kswin_check_every=4)


def make_service(**overrides):
    defaults = dict(
        default_spec="ae+sw+musigma",
        max_sessions=4,
        max_batch=8,
        queue_limit=32,
        result_limit=64,
        detector=DetectorConfig(**CONFIG),
    )
    defaults.update(overrides)
    service = DetectionService(ServeConfig(**defaults), autostart=False)
    return service, ServeClient(service)


def points(n, n_channels=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, n_channels))


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"v": 1, "op": "ingest", "stream": "s", "points": [[0.1, 0.2]]}
        assert decode_line(encode(message)) == message

    def test_float_roundtrip_is_exact(self):
        # The bitwise-equivalence guarantee must survive the JSON layer.
        rng = np.random.default_rng(1)
        values = rng.normal(size=257) * 10.0 ** rng.integers(-200, 200, size=257)
        decoded = decode_line(encode({"v": 1, "op": "x", "scores": values.tolist()}))
        assert np.array_equal(np.array(decoded["scores"]), values)

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]")

    def test_parse_rejects_bad_version(self):
        with pytest.raises(ProtocolError):
            parse_request({"v": 99, "op": "ping"})

    def test_parse_rejects_unknown_op(self):
        with pytest.raises(ProtocolError):
            parse_request({"v": 1, "op": "frobnicate"})

    def test_parse_requires_stream_for_session_ops(self):
        for op in ("create", "ingest", "score", "close", "evict"):
            with pytest.raises(ProtocolError):
                parse_request({"v": 1, "op": op})

    def test_stats_and_ping_are_streamless(self):
        assert parse_request({"v": 1, "op": "ping"})["op"] == "ping"
        assert parse_request({"v": 1, "op": "stats"})["op"] == "stats"

    def test_correlation_id_is_echoed(self):
        service, _ = make_service()
        reply = service.handle({"v": 1, "op": "ping", "id": "req-42"})
        assert reply["ok"] and reply["id"] == "req-42"

    def test_error_reply_envelope(self):
        service, _ = make_service()
        reply = service.handle({"v": 1, "op": "score", "stream": "ghost"})
        assert reply["ok"] is False
        assert reply["error"]["type"] == "unknown_stream"


# ----------------------------------------------------------------------
# service dispatch
# ----------------------------------------------------------------------
class TestDispatch:
    def test_create_ingest_score_close(self):
        _, client = make_service()
        assert client.create("s1", n_channels=2)["ok"]
        reply = client.ingest("s1", points(10))
        assert reply["ok"] and reply["accepted"] == 10
        assert (reply["seq_from"], reply["seq_to"]) == (0, 9)
        scored = client.score("s1")
        assert scored["ok"] and len(scored["results"]) == 10
        assert [r["seq"] for r in scored["results"]] == list(range(10))
        summary = client.close("s1")
        assert summary["ok"] and summary["n_points"] == 10

    def test_duplicate_stream_rejected(self):
        _, client = make_service()
        client.create("dup", n_channels=2)
        reply = client.create("dup", n_channels=2)
        assert reply["error"]["type"] == "duplicate_stream"

    def test_create_without_spec_needs_server_default(self):
        _, client = make_service(default_spec=None)
        reply = client.create("s", n_channels=2)
        assert reply["error"]["type"] == "bad_config"

    def test_create_rejects_unknown_spec(self):
        _, client = make_service()
        reply = client.create("s", spec="no_such+sw+kswin", n_channels=2)
        assert reply["error"]["type"] == "bad_config"

    def test_create_rejects_bad_config_key(self):
        _, client = make_service()
        reply = client.create("s", n_channels=2, config={"wibble": 3})
        assert reply["error"]["type"] == "bad_config"

    def test_ingest_rejects_wrong_width(self):
        _, client = make_service()
        client.create("s", n_channels=2)
        reply = client.ingest("s", points(4, n_channels=3))
        assert reply["error"]["type"] == "bad_points"

    def test_ingest_rejects_non_finite(self):
        service, client = make_service()
        client.create("s", n_channels=2)
        # NaN cannot cross the strict-JSON wire as a float; a null in its
        # place is rejected as bad points before anything is enqueued.
        reply = client.service.handle(
            {"v": 1, "op": "ingest", "stream": "s",
             "points": [[1.0, 2.0], [None, 2.0]]}
        )
        assert reply["error"]["type"] == "bad_points"
        block = points(4)
        block[2, 1] = np.nan
        with pytest.raises(StreamError):
            service.ingest("s", block)  # direct in-process API
        assert service.store.get("s").queue_depth == 0

    def test_unknown_stream_everywhere(self):
        _, client = make_service()
        for verb in ("ingest", "score", "evict", "close"):
            reply = getattr(client, verb)("ghost", *([[[0.0, 0.0]]] if verb == "ingest" else []))
            assert reply["error"]["type"] == "unknown_stream", verb

    def test_stats_shape(self):
        _, client = make_service()
        client.create("a", n_channels=2)
        client.ingest("a", points(5))
        client.score("a")
        stats = client.stats()
        assert stats["ok"]
        assert stats["n_sessions"] == 1
        block = stats["sessions"]["a"]
        assert block["seq"] == 5 and block["scored"] == 5
        assert block["hydrated"] is True
        rollup = stats["rollup"]["counters"]
        assert rollup["points_ingested"] == 5
        assert rollup["points_scored"] == 5
        assert rollup["steps"] == 5  # per-session detector telemetry merged


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_queue_full_is_all_or_nothing(self):
        service, client = make_service(queue_limit=16)
        client.create("s", n_channels=2)
        assert client.ingest("s", points(16))["ok"]
        reply = client.ingest("s", points(1))
        assert reply["ok"] is False
        error = reply["error"]
        assert error["type"] == "queue_full"
        assert error["retry_after"] > 0
        assert error["depth"] == 16 and error["limit"] == 16
        # Nothing from the rejected batch was enqueued.
        assert service.store.get("s").queue_depth == 16

    def test_slow_drain_caps_queue_depth(self):
        """A client that never collects cannot grow server memory: the
        ingest queue is capped at queue_limit and rejections are counted."""
        service, client = make_service(queue_limit=24, max_batch=8)
        client.create("s", n_channels=2)
        rejected = 0
        for _ in range(20):
            reply = client.ingest("s", points(8))
            if not reply["ok"]:
                assert reply["error"]["type"] == "queue_full"
                rejected += 1
        assert service.store.get("s").queue_depth <= 24
        assert rejected == 17  # 3 batches fit, 17 bounced
        stats = client.stats()
        assert stats["rollup"]["counters"]["ingest_rejected"] == 17

    def test_result_buffer_blocks_draining(self):
        service, client = make_service(
            queue_limit=64, result_limit=16, max_batch=8
        )
        client.create("s", n_channels=2)
        client.ingest("s", points(40))
        # Flush stops once 16 results are buffered (2 micro-batches).
        session = service.store.get("s")
        service.scheduler.flush_session(session)
        assert session.n_results == 16
        assert session.queue_depth == 24
        assert client.stats()["rollup"]["counters"]["drain_blocked"] >= 1
        # Collecting frees the buffer and draining resumes.
        assert len(client.score("s")["results"]) == 16
        service.scheduler.flush_session(session)
        assert session.queue_depth == 8  # one more result_limit's worth

    def test_retry_after_loop_recovers(self):
        _, client = make_service(queue_limit=8, max_batch=4)
        client.create("s", n_channels=2)
        values = points(64)
        scores, _ = client.score_series("s", values, ingest_size=8)
        assert scores.shape == (64,)


# ----------------------------------------------------------------------
# fairness
# ----------------------------------------------------------------------
class TestFairness:
    def test_round_robin_drain_no_starvation(self):
        """A backlogged session must not starve others: one pump pass
        gives every due session exactly one micro-batch."""
        service, client = make_service(
            queue_limit=256, max_batch=4, max_delay_ms=0.0
        )
        client.create("big", n_channels=2)
        client.create("small", n_channels=2)
        client.ingest("big", points(200))
        client.ingest("small", points(4, seed=1))
        service.pump()
        big, small = service.store.get("big"), service.store.get("small")
        assert big.scored == 4 and small.scored == 4
        # Further passes keep draining the backlog without favoring it.
        service.pump()
        assert big.scored == 8 and small.scored == 4

    def test_pump_respects_max_delay(self):
        service, client = make_service(max_batch=8, max_delay_ms=10_000.0)
        client.create("s", n_channels=2)
        client.ingest("s", points(3))
        # 3 < max_batch and nothing has waited 10s: not due yet.
        assert service.pump() == 0
        # A full batch is due immediately.
        client.ingest("s", points(5))
        assert service.pump() == 8


# ----------------------------------------------------------------------
# store / eviction units (bitwise equivalence is in test_serve_e2e)
# ----------------------------------------------------------------------
class TestStore:
    def test_capacity_evicts_lru(self, tmp_path):
        service, client = make_service(
            max_sessions=2, spill_dir=str(tmp_path / "spill")
        )
        for name in ("a", "b", "c"):
            client.create(name, n_channels=2)
            client.ingest(name, points(4))
            client.score(name)
        store = service.store
        assert store.hydrated_count() == 2
        # "a" was least recently active -> spilled to disk.
        session_a = store.get("a")
        assert not session_a.hydrated
        assert session_a.spill_path is not None and session_a.spill_path.exists()
        assert session_a.spill_path.name == spill_filename("a")

    def test_rehydration_is_transparent_and_cleans_spill(self, tmp_path):
        service, client = make_service(
            max_sessions=1, spill_dir=str(tmp_path / "spill")
        )
        client.create("a", n_channels=2)
        client.ingest("a", points(4))
        client.score("a")
        client.create("b", n_channels=2)  # evicts "a"
        session_a = service.store.get("a")
        assert not session_a.hydrated
        spill = session_a.spill_path
        client.ingest("a", points(4, seed=2))
        reply = client.score("a")  # rehydrates under the hood
        assert len(reply["results"]) == 4
        assert session_a.hydrated
        assert session_a.spill_path is None and not spill.exists()
        assert session_a.n_rehydrations == 1

    def test_forced_evict_flushes_first(self, tmp_path):
        service, client = make_service(spill_dir=str(tmp_path / "spill"))
        client.create("s", n_channels=2)
        client.ingest("s", points(10))
        reply = client.evict("s")
        assert reply["ok"] and reply["hydrated"] is False
        session = service.store.get("s")
        assert session.queue_depth == 0 and session.n_results == 10

    def test_close_removes_spill_file(self, tmp_path):
        service, client = make_service(
            max_sessions=4, spill_dir=str(tmp_path / "spill")
        )
        client.create("s", n_channels=2)
        client.ingest("s", points(4))
        client.evict("s")
        spill = service.store.get("s").spill_path
        assert spill.exists()
        client.close("s")
        assert not spill.exists()
        assert client.score("s")["error"]["type"] == "unknown_stream"

    def test_busy_sessions_are_skipped(self, tmp_path):
        """Sessions with queued points are not eviction candidates."""
        service, client = make_service(
            max_sessions=1, spill_dir=str(tmp_path / "spill")
        )
        client.create("a", n_channels=2)
        client.ingest("a", points(4))  # pending work pins "a"
        client.create("b", n_channels=2)
        assert service.store.get("a").hydrated
        counters = client.stats()["rollup"]["counters"]
        assert counters.get("evictions_skipped", 0) >= 1

    def test_idle_sweep(self, tmp_path):
        service, client = make_service(
            max_sessions=8, spill_dir=str(tmp_path / "spill")
        )
        client.create("s", n_channels=2)
        client.ingest("s", points(4))
        client.score("s")
        assert service.store.evict_idle(max_idle_seconds=0.0) == 1
        assert not service.store.get("s").hydrated


# ----------------------------------------------------------------------
# ensembles through the service
# ----------------------------------------------------------------------
class TestEnsembleSession:
    def test_ensemble_is_servable(self):
        config = DetectorConfig(**CONFIG)
        specs = (("ae", "sw", "musigma"), ("online_arima", "sw", "musigma"))
        served = EnsembleDetector(
            [build_detector(AlgorithmSpec(*s), 2, config) for s in specs],
            fusion="mean",
        )
        reference = EnsembleDetector(
            [build_detector(AlgorithmSpec(*s), 2, config) for s in specs],
            fusion="mean",
        )
        service, client = make_service(max_batch=16)
        service.create_session("ens", detector=served, n_channels=2)
        values = points(120, seed=3)
        scores, nonconformities = client.score_series("ens", values, ingest_size=30)
        expected = [reference.step(v) for v in values]
        assert np.array_equal(scores, [r.score for r in expected])
        assert np.array_equal(nonconformities, [r.nonconformity for r in expected])
        # Ensembles cannot checkpoint -> they are pinned in memory.
        session = service.store.get("ens")
        assert session.evictable is False
        assert client.evict("ens")["error"]["type"] == "bad_config"
