"""Tests for the extended isolation forest substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import NotFittedError
from repro.models import (
    ExtendedIsolationForest,
    ExtendedIsolationTree,
    average_path_length,
)


class TestAveragePathLength:
    def test_conventions(self):
        assert average_path_length(0) == 0.0
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0

    def test_monotone_increasing(self):
        values = [average_path_length(n) for n in range(2, 200)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_logarithmic_growth(self):
        assert average_path_length(1000) < 2 * np.log(1000)


class TestExtendedIsolationTree:
    def test_single_point_is_leaf(self, rng):
        tree = ExtendedIsolationTree(np.zeros((1, 3)), rng)
        assert tree.root.is_leaf

    def test_identical_points_leaf(self, rng):
        tree = ExtendedIsolationTree(np.ones((50, 3)), rng)
        assert tree.root.is_leaf

    def test_path_length_positive(self, rng):
        data = rng.normal(size=(100, 2))
        tree = ExtendedIsolationTree(data, rng)
        assert tree.path_length(data[0]) > 0

    def test_wrong_dim_rejected(self, rng):
        tree = ExtendedIsolationTree(rng.normal(size=(10, 3)), rng)
        with pytest.raises(ValueError):
            tree.path_length(np.zeros(4))

    def test_empty_data_rejected(self, rng):
        with pytest.raises(ValueError):
            ExtendedIsolationTree(np.zeros((0, 3)), rng)

    def test_extension_level_validated(self, rng):
        with pytest.raises(ValueError):
            ExtendedIsolationTree(rng.normal(size=(10, 3)), rng, extension_level=3)

    def test_extension_level_zero_axis_parallel(self, rng):
        # Level 0 splits involve exactly one dimension.
        tree = ExtendedIsolationTree(
            rng.normal(size=(100, 4)), rng, extension_level=0
        )

        def check(node):
            if node.is_leaf:
                return
            assert np.sum(node.normal != 0) == 1
            check(node.left)
            check(node.right)

        check(tree.root)

    def test_max_depth_respected(self, rng):
        tree = ExtendedIsolationTree(rng.normal(size=(256, 2)), rng, max_depth=3)
        data = rng.normal(size=(50, 2))
        raw_depths = []

        def depth_of(x):
            node, depth = tree.root, 0
            while not node.is_leaf:
                node = (
                    node.left
                    if (x - node.intercept) @ node.normal <= 0
                    else node.right
                )
                depth += 1
            return depth

        assert max(depth_of(x) for x in data) <= 3


class TestExtendedIsolationForest:
    def test_unfitted_raises(self, rng):
        forest = ExtendedIsolationForest(n_trees=5)
        with pytest.raises(NotFittedError):
            forest.score(np.zeros(3))

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ExtendedIsolationForest(n_trees=0)
        with pytest.raises(ValueError):
            ExtendedIsolationForest(subsample=1)

    def test_score_in_unit_interval(self, rng):
        data = rng.normal(size=(300, 3))
        forest = ExtendedIsolationForest(n_trees=20, seed=0).fit(data)
        for point in data[:20]:
            assert 0.0 < forest.score(point) < 1.0

    def test_outlier_scores_higher(self, rng):
        data = rng.normal(size=(400, 2))
        forest = ExtendedIsolationForest(n_trees=50, seed=0).fit(data)
        inlier_scores = [forest.score(p) for p in data[:50]]
        outliers = rng.normal(loc=8.0, size=(20, 2))
        outlier_scores = [forest.score(p) for p in outliers]
        assert np.mean(outlier_scores) > np.mean(inlier_scores) + 0.1

    def test_depths_length(self, rng):
        forest = ExtendedIsolationForest(n_trees=7, seed=0).fit(
            rng.normal(size=(100, 2))
        )
        assert forest.depths(np.zeros(2)).shape == (7,)

    @given(st.integers(min_value=2, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_score_from_depth_monotone(self, psi):
        forest = ExtendedIsolationForest(n_trees=2, subsample=max(psi, 2))
        forest._psi = psi
        scores = [forest.score_from_depth(d) for d in np.linspace(0, 20, 30)]
        assert all(b <= a for a, b in zip(scores, scores[1:]))

    def test_subsample_capped_by_data(self, rng):
        forest = ExtendedIsolationForest(n_trees=3, subsample=1000, seed=0)
        forest.fit(rng.normal(size=(20, 2)))
        assert forest._psi == 20
