"""Tests for the k-NN similarity detector (the SAFARI special case)."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.core.registry import AlgorithmSpec, build_detector
from repro.models import KNNDetector
from repro.streaming import run_stream


@pytest.fixture
def reference_windows(rng):
    points = rng.normal(size=(100, 4))
    return np.stack([np.tile(p, (3, 1)) for p in points])


class TestKNNDetector:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            KNNDetector(k=0)
        with pytest.raises(ConfigurationError):
            KNNDetector(scale_quantile=1.0)

    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KNNDetector().score(np.zeros(4))

    def test_too_few_reference_vectors_rejected(self):
        model = KNNDetector(k=10)
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((5, 3, 2)))

    def test_scores_bounded(self, reference_windows, rng):
        model = KNNDetector(k=3)
        model.fit(reference_windows)
        for window in reference_windows[:20]:
            assert 0.0 <= model.score(window) < 1.0

    def test_outlier_scores_higher(self, reference_windows):
        model = KNNDetector(k=3)
        model.fit(reference_windows)
        inlier = float(np.mean([model.score(w) for w in reference_windows[:30]]))
        outlier = model.score(np.tile(np.full(4, 10.0), (3, 1)))
        assert outlier > inlier + 0.3
        assert outlier > 0.8

    def test_reference_vector_scores_near_zero(self, reference_windows):
        model = KNNDetector(k=1)
        model.fit(reference_windows)
        assert model.score(reference_windows[0]) < 0.05

    def test_dimension_mismatch_rejected(self, reference_windows):
        model = KNNDetector()
        model.fit(reference_windows)
        with pytest.raises(ConfigurationError):
            model.score(np.zeros(5))

    def test_refit_replaces_reference(self, reference_windows, rng):
        model = KNNDetector(k=2)
        model.fit(reference_windows)
        shifted = reference_windows + 100.0
        model.fit(shifted)
        # The shifted region is now "normal", the old one far out.
        assert model.score(shifted[0]) < 0.5
        assert model.score(reference_windows[0]) > 0.9

    def test_streams_through_framework(self, rng):
        from repro.core.types import AnomalyWindow, TimeSeries, labels_from_windows

        n = 600
        values = rng.normal(size=(n, 3))
        window = AnomalyWindow(400, 420)
        values[window.start : window.end] += 6.0
        series = TimeSeries(
            values=values,
            labels=labels_from_windows([window], n),
            windows=[window],
        )
        config = DetectorConfig(
            window=4, train_capacity=64, initial_train_size=150, fit_epochs=1
        )
        detector = build_detector(
            AlgorithmSpec("knn", "ares", "musigma"), 3, config
        )
        result = run_stream(detector, series)
        nc = result.nonconformities
        assert nc[window.start : window.end].max() > np.median(
            nc[result.first_scored : window.start]
        ) + 0.2
