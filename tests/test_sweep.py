"""Property tests pinning the all-threshold sweep core to the references.

Every rewritten metric keeps its historical per-threshold implementation
as a ``*_reference`` function; these tests generate adversarial score /
label streams (heavy ties via integer-valued scores, windows touching the
series edges, empty and all-positive labels) and assert the sweep answers
match the loops — exactly for integer confusion counts, ``allclose`` at
``rtol=1e-9`` for float curves and volumes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import windows_from_labels
from repro.experiments.evaluation import best_f1_threshold
from repro.metrics import (
    buffered_label_weights,
    buffered_label_weights_reference,
    candidate_thresholds,
    count_ge,
    mass_ge,
    nab_sweep,
    nab_sweep_reference,
    pr_curve,
    range_confusion,
    range_pr_auc,
    range_pr_curve,
    range_pr_curve_reference,
    range_sweep,
    step_auc,
    step_pr_auc_reference,
    vus,
    weighted_curves_reference,
)

# Integer-valued scores maximize threshold ties — the hardest case for
# interval-indicator bookkeeping (side="left" vs "right" mistakes).
tied_scores = st.lists(
    st.integers(min_value=0, max_value=6).map(float), min_size=1, max_size=80
)
smooth_scores = st.lists(
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False), min_size=1, max_size=80
)
score_lists = st.one_of(tied_scores, smooth_scores)
label_bits = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=80)


def _pair(scores, labels):
    """Trim a scores/labels draw to a common length (>= 1)."""
    n = min(len(scores), len(labels))
    return np.asarray(scores[:n], dtype=np.float64), np.asarray(labels[:n], dtype=int)


class TestPrimitives:
    @given(score_lists, st.lists(st.floats(-10, 10), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_count_ge_matches_bruteforce(self, values, thresholds):
        values = np.asarray(values)
        thresholds = np.asarray(thresholds)
        expected = np.asarray([(values >= t).sum() for t in thresholds])
        assert np.array_equal(count_ge(values, thresholds), expected)

    @given(score_lists, st.lists(st.floats(-10, 10), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_mass_ge_matches_bruteforce(self, values, thresholds):
        values = np.asarray(values)
        rng = np.random.default_rng(0)
        weights = rng.random(values.size)
        thresholds = np.asarray(thresholds)
        expected = np.asarray([weights[values >= t].sum() for t in thresholds])
        assert np.allclose(mass_ge(values, weights, thresholds), expected, rtol=1e-9)

    @given(score_lists)
    @settings(max_examples=40, deadline=None)
    def test_step_auc_matches_reference(self, values):
        rng = np.random.default_rng(1)
        recalls = np.sort(rng.random(len(values)))
        precisions = rng.random(len(values))
        assert step_auc(recalls, precisions) == pytest.approx(
            step_pr_auc_reference(recalls, precisions), rel=1e-12
        )


class TestRangeSweep:
    @given(score_lists, label_bits)
    @settings(max_examples=120, deadline=None)
    def test_counts_equal_per_threshold_confusion(self, scores, labels):
        scores, labels = _pair(scores, labels)
        thresholds = candidate_thresholds(scores, 23)
        sweep = range_sweep(scores, labels, thresholds)
        truth = windows_from_labels(labels)
        for i, threshold in enumerate(thresholds):
            predicted = windows_from_labels((scores >= threshold).astype(int))
            confusion = range_confusion(predicted, truth)
            assert sweep.tp[i] == confusion.tp, (threshold, scores, labels)
            assert sweep.fp[i] == confusion.fp, (threshold, scores, labels)
            assert sweep.fn[i] == confusion.fn, (threshold, scores, labels)

    @given(score_lists, label_bits)
    @settings(max_examples=80, deadline=None)
    def test_curve_matches_reference(self, scores, labels):
        scores, labels = _pair(scores, labels)
        t1, p1, r1 = range_pr_curve(scores, labels, 19, backend="sweep")
        t2, p2, r2 = range_pr_curve_reference(scores, labels, 19)
        assert np.array_equal(t1, t2)
        assert np.allclose(p1, p2, rtol=1e-9)
        assert np.allclose(r1, r2, rtol=1e-9)
        assert range_pr_auc(scores, labels, 19, backend="sweep") == pytest.approx(
            range_pr_auc(scores, labels, 19, backend="reference"), rel=1e-9
        )

    @given(score_lists, label_bits)
    @settings(max_examples=80, deadline=None)
    def test_best_f1_threshold_matches_reference(self, scores, labels):
        scores, labels = _pair(scores, labels)
        assert best_f1_threshold(scores, labels, backend="sweep") == best_f1_threshold(
            scores, labels, backend="reference"
        )

    def test_rejects_unknown_backend(self):
        scores = np.asarray([0.0, 1.0])
        labels = np.asarray([0, 1])
        with pytest.raises(ValueError):
            range_pr_curve(scores, labels, backend="nope")


class TestVUSSweep:
    @given(label_bits, st.integers(min_value=0, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_buffered_weights_bitwise_equal(self, labels, buffer):
        labels = np.asarray(labels, dtype=int)
        fast = buffered_label_weights(labels, buffer)
        slow = buffered_label_weights_reference(labels, buffer)
        assert np.array_equal(fast, slow), (labels, buffer)

    @given(score_lists, label_bits, st.integers(min_value=0, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_vus_matches_reference(self, scores, labels, max_buffer):
        scores, labels = _pair(scores, labels)
        fast = vus(scores, labels, max_buffer=max_buffer, backend="sweep")
        slow = vus(scores, labels, max_buffer=max_buffer, backend="reference")
        assert fast.buffers == slow.buffers
        assert np.allclose(fast.pr_aucs, slow.pr_aucs, rtol=1e-9)
        assert np.allclose(fast.roc_aucs, slow.roc_aucs, rtol=1e-9)
        assert fast.vus_pr == pytest.approx(slow.vus_pr, rel=1e-9)
        assert fast.vus_roc == pytest.approx(slow.vus_roc, rel=1e-9)

    @given(score_lists, label_bits)
    @settings(max_examples=40, deadline=None)
    def test_weighted_curve_matches_reference_loop(self, scores, labels):
        scores, labels = _pair(scores, labels)
        weights = buffered_label_weights(labels, 6)
        thresholds = candidate_thresholds(scores, 17)
        pr_slow, _ = weighted_curves_reference(scores, labels, weights, thresholds, 0.0)
        curve = pr_curve(scores, weights=weights, thresholds=thresholds)
        assert curve.auc() == pytest.approx(pr_slow, rel=1e-9)


class TestNABSweep:
    @given(score_lists, label_bits)
    @settings(max_examples=100, deadline=None)
    def test_matches_per_threshold_reference(self, scores, labels):
        scores, labels = _pair(scores, labels)
        thresholds = candidate_thresholds(scores, 21)
        fast = nab_sweep(scores, labels, thresholds)
        slow = nab_sweep_reference(scores, labels, thresholds)
        assert np.array_equal(fast.n_detected, slow.n_detected)
        assert np.array_equal(fast.n_missed, slow.n_missed)
        assert np.array_equal(
            fast.n_false_positive_steps, slow.n_false_positive_steps
        )
        assert np.allclose(fast.rewards, slow.rewards, rtol=1e-9, atol=1e-12)
        assert np.allclose(fast.scores, slow.scores, rtol=1e-9, atol=1e-12)

    @given(score_lists, label_bits)
    @settings(max_examples=30, deadline=None)
    def test_profile_weights_respected(self, scores, labels):
        scores, labels = _pair(scores, labels)
        thresholds = candidate_thresholds(scores, 11)
        fast = nab_sweep(scores, labels, thresholds, a_fp=2.0, a_fn=0.5)
        slow = nab_sweep_reference(scores, labels, thresholds, a_fp=2.0, a_fn=0.5)
        assert np.allclose(fast.scores, slow.scores, rtol=1e-9, atol=1e-12)
