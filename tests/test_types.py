"""Tests for core value objects: AnomalyWindow, TimeSeries, label helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import (
    AnomalyWindow,
    TimeSeries,
    labels_from_windows,
    windows_from_labels,
)


class TestAnomalyWindow:
    def test_length(self):
        assert len(AnomalyWindow(5, 12)) == 7

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            AnomalyWindow(5, 5)

    def test_reversed_window_rejected(self):
        with pytest.raises(ValueError):
            AnomalyWindow(10, 3)

    def test_contains_boundaries(self):
        window = AnomalyWindow(5, 10)
        assert window.contains(5)
        assert window.contains(9)
        assert not window.contains(10)
        assert not window.contains(4)

    def test_overlaps_true(self):
        assert AnomalyWindow(0, 10).overlaps(AnomalyWindow(9, 20))

    def test_overlaps_false_adjacent(self):
        assert not AnomalyWindow(0, 10).overlaps(AnomalyWindow(10, 20))

    def test_overlaps_contained(self):
        assert AnomalyWindow(0, 100).overlaps(AnomalyWindow(40, 50))


class TestWindowsFromLabels:
    def test_empty(self):
        assert windows_from_labels(np.zeros(10, dtype=int)) == []

    def test_single_run(self):
        labels = np.array([0, 0, 1, 1, 1, 0])
        windows = windows_from_labels(labels)
        assert len(windows) == 1
        assert (windows[0].start, windows[0].end) == (2, 5)

    def test_run_at_edges(self):
        labels = np.array([1, 1, 0, 0, 1])
        windows = windows_from_labels(labels)
        assert [(w.start, w.end) for w in windows] == [(0, 2), (4, 5)]

    def test_all_positive(self):
        windows = windows_from_labels(np.ones(7, dtype=int))
        assert [(w.start, w.end) for w in windows] == [(0, 7)]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            windows_from_labels(np.zeros((3, 3), dtype=int))

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, bits):
        labels = np.asarray(bits, dtype=np.int_)
        windows = windows_from_labels(labels)
        reconstructed = labels_from_windows(windows, labels.size)
        assert np.array_equal(labels, reconstructed)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_windows_disjoint_and_sorted(self, bits):
        windows = windows_from_labels(np.asarray(bits, dtype=np.int_))
        for first, second in zip(windows, windows[1:]):
            assert first.end < second.start  # maximal runs are separated


class TestTimeSeries:
    def test_univariate_promoted_to_2d(self):
        series = TimeSeries(values=np.arange(5.0), labels=np.zeros(5, dtype=int))
        assert series.values.shape == (5, 1)
        assert series.n_channels == 1

    def test_label_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(values=np.zeros((5, 2)), labels=np.zeros(4, dtype=int))

    def test_three_dimensional_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(values=np.zeros((5, 2, 2)), labels=np.zeros(5, dtype=int))

    def test_anomaly_rate(self):
        labels = np.array([0, 1, 1, 0])
        series = TimeSeries(values=np.zeros((4, 1)), labels=labels)
        assert series.anomaly_rate == pytest.approx(0.5)

    def test_slice_rebases_windows(self, labelled_series):
        sliced = labelled_series.slice(290, 340)
        assert sliced.n_steps == 50
        assert len(sliced.windows) == 1
        assert (sliced.windows[0].start, sliced.windows[0].end) == (10, 30)
        assert np.array_equal(
            sliced.labels, labels_from_windows(sliced.windows, 50)
        )

    def test_slice_clips_partial_window(self, labelled_series):
        sliced = labelled_series.slice(310, 340)
        assert (sliced.windows[0].start, sliced.windows[0].end) == (0, 10)

    def test_slice_copies_data(self, labelled_series):
        sliced = labelled_series.slice(0, 100)
        sliced.values[0, 0] = 999.0
        assert labelled_series.values[0, 0] != 999.0
