"""Tests for the observability layer (repro.obs) and its integrations."""

import json
import logging

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.datasets import make_smd
from repro.experiments.table3 import Table3Config, run_table3
from repro.obs import (
    NULL_TELEMETRY,
    STAGE_PREFIX,
    NullTelemetry,
    Telemetry,
    build_manifest,
    fingerprint_config,
    get_stream_logger,
    merge_payloads,
)
from repro.obs.streamlog import _HANDLER_TAG
from repro.streaming import CellFailure, ParallelCorpusRunner, build_cells, run_corpus
from repro.streaming import parallel as parallel_module
from repro.streaming.runner import run_stream


def make_series(n=600, seed=3, drift=True):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    if drift:
        values[n // 2 :] *= 2.5
        values[n // 2 :] += 1.0
    values += rng.normal(scale=0.08, size=values.shape)
    return TimeSeries(values=values, labels=np.zeros(n, dtype=int), name="obs")


def fresh_detector(spec=("ae", "sw", "kswin"), **overrides):
    config = DetectorConfig(
        window=6,
        train_capacity=24,
        fit_epochs=3,
        kswin_check_every=1,
        **overrides,
    )
    return build_detector(AlgorithmSpec(*spec), n_channels=2, config=config)


class TestTelemetry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("steps")
        tel.count("steps", 5)
        assert tel.counters["steps"] == 6

    def test_spans_accumulate_calls_and_seconds(self):
        tel = Telemetry()
        tel.add_time("score", 0.5)
        tel.add_time("score", 1.5, calls=3)
        assert tel.spans["score"] == [4, 2.0]

    def test_span_context_manager(self):
        tel = Telemetry()
        with tel.span("work"):
            pass
        calls, seconds = tel.spans["work"]
        assert calls == 1
        assert seconds >= 0.0

    def test_event_log_is_bounded(self):
        tel = Telemetry(max_events=3)
        for i in range(5):
            tel.event("tick", i=i)
        assert len(tel.events) == 3
        assert tel.n_events_dropped == 2
        assert [e["i"] for e in tel.events] == [2, 3, 4]

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            Telemetry(max_events=0)

    def test_as_dict_is_json_safe(self):
        tel = Telemetry()
        tel.count("steps", 2)
        tel.add_time("score", 0.25)
        tel.event("finetune", t=10)
        payload = tel.as_dict()
        json.dumps(payload)
        assert payload["counters"] == {"steps": 2}
        assert payload["spans"]["score"] == {"calls": 1, "seconds": 0.25}
        assert payload["events"] == [{"kind": "finetune", "t": 10}]

    def test_merge_payload_sums(self):
        a, b = Telemetry(), Telemetry()
        a.count("steps", 2)
        a.add_time("score", 1.0, calls=2)
        a.event("x", t=1)
        b.count("steps", 3)
        b.add_time("score", 0.5)
        merged = merge_payloads([a.as_dict(), b.as_dict(), None])
        assert merged["counters"]["steps"] == 5
        assert merged["spans"]["score"] == {"calls": 3, "seconds": 1.5}
        assert merged["events"] == [{"kind": "x", "t": 1}]

    def test_stage_seconds(self):
        tel = Telemetry()
        tel.add_time(STAGE_PREFIX + "stream", 2.0)
        tel.add_time("score", 1.0)
        assert tel.stage_seconds() == 2.0

    def test_reset(self):
        tel = Telemetry()
        tel.count("steps")
        tel.add_time("score", 1.0)
        tel.event("x")
        tel.reset()
        assert tel.as_dict() == {
            "counters": {},
            "spans": {},
            "events": [],
            "n_events_dropped": 0,
        }


class TestNullTelemetry:
    def test_everything_is_a_noop(self):
        tel = NullTelemetry()
        tel.count("steps", 5)
        tel.add_time("score", 1.0)
        tel.event("x", t=1)
        with tel.span("work"):
            pass
        tel.merge_payload({"counters": {"steps": 9}})
        assert not tel.enabled
        assert tel.as_dict() == {
            "counters": {},
            "spans": {},
            "events": [],
            "n_events_dropped": 0,
        }

    def test_shared_singleton_is_null(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert not NULL_TELEMETRY.enabled


class TestRunManifest:
    def test_fingerprint_is_stable_and_sensitive(self):
        a = Table3Config(n_steps=100)
        b = Table3Config(n_steps=100)
        c = Table3Config(n_steps=101)
        assert fingerprint_config(a) == fingerprint_config(b)
        assert fingerprint_config(a) != fingerprint_config(c)

    def test_build_manifest_splits_stages_from_spans(self):
        tel = Telemetry()
        tel.add_time(STAGE_PREFIX + "stream", 1.5)
        tel.add_time("score", 0.5)
        tel.count("steps", 10)
        manifest = build_manifest("test", {"a": 1}, tel, wall_time_seconds=2.0)
        assert [s["name"] for s in manifest.stages] == ["stream"]
        assert manifest.stage_seconds == 1.5
        assert "score" in manifest.spans
        assert STAGE_PREFIX + "stream" not in manifest.spans
        assert manifest.counters == {"steps": 10}

    def test_write_round_trips_as_json(self, tmp_path):
        tel = Telemetry()
        tel.add_time(STAGE_PREFIX + "stream", 1.0)
        manifest = build_manifest(
            "test", Table3Config(), tel, wall_time_seconds=1.1, seeds=[7]
        )
        path = manifest.write(tmp_path / "manifest.json")
        payload = json.loads(path.read_text())
        assert payload["schema"].startswith("repro.obs/run-manifest/")
        assert payload["seeds"] == [7]
        assert payload["versions"]["numpy"] == np.__version__
        assert payload["config"]["n_series"] == 2
        assert payload["config_fingerprint"] == fingerprint_config(Table3Config())


class TestTelemetryInvariance:
    """Tracing must never change a score — the zero-feedback guarantee."""

    @pytest.mark.parametrize("batch_size", [None, 32])
    @pytest.mark.parametrize(
        "spec", [("ae", "sw", "kswin"), ("pcb_iforest", "sw", "kswin")]
    )
    def test_traced_scores_bitwise_identical(self, spec, batch_size):
        series = make_series()
        plain = run_stream(fresh_detector(spec), series, batch_size=batch_size)
        traced = run_stream(
            fresh_detector(spec),
            series,
            batch_size=batch_size,
            telemetry=Telemetry(),
        )
        assert np.array_equal(plain.scores, traced.scores)
        assert np.array_equal(plain.nonconformities, traced.nonconformities)
        assert plain.drift_steps == traced.drift_steps
        assert plain.telemetry is None
        assert traced.telemetry is not None

    @pytest.mark.parametrize("batch_size", [None, 7, 64])
    def test_counters_match_result_exactly(self, batch_size):
        series = make_series()
        tel = Telemetry()
        result = run_stream(
            fresh_detector(), series, batch_size=batch_size, telemetry=tel
        )
        c = tel.counters
        assert c["steps"] == series.n_steps
        assert c.get("finetunes", 0) == result.n_finetunes
        assert c.get("drift_fires", 0) == len(result.drift_steps)
        assert c.get("initial_fits", 0) == 1

    def test_stage_time_covers_stream_wall_time(self):
        tel = Telemetry()
        result = run_stream(
            fresh_detector(), make_series(), batch_size=32, telemetry=tel
        )
        manifest = build_manifest(
            "stream", {}, tel, wall_time_seconds=result.runtime_seconds
        )
        assert manifest.stage_seconds >= 0.9 * manifest.wall_time_seconds


class TestDetectorPickleHygiene:
    def test_telemetry_never_pickled(self):
        import pickle

        detector = fresh_detector()
        detector.telemetry = Telemetry()
        run_stream(detector, make_series(n=200), batch_size=16)
        clone = pickle.loads(pickle.dumps(detector))
        assert clone.telemetry is NULL_TELEMETRY


class TestStreamLogger:
    def test_handler_attached_at_most_once(self):
        logger = logging.getLogger("repro.stream.test-idempotent")
        logger.handlers.clear()
        logger.propagate = False  # isolate from root/pytest handlers
        try:
            for _ in range(5):
                get_stream_logger("repro.stream.test-idempotent")
            tagged = [
                h for h in logger.handlers if getattr(h, _HANDLER_TAG, False)
            ]
            assert len(tagged) == 1
        finally:
            logger.handlers.clear()
            logger.propagate = True

    def test_respects_existing_handlers(self):
        logger = logging.getLogger("repro.stream.test-existing")
        logger.handlers.clear()
        logger.propagate = False
        own_handler = logging.NullHandler()
        logger.addHandler(own_handler)
        try:
            get_stream_logger("repro.stream.test-existing")
            assert logger.handlers == [own_handler]
        finally:
            logger.handlers.clear()
            logger.propagate = True

    def test_repeated_runs_emit_each_line_once(self, caplog):
        corpus = make_smd(n_series=1, n_steps=250, clean_prefix=60, seed=0)
        config = DetectorConfig(window=8, train_capacity=24, fit_epochs=1)

        def factory(series):
            return build_detector(
                AlgorithmSpec("online_arima", "sw", "musigma"),
                n_channels=series.n_channels,
                config=config,
            )

        with caplog.at_level(logging.INFO, logger="repro.stream"):
            run_corpus(factory, corpus, progress_every=100)
            run_corpus(factory, corpus, progress_every=100)
        assert caplog.text.count("step 100/250") == 2


class TestGridTelemetry:
    CONFIG = DetectorConfig(window=8, train_capacity=24, fit_epochs=1)

    def _cells(self, n_series=2):
        corpus = make_smd(n_series=n_series, n_steps=300, clean_prefix=80, seed=3)
        specs = [AlgorithmSpec("online_arima", "sw", "musigma")]
        return build_cells(specs, corpus, self.CONFIG, scorers=("avg",))

    def test_rollup_counts_cells(self):
        grid = ParallelCorpusRunner(n_jobs=1).run(self._cells())
        assert grid.telemetry["counters"]["cells_ok"] == 2
        assert "cells_failed" not in grid.telemetry["counters"]

    def test_traced_rollup_merges_cell_telemetry(self):
        cells = self._cells()
        grid = ParallelCorpusRunner(n_jobs=1, trace=True).run(cells)
        counters = grid.telemetry["counters"]
        assert counters["steps"] == sum(c.series.n_steps for c in cells)
        assert "stage:stream" in grid.telemetry["spans"]
        for result in grid.results:
            assert result.telemetry is not None

    def test_traced_parallel_equals_sequential_scores(self):
        cells = self._cells()
        plain = ParallelCorpusRunner(n_jobs=1).run(cells)
        traced = ParallelCorpusRunner(n_jobs=2, trace=True).run(cells)
        for a, b in zip(plain.results, traced.results):
            assert np.array_equal(a.scores, b.scores)

    def test_trace_off_leaves_results_untraced(self):
        grid = ParallelCorpusRunner(n_jobs=1).run(self._cells())
        for result in grid.results:
            assert result.telemetry is None


class TestBoundedRetry:
    CONFIG = DetectorConfig(window=8, train_capacity=24, fit_epochs=1)

    def _poisoned_cells(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(300, 2))
        values[150:] = np.inf
        series = TimeSeries(
            values=values, labels=np.zeros(300, dtype=int), name="poisoned"
        )
        return build_cells(
            [AlgorithmSpec("online_arima", "sw", "musigma")],
            [series],
            self.CONFIG,
            scorers=("avg",),
        )

    def test_deterministic_failure_fails_again_and_is_final(self):
        grid = ParallelCorpusRunner(n_jobs=1).run(self._poisoned_cells())
        assert len(grid.failures) == 1
        assert grid.failures[0].retried
        counters = grid.telemetry["counters"]
        assert counters["cells_failed"] == 1
        assert counters["cell_retries"] == 1
        assert "cells_recovered" not in counters

    def test_retries_zero_disables_the_retry_pass(self):
        grid = ParallelCorpusRunner(n_jobs=1, retries=0).run(
            self._poisoned_cells()
        )
        assert len(grid.failures) == 1
        assert not grid.failures[0].retried
        assert "cell_retries" not in grid.telemetry["counters"]

    def test_transient_failure_recovers_on_retry(self, monkeypatch):
        cells = build_cells(
            [AlgorithmSpec("online_arima", "sw", "musigma")],
            make_smd(n_series=1, n_steps=250, clean_prefix=60, seed=0),
            self.CONFIG,
            scorers=("avg",),
        )
        real_run_cell = parallel_module._run_cell
        attempts = {"n": 0}

        def flaky_run_cell(payload):
            attempts["n"] += 1
            if attempts["n"] == 1:
                cell = payload[0]
                return CellFailure(
                    label=cell.label,
                    series_name=cell.series.name,
                    error_type="TransientError",
                    message="simulated worker loss",
                    traceback="(simulated)",
                )
            return real_run_cell(payload)

        monkeypatch.setattr(parallel_module, "_run_cell", flaky_run_cell)
        grid = ParallelCorpusRunner(n_jobs=1).run(cells)
        assert not grid.failures
        assert len(grid.results) == 1
        counters = grid.telemetry["counters"]
        assert counters["cells_ok"] == 1
        assert counters["cell_retries"] == 1
        assert counters["cells_recovered"] == 1

    def test_retries_validated(self):
        with pytest.raises(ValueError):
            ParallelCorpusRunner(retries=-1)


class TestCorpusTelemetry:
    CONFIG = DetectorConfig(window=8, train_capacity=24, fit_epochs=1)

    def _factory(self, series):
        return build_detector(
            AlgorithmSpec("online_arima", "sw", "musigma"),
            n_channels=series.n_channels,
            config=self.CONFIG,
        )

    def test_sequential_corpus_accumulates(self):
        corpus = make_smd(n_series=2, n_steps=250, clean_prefix=60, seed=0)
        tel = Telemetry()
        run_corpus(self._factory, corpus, telemetry=tel)
        assert tel.counters["steps"] == sum(s.n_steps for s in corpus)
        assert tel.counters["initial_fits"] == 2

    def test_parallel_corpus_merges_worker_snapshots(self):
        corpus = make_smd(n_series=2, n_steps=250, clean_prefix=60, seed=0)
        tel = Telemetry()
        run_corpus(self._factory, corpus, n_jobs=2, telemetry=tel)
        assert tel.counters["steps"] == sum(s.n_steps for s in corpus)


class TestExperimentTelemetry:
    def test_table3_traced_run_covers_wall_time(self):
        import time

        config = Table3Config(
            n_series=1,
            n_steps=400,
            clean_prefix=100,
            stream_chunk=32,
            detector=DetectorConfig(
                window=8,
                train_capacity=48,
                initial_train_size=88,
                fit_epochs=3,
                kswin_check_every=8,
                scorer_k=24,
                scorer_k_short=3,
            ),
        )
        specs = [
            AlgorithmSpec("ae", "sw", "kswin"),
            AlgorithmSpec("online_arima", "sw", "musigma"),
        ]
        tel = Telemetry()
        plain_rows = run_table3("daphnet", specs=specs, config=config)
        started = time.perf_counter()
        traced_rows = run_table3(
            "daphnet", specs=specs, config=config, telemetry=tel
        )
        wall = time.perf_counter() - started

        # Tracing never changes a number in the table.
        for a, b in zip(plain_rows, traced_rows):
            assert a.metrics == b.metrics
            assert a.n_finetunes == b.n_finetunes

        manifest = build_manifest("table3", config, tel, wall_time_seconds=wall)
        stage_names = {s["name"] for s in manifest.stages}
        assert {"corpus", "stream", "evaluate"} <= stage_names
        assert tel.counters["steps"] == 2 * 2 * 400  # specs x scorers x steps
        assert tel.counters["cells_ok"] == 4


class TestCliTrace:
    def test_trace_writes_manifest(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "manifest.json"
        code = main(
            [
                "table3",
                "--corpus",
                "daphnet",
                "--series",
                "1",
                "--steps",
                "400",
                "--prefix",
                "100",
                "--window",
                "8",
                "--capacity",
                "48",
                "--epochs",
                "3",
                "--stream-chunk",
                "32",
                "--trace",
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        assert str(out) in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["command"] == "table3"
        assert payload["seeds"] == [7]
        assert payload["counters"]["steps"] > 0
        # The coarse stages account for (nearly) all of the wall time.
        stage_seconds = sum(s["seconds"] for s in payload["stages"])
        assert stage_seconds >= 0.9 * payload["wall_time_seconds"]
