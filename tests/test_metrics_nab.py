"""Tests for the NAB scoring function."""

import numpy as np
import pytest

from repro.core.types import AnomalyWindow
from repro.metrics import detection_reward, nab_score, scaled_sigmoid


class TestScaledSigmoid:
    def test_monotone_decreasing(self):
        ys = np.linspace(-2, 2, 50)
        values = [scaled_sigmoid(y) for y in ys]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_zero_at_origin(self):
        assert scaled_sigmoid(0.0) == pytest.approx(0.0)

    def test_negative_after_window(self):
        assert scaled_sigmoid(0.5) < 0.0


class TestDetectionReward:
    def test_window_start_full_reward(self):
        window = AnomalyWindow(100, 120)
        assert detection_reward(100, window) == pytest.approx(1.0)

    def test_window_end_low_reward(self):
        window = AnomalyWindow(100, 120)
        assert detection_reward(119, window) < 0.05

    def test_earlier_is_better(self):
        window = AnomalyWindow(100, 150)
        rewards = [detection_reward(t, window) for t in range(100, 150)]
        assert all(b <= a for a, b in zip(rewards, rewards[1:]))

    def test_outside_window_rejected(self):
        with pytest.raises(ValueError):
            detection_reward(120, AnomalyWindow(100, 120))

    def test_single_step_window(self):
        window = AnomalyWindow(5, 6)
        assert detection_reward(5, window) == pytest.approx(1.0)


class TestNABScore:
    def _series(self, n=1000):
        labels = np.zeros(n, dtype=int)
        labels[200:220] = 1
        labels[600:640] = 1
        return labels

    def test_perfect_early_detector(self):
        labels = self._series()
        scores = labels.astype(float)
        result = nab_score(scores, labels, threshold=0.5)
        assert result.score == pytest.approx(1.0)
        assert result.n_detected == 2
        assert result.n_false_positive_steps == 0

    def test_blind_detector(self):
        labels = self._series()
        result = nab_score(np.zeros(labels.size), labels, threshold=0.5)
        assert result.score == pytest.approx(-1.0)
        assert result.n_missed == 2

    def test_always_positive_detector_deeply_negative(self):
        # The paper's hallmark: long false-positive intervals crater the
        # point-wise NAB score while range metrics stay high.
        labels = self._series()
        result = nab_score(np.ones(labels.size), labels, threshold=0.5)
        assert result.score < -100.0
        assert result.n_detected == 2

    def test_late_detection_scores_below_early(self):
        labels = self._series()
        early = np.zeros(labels.size)
        early[200] = 1.0
        early[600] = 1.0
        late = np.zeros(labels.size)
        late[219] = 1.0
        late[639] = 1.0
        early_score = nab_score(early, labels, 0.5).score
        late_score = nab_score(late, labels, 0.5).score
        assert early_score > late_score

    def test_fp_penalty_weight(self):
        labels = self._series()
        scores = labels.astype(float).copy()
        scores[50:60] = 1.0  # 10 false-positive steps
        lenient = nab_score(scores, labels, 0.5, a_fp=0.5).score
        harsh = nab_score(scores, labels, 0.5, a_fp=2.0).score
        assert lenient > harsh

    def test_no_true_windows_returns_zero(self):
        result = nab_score(np.ones(100), np.zeros(100, dtype=int), 0.5)
        assert result.score == 0.0
        assert result.n_false_positive_steps == 100

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nab_score(np.zeros(5), np.zeros(6, dtype=int), 0.5)

    def test_components_consistent(self):
        labels = self._series()
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=labels.size)
        result = nab_score(scores, labels, threshold=0.8)
        assert result.n_detected + result.n_missed == 2
        assert 0.0 <= result.rewards <= result.n_detected
