"""Tests for the two-layer autoencoder."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import TwoLayerAutoencoder


class TestTwoLayerAutoencoder:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            TwoLayerAutoencoder(window=0, n_channels=3)
        with pytest.raises(ConfigurationError):
            TwoLayerAutoencoder(window=4, n_channels=0)

    def test_predict_before_fit_raises(self):
        model = TwoLayerAutoencoder(window=4, n_channels=2)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((4, 2)))

    def test_wrong_window_shape_rejected(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=1)
        model.fit(small_windows)
        with pytest.raises(ConfigurationError):
            model.predict(np.zeros((9, 3)))
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((5, 9, 3)))

    def test_training_reduces_loss(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=1, seed=0)
        first = model.fit(small_windows, epochs=1)
        last = model.finetune(small_windows, epochs=40)
        assert last < first * 0.8

    def test_reconstruction_quality(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=60, seed=0)
        model.fit(small_windows)
        window = small_windows[10]
        reconstruction = model.predict(window)
        assert reconstruction.shape == (8, 3)
        correlation = np.corrcoef(window.ravel(), reconstruction.ravel())[0, 1]
        assert correlation > 0.8

    def test_loss_method(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=30, seed=0)
        model.fit(small_windows)
        assert model.loss(small_windows) >= 0.0

    def test_predict_output_in_original_units(self, small_windows):
        # Shift data far from zero; reconstruction must live in that range.
        shifted = small_windows + 100.0
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=40, seed=0)
        model.fit(shifted)
        reconstruction = model.predict(shifted[0])
        assert abs(reconstruction.mean() - 100.0) < 5.0

    def test_finetune_without_fit_fits_scaler(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, seed=0)
        model.finetune(small_windows, epochs=1)
        assert model.is_fitted

    def test_deterministic_given_seed(self, small_windows):
        out = []
        for _ in range(2):
            model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=3, seed=42)
            model.fit(small_windows)
            out.append(model.predict(small_windows[0]))
        np.testing.assert_allclose(out[0], out[1])

    def test_custom_hidden_width(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, hidden=5, epochs=1)
        model.fit(small_windows)
        assert model.network[0].out_features == 5
