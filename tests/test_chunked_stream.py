"""Bitwise-identity property tests for the chunked streaming engine.

The contract under test: for every algorithm in the registry, streaming a
series through :func:`run_stream` with any ``batch_size`` yields exactly
the same scores, nonconformities, events and drift steps as
``batch_size=1`` — the sequential reference of the chunked engine.  The
supporting layers (block scorers, rolling-buffer block pushes, chunk
validation, detector reuse) are covered individually below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import StreamingAnomalyDetector
from repro.core.exceptions import StreamError
from repro.core.registry import AlgorithmSpec, build_algorithm_grid, build_detector
from repro.core.representation import RollingBuffer, WindowRepresentation
from repro.core.types import TimeSeries
from repro.datasets.corpora import make_daphnet
from repro.scoring.anomaly_score import (
    AnomalyLikelihood,
    AverageScore,
    ConformalScorer,
    RawScore,
)
from repro.streaming.runner import StreamResult, run_stream

CONFIG = DetectorConfig(window=8, train_capacity=24, fit_epochs=1, kswin_check_every=4)
CHUNK_SIZES = (7, 64)


@pytest.fixture(scope="module")
def series() -> TimeSeries:
    return make_daphnet(n_series=1, n_steps=260, clean_prefix=50, seed=0)[0]


def result_fingerprint(result: StreamResult) -> tuple:
    """Everything the identity contract pins, bit for bit."""
    return (
        result.scores.tobytes(),
        result.nonconformities.tobytes(),
        tuple(
            (e.t, e.reason, e.train_set_size, repr(e.loss_before), repr(e.loss_after))
            for e in result.events
        ),
        tuple(result.drift_steps),
        result.first_scored,
    )


def run_chunked(spec: AlgorithmSpec, series: TimeSeries, chunk: int) -> StreamResult:
    detector = build_detector(spec, n_channels=series.n_channels, config=CONFIG)
    return run_stream(detector, series, batch_size=chunk)


@pytest.mark.parametrize("spec", build_algorithm_grid(), ids=lambda s: s.label)
def test_registry_chunk_invariance(spec, series):
    """All 26 Table-I combos: any chunking == the chunk=1 reference."""
    reference = result_fingerprint(run_chunked(spec, series, 1))
    for chunk in CHUNK_SIZES:
        assert result_fingerprint(run_chunked(spec, series, chunk)) == reference, (
            f"{spec.label} diverged at chunk={chunk}"
        )


@pytest.mark.parametrize(
    "model", ["var", "knn", "kmeans", "rs_forest"], ids=str
)
def test_extension_models_chunk_invariance(model, series):
    """Extension models (incl. stateful score models on the fallback path)."""
    spec = AlgorithmSpec(model, "sw", "musigma")
    reference = result_fingerprint(run_chunked(spec, series, 1))
    for chunk in CHUNK_SIZES:
        assert result_fingerprint(run_chunked(spec, series, chunk)) == reference


@pytest.mark.parametrize(
    "task2", ["regular", "never", "page_hinkley", "adwin"], ids=str
)
def test_lazy_train_set_detectors_chunk_invariance(task2, series):
    """Task-2 detectors that skip training-set materialization."""
    spec = AlgorithmSpec("ae", "sw", task2)
    reference = result_fingerprint(run_chunked(spec, series, 1))
    for chunk in CHUNK_SIZES:
        assert result_fingerprint(run_chunked(spec, series, chunk)) == reference


def test_finetune_straddles_chunk(series):
    """A chunk that spans several fine-tune events still matches chunk=1.

    With ``regular`` Task-2 the fine-tune schedule is known: sessions at
    every multiple of the interval, several of which land strictly inside
    a 64-step chunk, exercising the speculative-rollback path.
    """
    spec = AlgorithmSpec("ae", "sw", "regular")
    reference = run_chunked(spec, series, 1)
    chunked = run_chunked(spec, series, 64)
    finetune_steps = [e.t for e in chunked.events if e.reason != "initial_fit"]
    assert any(step % 64 not in (0, 63) for step in finetune_steps)
    assert result_fingerprint(chunked) == result_fingerprint(reference)


def test_run_stream_rejects_bad_batch_size(series):
    spec = AlgorithmSpec("ae", "sw", "never")
    detector = build_detector(spec, n_channels=series.n_channels, config=CONFIG)
    with pytest.raises(ValueError, match="batch_size"):
        run_stream(detector, series, batch_size=0)


# ----------------------------------------------------------------------
# scorers: block updates and snapshots
# ----------------------------------------------------------------------
def make_scorers():
    return [
        RawScore(),
        AverageScore(k=5),
        ConformalScorer(k=7),
        AnomalyLikelihood(k=9, k_short=3),
    ]


@pytest.mark.parametrize("scorer", make_scorers(), ids=lambda s: s.name)
def test_update_batch_matches_scalar_loop(scorer, rng):
    values = rng.uniform(size=37)
    reference = type(scorer)(**_scorer_kwargs(scorer))
    expected = np.asarray([reference.update(float(v)) for v in values])
    # split the block arbitrarily: state must carry across calls
    got = np.concatenate(
        [scorer.update_batch(values[:4]), scorer.update_batch(values[4:])]
    )
    assert got.tobytes() == expected.tobytes()


def _scorer_kwargs(scorer):
    if isinstance(scorer, AverageScore):
        return {"k": scorer.k}
    if isinstance(scorer, ConformalScorer):
        return {"k": scorer.k}
    if isinstance(scorer, AnomalyLikelihood):
        return {"k": scorer.k, "k_short": scorer.k_short}
    return {}


@pytest.mark.parametrize("scorer", make_scorers(), ids=lambda s: s.name)
def test_snapshot_restore_round_trip(scorer, rng):
    warm = rng.uniform(size=11)
    scorer.update_batch(warm)
    state = scorer.snapshot()
    after_snapshot = scorer.update_batch(rng.uniform(size=8))
    scorer.restore(state)
    probe = rng.uniform(size=8)
    replay_a = scorer.update_batch(probe)
    scorer.restore(state)
    replay_b = scorer.update_batch(probe)
    assert replay_a.tobytes() == replay_b.tobytes()
    assert after_snapshot.shape == (8,)


# ----------------------------------------------------------------------
# rolling buffer: block pushes
# ----------------------------------------------------------------------
class TestPushBlock:
    def _buffers(self, window=5):
        return (
            RollingBuffer(WindowRepresentation(window)),
            RollingBuffer(WindowRepresentation(window)),
        )

    def test_matches_sequential_pushes(self, rng):
        sequential, blocked = self._buffers()
        values = rng.normal(size=(23, 3))
        expected = [sequential.push(row) for row in values]
        windows, n_cold = blocked.push_block(values)
        assert n_cold == 4  # window 5: first 4 pushes emit nothing
        assert len(windows) == 23 - n_cold
        for window, reference in zip(windows, expected[n_cold:]):
            assert window.tobytes() == reference.tobytes()
        assert blocked.window_view().tobytes() == sequential.window_view().tobytes()

    def test_mixed_push_and_push_block(self, rng):
        sequential, blocked = self._buffers()
        values = rng.normal(size=(17, 2))
        expected = [sequential.push(row) for row in values]
        got = [blocked.push(row) for row in values[:7]]
        windows, n_cold = blocked.push_block(values[7:10])
        assert n_cold == 0
        got.extend(windows)
        more, _ = blocked.push_block(values[10:])
        got.extend(more)
        for window, reference in zip(got[4:], expected[4:]):
            assert window.tobytes() == reference.tobytes()

    def test_block_larger_than_window(self, rng):
        sequential, blocked = self._buffers(window=4)
        values = rng.normal(size=(12, 2))
        for row in values:
            sequential.push(row)
        windows, n_cold = blocked.push_block(values)
        assert n_cold == 3
        assert len(windows) == 9
        assert blocked.window_view().tobytes() == sequential.window_view().tobytes()

    def test_entirely_cold_block(self, rng):
        _, blocked = self._buffers(window=10)
        windows, n_cold = blocked.push_block(rng.normal(size=(4, 2)))
        assert n_cold == 4
        assert len(windows) == 0
        assert not blocked.is_warm


# ----------------------------------------------------------------------
# detector: reuse, warm-up and chunk validation
# ----------------------------------------------------------------------
def _build(spec=None) -> StreamingAnomalyDetector:
    spec = spec or AlgorithmSpec("ae", "sw", "musigma")
    return build_detector(spec, n_channels=2, config=CONFIG)


class TestDetectorReuse:
    def _make_series(self, seed, n_steps=220):
        return make_daphnet(
            n_series=2, n_steps=n_steps, clean_prefix=50, seed=seed
        )

    def test_reset_clears_streaming_state(self):
        first, _ = self._make_series(seed=3)
        spec = AlgorithmSpec("online_arima", "sw", "musigma")
        detector = build_detector(spec, n_channels=first.n_channels, config=CONFIG)
        run_stream(detector, first, batch_size=32)
        detector.reset()
        assert detector.t == -1
        assert detector.events == []
        assert detector.first_scored_step is None
        assert not detector.buffer.is_warm

    def test_chunk_invariance_survives_reset(self):
        """Two identically-prepared detectors, reset, rerun: any chunking
        of the second stream still matches the chunk=1 reference."""
        first, second = self._make_series(seed=3)
        spec = AlgorithmSpec("online_arima", "sw", "musigma")
        results = {}
        for chunk in (1, 32):
            detector = build_detector(
                spec, n_channels=first.n_channels, config=CONFIG
            )
            run_stream(detector, first, batch_size=16)  # same warm history
            detector.reset()
            results[chunk] = result_fingerprint(
                run_stream(detector, second, batch_size=chunk)
            )
        assert results[1] == results[32]


class TestChunkValidation:
    def test_non_finite_mid_chunk(self):
        detector = _build()
        block = np.ones((10, 2))
        block[6, 1] = np.nan
        with pytest.raises(StreamError, match="t=6 contains non-finite"):
            detector.step_chunk(block)
        # the valid prefix was processed before the failure
        assert detector.t == 5

    def test_non_finite_through_run_stream(self):
        values = np.ones((30, 2))
        values[17] = np.inf
        series = TimeSeries(values=values, labels=np.zeros(30, dtype=np.int_))
        detector = _build()
        with pytest.raises(StreamError, match="t=17 contains non-finite"):
            run_stream(detector, series, batch_size=8)

    def test_channel_mismatch(self):
        detector = _build()
        detector.step_chunk(np.ones((3, 2)))
        with pytest.raises(StreamError, match="has 3 channels, expected 2"):
            detector.step_chunk(np.ones((2, 3)))

    def test_warm_up_equivalent_to_step_chunk(self, rng):
        values = rng.normal(size=(90, 2))
        warmed = _build()
        warmed.warm_up(values, batch_size=16)
        chunked = _build()
        chunked.step_chunk(values)
        assert warmed.t == chunked.t
        assert len(warmed.train_strategy) == len(chunked.train_strategy)
        assert warmed.model.is_fitted == chunked.model.is_fitted
