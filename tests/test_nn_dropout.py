"""Tests for the Dropout layer."""

import numpy as np
import pytest

from repro import nn


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDropout:
    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, rng)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1, rng)

    def test_eval_mode_identity(self, rng):
        layer = nn.Dropout(0.5, rng)
        layer.training = False
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(layer(x), x)

    def test_zero_rate_identity(self, rng):
        layer = nn.Dropout(0.0, rng)
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(layer(x), x)

    def test_drops_expected_fraction(self, rng):
        layer = nn.Dropout(0.3, rng)
        x = np.ones((100, 100))
        out = layer(x)
        dropped = np.mean(out == 0.0)
        assert dropped == pytest.approx(0.3, abs=0.02)

    def test_inverted_scaling_preserves_expectation(self, rng):
        layer = nn.Dropout(0.4, rng)
        x = np.ones((200, 200))
        out = layer(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self, rng):
        layer = nn.Dropout(0.5, rng)
        x = rng.normal(size=(5, 8))
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        # Gradient is zero exactly where the forward output was zeroed.
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_backward_in_eval_mode_passthrough(self, rng):
        layer = nn.Dropout(0.5, rng)
        layer.training = False
        layer(np.ones((2, 2)))
        grad = layer.backward(np.full((2, 2), 3.0))
        np.testing.assert_array_equal(grad, np.full((2, 2), 3.0))

    def test_sequential_set_training(self, rng):
        net = nn.Sequential(
            nn.Linear(4, 4, rng),
            nn.Dropout(0.5, rng),
            nn.Sequential(nn.Dropout(0.5, rng)),
        )
        net.set_training(False)
        assert net[1].training is False
        assert net[2][0].training is False
        net.set_training(True)
        assert net[1].training is True

    def test_no_parameters(self, rng):
        assert list(nn.Dropout(0.5, rng).parameters()) == []
