"""Tests for nonconformity measures and anomaly scoring functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.models import PCBIForest, TwoLayerAutoencoder
from repro.scoring import (
    AnomalyLikelihood,
    AverageScore,
    ConformalScorer,
    CosineNonconformity,
    IForestNonconformity,
    RawScore,
    cosine_distance,
    gaussian_tail,
)

finite_vectors = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=2,
    max_size=10,
)


class TestCosineDistance:
    def test_identical_vectors_zero(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_distance(v, v) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_vectors_one(self):
        assert cosine_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_opposite_vectors_clipped_to_one(self):
        v = np.array([1.0, 1.0])
        assert cosine_distance(v, -v) == 1.0

    def test_scale_invariant(self):
        a = np.array([1.0, 2.0])
        assert cosine_distance(a, 100 * a) == pytest.approx(0.0, abs=1e-12)

    def test_zero_vectors(self):
        zero = np.zeros(3)
        assert cosine_distance(zero, zero) == 0.0
        assert cosine_distance(zero, np.ones(3)) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cosine_distance(np.zeros(3), np.zeros(4))

    @given(finite_vectors, finite_vectors)
    @settings(max_examples=60, deadline=None)
    def test_always_in_unit_interval(self, a, b):
        n = min(len(a), len(b))
        d = cosine_distance(np.asarray(a[:n]), np.asarray(b[:n]))
        assert 0.0 <= d <= 1.0

    @given(finite_vectors)
    @settings(max_examples=40, deadline=None)
    def test_symmetric(self, a):
        vec = np.asarray(a)
        other = vec[::-1].copy()
        assert cosine_distance(vec, other) == pytest.approx(
            cosine_distance(other, vec)
        )


class TestCosineNonconformity:
    def test_reconstruction_model(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=30, seed=0)
        model.fit(small_windows)
        measure = CosineNonconformity()
        score = measure(small_windows[0], model)
        assert 0.0 <= score <= 1.0

    def test_score_model_rejected(self, small_windows):
        model = PCBIForest(n_trees=5, seed=0)
        model.fit(small_windows)
        with pytest.raises(ConfigurationError):
            CosineNonconformity()(small_windows[0], model)


class TestIForestNonconformity:
    def test_forwards_model_score(self, small_windows):
        model = PCBIForest(n_trees=10, seed=0)
        model.fit(small_windows)
        measure = IForestNonconformity()
        assert 0.0 < measure(small_windows[0], model) < 1.0

    def test_non_score_model_rejected(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=1, seed=0)
        model.fit(small_windows)
        with pytest.raises(ConfigurationError):
            IForestNonconformity()(small_windows[0], model)


class TestGaussianTail:
    def test_symmetry(self):
        assert gaussian_tail(0.0) == pytest.approx(0.5)
        assert gaussian_tail(1.0) + gaussian_tail(-1.0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        zs = np.linspace(-5, 5, 50)
        tails = [gaussian_tail(z) for z in zs]
        assert all(b <= a for a, b in zip(tails, tails[1:]))

    def test_known_value(self):
        # P(X > 1.96) ~ 0.025 for standard normal.
        assert gaussian_tail(1.96) == pytest.approx(0.025, abs=1e-3)


class TestRawScore:
    def test_passthrough(self):
        scorer = RawScore()
        assert scorer.update(0.7) == 0.7


class TestAverageScore:
    def test_window_average(self):
        scorer = AverageScore(k=3)
        assert scorer.update(1.0) == pytest.approx(1.0)
        assert scorer.update(0.0) == pytest.approx(0.5)
        assert scorer.update(0.5) == pytest.approx(0.5)
        assert scorer.update(0.5) == pytest.approx(1.0 / 3)  # the 1.0 left

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            AverageScore(k=0)

    def test_reset(self):
        scorer = AverageScore(k=3)
        scorer.update(1.0)
        scorer.reset()
        assert scorer.update(0.0) == 0.0

    def test_smooths_spikes(self, rng):
        scorer = AverageScore(k=10)
        for _ in range(10):
            scorer.update(0.1)
        spiked = scorer.update(1.0)
        assert 0.1 < spiked < 0.3


class TestConformalScorer:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ConformalScorer(k=0)

    def test_first_score_is_half(self):
        scorer = ConformalScorer(k=10)
        assert scorer.update(0.3) == pytest.approx(0.5)  # rank 1 of 2 slots

    def test_extreme_value_scores_high(self):
        scorer = ConformalScorer(k=20)
        for value in np.linspace(0.1, 0.3, 20):
            scorer.update(float(value))
        # rank 20 of a full window of 20 (the deque evicts on append).
        assert scorer.update(0.9) == pytest.approx(1.0)

    def test_typical_value_scores_mid(self, rng):
        scorer = ConformalScorer(k=50)
        for _ in range(50):
            scorer.update(float(rng.uniform()))
        scores = [scorer.update(0.5) for _ in range(5)]
        assert all(0.2 < score < 0.8 for score in scores)

    def test_monotone_rescaling_invariant(self):
        history = [0.1, 0.4, 0.2, 0.8, 0.3, 0.6]
        plain = ConformalScorer(k=10)
        squared = ConformalScorer(k=10)
        plain_scores = [plain.update(v) for v in history]
        squared_scores = [squared.update(v**2) for v in history]
        assert plain_scores == squared_scores

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, values):
        scorer = ConformalScorer(k=16)
        for value in values:
            assert 0.0 < scorer.update(value) <= 1.0

    def test_reset(self):
        scorer = ConformalScorer(k=4)
        scorer.update(0.9)
        scorer.reset()
        assert scorer.update(0.1) == pytest.approx(0.5)


class TestAnomalyLikelihood:
    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            AnomalyLikelihood(k=1)
        with pytest.raises(ValueError):
            AnomalyLikelihood(k=10, k_short=10)
        with pytest.raises(ValueError):
            AnomalyLikelihood(k=10, k_short=0)

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_output_in_unit_interval(self, values):
        scorer = AnomalyLikelihood(k=20, k_short=3)
        for value in values:
            likelihood = scorer.update(value)
            assert 0.0 <= likelihood <= 1.0

    def test_surge_pushes_likelihood_up(self, rng):
        scorer = AnomalyLikelihood(k=50, k_short=5)
        for _ in range(50):
            scorer.update(0.2 + rng.normal(scale=0.01))
        quiet = scorer.update(0.2)
        for _ in range(5):
            surged = scorer.update(0.9)
        assert surged > 0.95
        assert surged > quiet

    def test_steady_stream_near_half(self, rng):
        scorer = AnomalyLikelihood(k=50, k_short=5)
        for _ in range(100):
            last = scorer.update(0.5 + rng.normal(scale=0.05))
        assert 0.0 < last < 1.0

    def test_reset(self):
        scorer = AnomalyLikelihood(k=10, k_short=2)
        for _ in range(10):
            scorer.update(0.9)
        scorer.reset()
        assert len(scorer._ring) == 0
        # behaves like a fresh scorer after reset
        assert scorer.update(0.9) == AnomalyLikelihood(k=10, k_short=2).update(0.9)
