"""Tests for the one-command reproduction report."""

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec
from repro.experiments.report import generate_report, write_report
from repro.experiments.table3 import Table3Config


def tiny_config():
    return Table3Config(
        n_series=1,
        n_steps=600,
        clean_prefix=140,
        detector=DetectorConfig(
            window=8,
            train_capacity=24,
            initial_train_size=120,
            fit_epochs=3,
            kswin_check_every=16,
            scorer_k=24,
            scorer_k_short=4,
        ),
        scorers=("avg",),
    )


class TestReport:
    def test_report_sections_present(self, monkeypatch):
        # Shrink the grid to two algorithms so the test stays fast.
        import repro.experiments.report as report_module
        import repro.experiments.table3 as table3_module
        import repro.experiments.score_ablation as ablation_module

        small_grid = [
            AlgorithmSpec("ae", "sw", "musigma"),
            AlgorithmSpec("pcb_iforest", "sw", "kswin"),
        ]
        monkeypatch.setattr(
            table3_module, "build_algorithm_grid", lambda: small_grid
        )
        monkeypatch.setattr(
            ablation_module, "build_algorithm_grid", lambda: small_grid
        )
        text = generate_report(
            config=tiny_config(), corpora=("daphnet",), progress=False
        )
        assert "# Reproduction report" in text
        assert "## Table I" in text
        assert "26 algorithm combinations" in text  # full grid still printed
        assert "## Table II" in text
        assert "## Table III — daphnet" in text
        assert "## Figure 1" in text
        assert "Total runtime" in text

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.experiments.table3 as table3_module
        import repro.experiments.score_ablation as ablation_module

        small_grid = [AlgorithmSpec("online_arima", "sw", "musigma")]
        monkeypatch.setattr(
            table3_module, "build_algorithm_grid", lambda: small_grid
        )
        monkeypatch.setattr(
            ablation_module, "build_algorithm_grid", lambda: small_grid
        )
        path = write_report(
            tmp_path / "report.md", config=tiny_config(), corpora=("smd",),
            progress=False,
        )
        assert path.exists()
        assert "Table III — smd" in path.read_text()
