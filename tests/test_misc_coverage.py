"""Small tests covering remaining corners: runner progress, figure-1
stream generator, USAD blend extremes, op-counter arithmetic."""

import logging

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.experiments.figure1 import make_figure1_stream
from repro.learning.base import OpCounter
from repro.streaming import run_stream


class TestRunnerProgress:
    def _series_and_detector(self, rng):
        values = rng.normal(size=(120, 2))
        series = TimeSeries(values=values, labels=np.zeros(120, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("online_arima", "sw", "never"),
            2,
            DetectorConfig(window=8, train_capacity=16, fit_epochs=1),
        )
        return series, detector

    def test_progress_lines_logged(self, caplog, rng):
        series, detector = self._series_and_detector(rng)
        with caplog.at_level(logging.INFO, logger="repro.streaming.runner"):
            run_stream(detector, series, progress_every=50)
        assert "step 50/120" in caplog.text
        assert "step 100/120" in caplog.text

    def test_progress_lines_logged_chunked(self, caplog, rng):
        series, detector = self._series_and_detector(rng)
        with caplog.at_level(logging.INFO, logger="repro.streaming.runner"):
            run_stream(detector, series, progress_every=50, batch_size=32)
        assert "step 50/120" in caplog.text
        assert "step 100/120" in caplog.text
        # same marks as the per-step loop: t = 0 never reports
        assert "step 0/120" not in caplog.text


class TestFigure1Stream:
    def test_shape_and_drift_point(self):
        series = make_figure1_stream(n_steps=800, drift_at=500, seed=3)
        assert series.n_steps == 800
        assert series.drift_points == [500]
        assert series.labels.sum() == 0  # anomaly injected later, at run time

    def test_drift_changes_statistics(self):
        series = make_figure1_stream(n_steps=1000, drift_at=600, seed=3)
        pre = series.values[:600].mean(axis=0)
        post = series.values[650:].mean(axis=0)
        assert np.max(np.abs(post - pre)) > 1.0


class TestUSADBlendExtreme:
    def test_blend_one_is_pure_adversarial_reconstruction(self, small_windows):
        from repro.models import USAD

        model = USAD(window=8, n_channels=3, epochs=5, seed=0, blend=1.0)
        model.fit(small_windows)
        _, w3 = model.reconstructions(small_windows[0])
        np.testing.assert_allclose(model.predict(small_windows[0]), w3)


class TestOpCounter:
    def test_addition_of_counters(self):
        a = OpCounter(1, 2, 3)
        b = OpCounter(10, 20, 30)
        combined = a + b
        assert (combined.additions, combined.multiplications, combined.comparisons) == (
            11,
            22,
            33,
        )
        assert combined.total == 66

    def test_reset(self):
        counter = OpCounter(5, 5, 5)
        counter.reset()
        assert counter.total == 0


class TestStreamResultProperties:
    def test_n_steps(self, labelled_series):
        detector = build_detector(
            AlgorithmSpec("online_arima", "sw", "never"),
            2,
            DetectorConfig(window=8, train_capacity=16, fit_epochs=1),
        )
        result = run_stream(detector, labelled_series)
        assert result.n_steps == labelled_series.n_steps
