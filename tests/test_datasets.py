"""Tests for synthetic primitives, injectors and the corpus emulators."""

import numpy as np
import pytest

from repro.core.types import AnomalyWindow
from repro.datasets import (
    apply_mean_shift,
    apply_variance_scale,
    ar1_noise,
    inject_flatline,
    inject_level_shift,
    inject_spike,
    inject_tremor,
    latent_factor_mix,
    make_corpus,
    make_daphnet,
    make_exathlon,
    make_smd,
    place_windows,
    periodic_channel,
    sinusoid,
)


class TestSyntheticPrimitives:
    def test_sinusoid_period(self):
        wave = sinusoid(100, period=25.0, amplitude=2.0)
        assert wave.shape == (100,)
        assert wave.max() <= 2.0 + 1e-9
        np.testing.assert_allclose(wave[0], wave[25], atol=1e-9)

    def test_sinusoid_validation(self):
        with pytest.raises(ValueError):
            sinusoid(0, 10.0)
        with pytest.raises(ValueError):
            sinusoid(10, -1.0)

    def test_ar1_stationary_variance(self, rng):
        noise = ar1_noise(20000, rho=0.5, sigma=1.0, rng=rng)
        # stationary std = sigma / sqrt(1 - rho^2)
        assert noise.std() == pytest.approx(1.0 / np.sqrt(0.75), rel=0.1)

    def test_ar1_validation(self, rng):
        with pytest.raises(ValueError):
            ar1_noise(10, rho=1.0, sigma=1.0, rng=rng)
        with pytest.raises(ValueError):
            ar1_noise(10, rho=0.5, sigma=-1.0, rng=rng)

    def test_latent_factor_mix_correlated(self, rng):
        values = latent_factor_mix(5000, n_channels=6, n_factors=2, rng=rng)
        assert values.shape == (5000, 6)
        correlation = np.corrcoef(values.T)
        off_diagonal = np.abs(correlation[np.triu_indices(6, 1)])
        assert off_diagonal.mean() > 0.2  # channels co-move

    def test_periodic_channel_shape(self, rng):
        channel = periodic_channel(500, period=40.0, rng=rng)
        assert channel.shape == (500,)


class TestPlaceWindows:
    def test_respects_forbidden_prefix(self, rng):
        windows = place_windows(
            1000, 5, 10, 20, rng, forbidden_prefix=300
        )
        assert all(w.start >= 300 for w in windows)

    def test_non_overlapping_with_gap(self, rng):
        windows = place_windows(2000, 8, 20, 40, rng, min_gap=15)
        for first, second in zip(windows, windows[1:]):
            assert second.start - first.end >= 15

    def test_sorted_by_start(self, rng):
        windows = place_windows(2000, 6, 10, 30, rng)
        starts = [w.start for w in windows]
        assert starts == sorted(starts)

    def test_lengths_in_range(self, rng):
        windows = place_windows(2000, 6, 10, 30, rng)
        assert all(10 <= len(w) <= 30 for w in windows)

    def test_too_small_stream_rejected(self, rng):
        with pytest.raises(ValueError):
            place_windows(50, 1, 30, 60, rng, forbidden_prefix=30)

    def test_invalid_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            place_windows(100, 1, 20, 10, rng)


class TestInjectors:
    def _values(self, rng):
        return rng.normal(size=(200, 5))

    def test_spike_changes_window_only(self, rng):
        values = self._values(rng)
        original = values.copy()
        window = AnomalyWindow(50, 60)
        inject_spike(values, window, rng)
        assert not np.allclose(values[50:60], original[50:60])
        np.testing.assert_array_equal(values[:50], original[:50])
        np.testing.assert_array_equal(values[60:], original[60:])

    def test_level_shift_raises_mean(self, rng):
        values = self._values(rng)
        window = AnomalyWindow(50, 100)
        before = values[50:100].mean()
        inject_level_shift(values, window, rng, magnitude=3.0, channel_fraction=1.0)
        assert values[50:100].mean() > before + 1.0

    def test_flatline_freezes_channels(self, rng):
        values = self._values(rng)
        window = AnomalyWindow(50, 80)
        inject_flatline(values, window, rng, channel_fraction=1.0)
        for channel in range(values.shape[1]):
            assert np.all(values[50:80, channel] == values[50, channel])

    def test_tremor_damps_and_oscillates(self, rng):
        t = np.arange(400, dtype=np.float64)
        values = np.stack([np.sin(2 * np.pi * t / 40)] * 3, axis=1) * 2.0
        window = AnomalyWindow(100, 200)
        inject_tremor(values, window, rng, period=8.0, channel_fraction=1.0)
        segment = values[100:200, 0]
        # The tremor has a dominant frequency near period 8.
        spectrum = np.abs(np.fft.rfft(segment - segment.mean()))
        dominant_period = len(segment) / np.argmax(spectrum)
        assert dominant_period < 20


class TestDriftInjectors:
    def test_mean_shift_applied_from_at(self, rng):
        values = rng.normal(size=(300, 4))
        apply_mean_shift(values, 150, rng, magnitude=5.0, channel_fraction=1.0)
        # Directions are random per channel, so check channel-wise shifts.
        per_channel = np.abs(values[150:].mean(axis=0))
        assert np.all(per_channel > 1.0)
        assert np.all(np.abs(values[:150].mean(axis=0)) < 0.5)

    def test_variance_scale(self, rng):
        values = rng.normal(size=(400, 3))
        apply_variance_scale(values, 200, rng, factor=3.0, channel_fraction=1.0)
        assert values[200:].std() > 2.0 * values[:200].std()

    def test_invalid_at_rejected(self, rng):
        values = rng.normal(size=(100, 2))
        with pytest.raises(ValueError):
            apply_mean_shift(values, 0, rng)
        with pytest.raises(ValueError):
            apply_mean_shift(values, 100, rng)


@pytest.mark.parametrize("builder", [make_daphnet, make_exathlon, make_smd])
class TestCorpora:
    def test_series_well_formed(self, builder):
        for series in builder(n_series=2, n_steps=1500, clean_prefix=300, seed=0):
            assert series.n_steps == 1500
            assert series.labels.shape == (1500,)
            assert np.all(np.isfinite(series.values))
            assert series.drift_points

    def test_clean_prefix_has_no_anomalies(self, builder):
        for series in builder(n_series=2, n_steps=1500, clean_prefix=300, seed=1):
            assert series.labels[:300].sum() == 0

    def test_labels_match_windows(self, builder):
        from repro.core.types import labels_from_windows

        for series in builder(n_series=1, n_steps=1500, clean_prefix=300, seed=2):
            np.testing.assert_array_equal(
                series.labels, labels_from_windows(series.windows, series.n_steps)
            )

    def test_deterministic_given_seed(self, builder):
        a = builder(n_series=1, n_steps=1000, clean_prefix=200, seed=7)[0]
        b = builder(n_series=1, n_steps=1000, clean_prefix=200, seed=7)[0]
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self, builder):
        a = builder(n_series=1, n_steps=1000, clean_prefix=200, seed=1)[0]
        b = builder(n_series=1, n_steps=1000, clean_prefix=200, seed=2)[0]
        assert not np.allclose(a.values, b.values)


class TestCorpusRegistry:
    def test_channel_counts_match_real_corpora(self):
        assert make_daphnet(n_series=1, n_steps=800, clean_prefix=100)[0].n_channels == 9
        assert make_smd(n_series=1, n_steps=800, clean_prefix=100)[0].n_channels == 38

    def test_make_corpus_dispatch(self):
        series = make_corpus("daphnet", n_series=1, n_steps=800, clean_prefix=100)
        assert series[0].name.startswith("daphnet/")

    def test_unknown_corpus_rejected(self):
        with pytest.raises(KeyError):
            make_corpus("yahoo")

    def test_smd_sparse_anomalies(self):
        series = make_smd(n_series=1, n_steps=3000, clean_prefix=400, seed=0)[0]
        assert series.anomaly_rate < 0.08  # SMD-like sparsity
