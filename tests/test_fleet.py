"""Bitwise-identity property tests for cross-session fused inference.

The contract under test: :meth:`FleetEngine.step_chunk` over K same-spec
detectors produces exactly the outputs *and* the detector state that K
separate per-session :meth:`step_chunk` calls would have produced — for
any fleet size, any chunk size, and any mix of clean / diverging /
ineligible sessions.  Since ``step_chunk`` is itself pinned bitwise to
``step()`` (``tests/test_chunked_stream.py``), this transitively pins the
fused path to the sequential reference.

The suite also pins the numerical substrate the fusion relies on (the
"kernel probes"): session-axis stacked ``np.matmul`` slices, row-mean
reductions, scatter adds and the zero-removed-row replay must be
bit-identical to their per-session counterparts on this BLAS build —
if a probe fails on some platform, the fused path is *wrong there*, not
merely different.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.datasets.corpora import make_daphnet
from repro.models.base import BATCH_TILE, tiled_forward
from repro.nn.arena import FleetIncompatible, ParameterArena
from repro.streaming.checkpoint import load_detector, save_detector
from repro.streaming.fleet import FleetEngine

CONFIG = DetectorConfig(window=8, train_capacity=32, fit_epochs=2, kswin_check_every=8)
WARMUP = 150

#: registry slice with fleet support: session-axis batchable models ×
#: the fusable Task-2 strategies.
FLEET_SPECS = (
    AlgorithmSpec("ae", "sw", "musigma"),
    AlgorithmSpec("usad", "sw", "musigma"),
    AlgorithmSpec("nbeats", "sw", "regular"),
    AlgorithmSpec("ae", "sw", "never"),
)

#: (K, chunk) grid: fleet sizes {1, 3, 8} × chunk sizes {1, 7, 64},
#: sampled so each axis value appears with several of the other's.
FLEET_SHAPES = ((1, 7), (3, 1), (3, 64), (8, 7))


def _series(k: int, n_steps: int = 600):
    return make_daphnet(n_series=1, n_steps=n_steps, clean_prefix=200, seed=k)[0]


def _build_fleet(spec: AlgorithmSpec, k_sessions: int, values_by_k):
    """K warmed-up detectors, deterministically reproducible."""
    detectors = []
    for k in range(k_sessions):
        det = build_detector(spec, _series(k).n_channels, CONFIG)
        for t in range(WARMUP):
            det.step(values_by_k[k][t])
        detectors.append(det)
    return detectors


def state_fingerprint(det) -> bytes:
    """Every piece of detector state the equivalence contract pins."""
    drift = det.drift_detector
    drift_state = (drift.ops.additions, drift.ops.multiplications, drift.ops.comparisons)
    if getattr(drift, "_sum", None) is not None:
        drift_state += (
            drift._sum.tobytes(),
            drift._sumsq.tobytes(),
            drift._count,
            drift._ref_mean.tobytes(),
            drift._ref_std.tobytes(),
        )
    return pickle.dumps(
        {
            "t": det.t,
            "first": det.first_scored_step,
            "train_set": [x.tobytes() for x in det.train_strategy._deque],
            "drift": drift_state,
            "ring": det.buffer._ring.tobytes(),
            "pos": det.buffer._pos,
            "count": det.buffer._count,
            "scorer": pickle.dumps(det.scorer),
            "params": [
                p.value.tobytes()
                for m in det.model.fleet_modules()
                for p in m.parameters()
            ],
            "events": [(e.t, e.reason, e.train_set_size) for e in det.events],
        }
    )


def _drain_both(
    spec, k_sessions, chunk, values_by_k, n_steps, shift=None, min_fleet=1
):
    """Run fused vs per-session over identical streams; return both fleets.

    ``min_fleet=1`` keeps K=1 shapes on the true fused path (the engine
    defaults to bypassing below 2 sessions — pinned separately).
    """
    values = [v.copy() for v in values_by_k]
    if shift is not None:
        for k, start, delta in shift:
            values[k][start:] += delta
    fused_dets = _build_fleet(spec, k_sessions, values)
    ref_dets = _build_fleet(spec, k_sessions, values)
    fleet = FleetEngine(fused_dets, min_fleet=min_fleet)
    for start in range(WARMUP, WARMUP + n_steps, chunk):
        end = min(start + chunk, WARMUP + n_steps)
        blocks = [v[start:end] for v in values]
        fused = fleet.step_chunk(blocks)
        for k in range(k_sessions):
            reference = ref_dets[k].step_chunk(blocks[k])
            for got, want in zip(fused[k], reference):
                assert got.tobytes() == want.tobytes()
    return fleet, fused_dets, ref_dets


# ----------------------------------------------------------------------
# fused == per-session across the registry slice × fleet shapes
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec", FLEET_SPECS, ids=lambda s: f"{s.model}+{s.task1}+{s.task2}"
)
@pytest.mark.parametrize("k_sessions,chunk", FLEET_SHAPES)
def test_fleet_matches_per_session_bitwise(spec, k_sessions, chunk):
    values = [_series(k).values for k in range(k_sessions)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec, k_sessions, chunk, values, n_steps=192
    )
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    manifest = fleet.manifest()
    assert manifest["sessions"] == k_sessions
    total = (
        manifest["fused_steps"] + manifest["dirty_steps"] + manifest["stock_steps"]
    )
    assert total == k_sessions * 192


def test_fleet_divergence_and_rejoin_bitwise():
    """Sessions that fire mid-fleet now *stay fused* through the fire."""
    spec = AlgorithmSpec("ae", "sw", "musigma")
    values = [_series(k).values for k in range(4)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec,
        4,
        16,
        values,
        n_steps=320,
        shift=[(1, 250, 6.0), (3, 400, 9.0)],
    )
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    # The shifted sessions must actually have fired (fine-tuned) — and
    # with the round-based drain that no longer costs the fused lane:
    # every step of every session stays fused.
    assert fused_dets[1].n_finetunes > 0 and fused_dets[3].n_finetunes > 0
    manifest = fleet.manifest()
    assert manifest["dirty_steps"] == 0
    assert manifest["stock_steps"] == 0
    assert manifest["fused_fraction"] == 1.0


# ----------------------------------------------------------------------
# drift storms: fused fine-tuning keeps firing fleets on the fused path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k_sessions,chunk", ((1, 16), (3, 5), (3, 64), (16, 16)))
def test_fleet_drift_storm_regular_bitwise(k_sessions, chunk):
    """RegularFineTuning at interval 32 under μ/σ-shift storms.

    Every session fires every 32 steps — the drift-heavy worst case for
    the old drain (which dropped every fire to the stock lane).  The
    round-based drain must keep 100% of the steps fused, run the
    co-firing sessions' fine-tunes through ``fleet_finetune`` (K >= 2),
    and still match per-session ``step_chunk`` bitwise.
    """
    spec = AlgorithmSpec("ae", "sw", "regular")
    values = [_series(k).values for k in range(k_sessions)]
    shift = [(k, 220 + 10 * k, 4.0) for k in range(k_sessions)]
    shift += [(k, 300 + 5 * k, -3.0) for k in range(k_sessions)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec, k_sessions, chunk, values, n_steps=160, shift=shift
    )
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    assert all(det.n_finetunes >= 4 for det in fused_dets)
    manifest = fleet.manifest()
    assert manifest["fused_fraction"] == 1.0
    assert manifest["dirty_steps"] == 0 and manifest["stock_steps"] == 0
    drain_fires = sum(
        1 for det in fused_dets for e in det.events if e.t > WARMUP
    )
    if k_sessions >= 2:
        # All sessions fire in lock-step, so every drain-phase
        # fine-tune runs fused (warm-up fires happen per step).
        assert manifest["finetunes_fused"] == drain_fires > 0
        assert manifest["points_fused_training"] > 0
    else:
        assert manifest["finetunes_fused"] == 0


@pytest.mark.parametrize("spec_tuple", (("usad", "sw", "regular"), ("nbeats", "sw", "regular")))
def test_fleet_drift_storm_other_models_bitwise(spec_tuple):
    """The fused training kernels hold for USAD (two optimizers, shared
    encoder copies) and N-BEATS (residual block stack) too."""
    spec = AlgorithmSpec(*spec_tuple)
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec, 3, 16, values, n_steps=96,
        shift=[(k, 230, 5.0) for k in range(3)],
    )
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    manifest = fleet.manifest()
    assert manifest["fused_fraction"] == 1.0
    assert manifest["finetunes_fused"] > 0


def test_fleet_drift_storm_musigma_co_firing_bitwise():
    """μ/σ-Change storms hitting all sessions at once fuse the fine-tunes."""
    spec = AlgorithmSpec("ae", "sw", "musigma")
    values = [_series(k).values for k in range(4)]
    shift = [(k, 240, 6.0) for k in range(4)]
    shift += [(k, 330, -5.0) for k in range(4)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec, 4, 16, values, n_steps=256, shift=shift
    )
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    assert all(det.n_finetunes > 0 for det in fused_dets)
    manifest = fleet.manifest()
    assert manifest["fused_fraction"] == 1.0
    assert manifest["finetunes_fused"] > 0


def test_fleet_staggered_fire_offsets_same_chunk_bitwise():
    """Sessions firing at *different* offsets inside one chunk stay fused.

    Staggered warm-ups desynchronize the sessions' clocks, so Regular
    fine-tunes land at different rows of the same drain — each round
    commits each session's own span, fine-tunes the firing subset, and
    re-enters with the rest.  Singleton fire groups take the per-session
    fine-tune (bitwise the same); mid-chunk divergence must still rejoin
    the fused rounds, never the stock lane.
    """
    spec = AlgorithmSpec("ae", "sw", "regular")
    k_sessions, chunk, n_steps = 3, 24, 120
    values = [_series(k).values.copy() for k in range(k_sessions)]
    for k in range(k_sessions):
        values[k][220:] += 3.0
    offsets = [0, 7, 19]  # per-session warm-up stagger, inside one chunk
    fused_dets, ref_dets = [], []
    for build in (fused_dets, ref_dets):
        for k in range(k_sessions):
            det = build_detector(spec, _series(k).n_channels, CONFIG)
            for t in range(WARMUP + offsets[k]):
                det.step(values[k][t])
            build.append(det)
    fleet = FleetEngine(fused_dets, min_fleet=1)
    for start in range(0, n_steps, chunk):
        blocks = [
            values[k][WARMUP + offsets[k] + start :][: min(chunk, n_steps - start)]
            for k in range(k_sessions)
        ]
        fused = fleet.step_chunk(blocks)
        for k in range(k_sessions):
            want = ref_dets[k].step_chunk(blocks[k])
            for got, expected in zip(fused[k], want):
                assert got.tobytes() == expected.tobytes()
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    # Clocks differ mod 32, so fires hit different rows of each drain.
    assert len({det.t % 32 for det in fused_dets}) == 3
    assert all(det.n_finetunes > 0 for det in fused_dets)
    manifest = fleet.manifest()
    assert manifest["fused_fraction"] == 1.0
    assert manifest["dirty_steps"] == 0 and manifest["stock_steps"] == 0


def test_fleet_checkpoint_bitwise_through_fused_finetunes():
    """Full-detector pickles match after fused fine-tunes: weights,
    gradients, Adam moments and step counts, RNG streams, events."""
    spec = AlgorithmSpec("ae", "sw", "regular")
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec, 3, 16, values, n_steps=96,
        shift=[(k, 230, 4.0) for k in range(3)],
    )
    assert fleet.manifest()["finetunes_fused"] > 0
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert pickle.dumps(fused_det) == pickle.dumps(ref_det)


def test_fleet_k1_default_bypass():
    """K=1 drains bypass the fused machinery by default (min_fleet=2)."""
    spec = AlgorithmSpec("ae", "sw", "musigma")
    values = [_series(0).values]
    dets = _build_fleet(spec, 1, values)
    ref = _build_fleet(spec, 1, values)
    fleet = FleetEngine(dets)  # default min_fleet=2
    for start in range(WARMUP, WARMUP + 96, 16):
        blocks = [values[0][start : start + 16]]
        fused = fleet.step_chunk(blocks)
        want = ref[0].step_chunk(blocks[0])
        for got, expected in zip(fused[0], want):
            assert got.tobytes() == expected.tobytes()
    manifest = fleet.manifest()
    assert manifest["min_fleet"] == 2
    assert manifest["bypassed_drains"] == manifest["drains"] == 6
    assert manifest["fused_steps"] == 0 and manifest["stock_steps"] == 96
    assert state_fingerprint(dets[0]) == state_fingerprint(ref[0])


def test_fleet_mixed_specs_fall_back_to_stock():
    """A non-uniform member is stepped through its own engine, bitwise."""
    values = [_series(k).values for k in range(3)]
    mixed = [
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("usad", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
    ]
    reference = [
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("usad", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
    ]
    for k in range(3):
        for t in range(WARMUP):
            mixed[k].step(values[k][t])
            reference[k].step(values[k][t])
    fleet = FleetEngine(mixed)
    for start in range(WARMUP, WARMUP + 96, 16):
        blocks = [v[start : start + 16] for v in values]
        fused = fleet.step_chunk(blocks)
        for k in range(3):
            want = reference[k].step_chunk(blocks[k])
            for got, expected in zip(fused[k], want):
                assert got.tobytes() == expected.tobytes()
    assert 1 in fleet.last_drain["stock"]  # the usad member never fuses
    for fused_det, ref_det in zip(mixed, reference):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)


# ----------------------------------------------------------------------
# arena attach / detach / checkpoint round-trips
# ----------------------------------------------------------------------
def test_fleet_member_checkpoint_bitwise_vs_unfused():
    """A fleet member's checkpoint equals the never-fused detector's."""
    spec = AlgorithmSpec("ae", "sw", "musigma")
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, ref_dets = _drain_both(spec, 3, 16, values, n_steps=96)
    assert fleet._arena is not None and fleet._arena.synced()
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        # Arena row views must pickle to the same bytes as standalone
        # arrays — a spilled fleet member is indistinguishable from one
        # that never joined a fleet.
        assert pickle.dumps(fused_det) == pickle.dumps(ref_det)


def test_fleet_detach_reattach_round_trip(tmp_path):
    """Detach → checkpoint → reload → rejoin stays bitwise."""
    spec = AlgorithmSpec("usad", "sw", "musigma")
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, ref_dets = _drain_both(spec, 3, 16, values, n_steps=96)
    arena = fleet._arena
    assert arena is not None
    # Detach one session: its parameters become standalone arrays with
    # unchanged bits; the other rows keep their arena views.
    member = fused_dets[1]
    before = [
        p.value.copy()
        for m in member.model.fleet_modules()
        for p in m.parameters()
    ]
    arena.detach_row(1)
    after = [
        p.value for m in member.model.fleet_modules() for p in m.parameters()
    ]
    for want, got in zip(before, after):
        assert got.base is None
        assert got.tobytes() == want.tobytes()
    # Round-trip the detached member through a checkpoint file.
    path = tmp_path / "member.ckpt"
    save_detector(member, path)
    fused_dets[1] = load_detector(path)
    fleet.detectors[1] = fused_dets[1]
    # The next drain rebuilds the arena (the reloaded member's params are
    # rebound) and the fleet keeps matching the reference bitwise.
    assert not arena.synced()
    for start in range(WARMUP + 96, WARMUP + 192, 16):
        blocks = [v[start : start + 16] for v in values]
        fused = fleet.step_chunk(blocks)
        for k in range(3):
            want = ref_dets[k].step_chunk(blocks[k])
            for got, expected in zip(fused[k], want):
                assert got.tobytes() == expected.tobytes()
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    assert fleet._arena.synced()


def test_arena_survives_in_place_finetunes():
    """Optimizer updates mutate arena rows in place; no rebuild needed."""
    spec = AlgorithmSpec("ae", "sw", "regular")
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, _ = _drain_both(spec, 3, 16, values, n_steps=96)
    assert any(det.n_finetunes > 0 for det in fused_dets)
    assert fleet._arena is not None and fleet._arena.synced()


def test_arena_rejects_mismatched_shapes():
    specs = [
        build_detector(AlgorithmSpec("ae", "sw", "never"), 9, CONFIG),
        build_detector(
            AlgorithmSpec("ae", "sw", "never"),
            9,
            DetectorConfig(window=12, train_capacity=32, fit_epochs=1),
        ),
    ]
    values = _series(0).values
    for det in specs:
        for t in range(WARMUP):
            det.step(values[t])
    with pytest.raises(FleetIncompatible):
        ParameterArena([det.model.fleet_modules() for det in specs])


# ----------------------------------------------------------------------
# kernel probes: the bitwise substrate of the fused path
# ----------------------------------------------------------------------
def test_probe_tiled_forward_matches_plain_gemm():
    rng = np.random.default_rng(7)
    w = rng.normal(size=(144, 36))
    rows = rng.normal(size=(13, 144))
    tiled = tiled_forward(lambda x: x @ w, rows)
    plain = np.stack([row[None] @ w for row in rows])[:, 0]
    assert tiled.tobytes() == plain.tobytes()
    assert BATCH_TILE == 1  # chunk-1 latency depends on zero padding waste


def test_probe_session_axis_matmul_slices():
    rng = np.random.default_rng(8)
    stack = rng.normal(size=(5, 7, 1, 36))
    w = rng.normal(size=(36, 17))
    fused = stack @ w
    for k in range(5):
        assert fused[k].tobytes() == (stack[k] @ w).tobytes()
        for t in range(7):
            assert fused[k, t].tobytes() == (stack[k, t] @ w).tobytes()


def test_probe_row_mean_matches_per_row():
    rng = np.random.default_rng(9)
    for dim in (1, 16, 17, 144):
        block = rng.normal(size=(6, dim))
        fused = block.mean(axis=1)
        for i in range(6):
            assert fused[i] == block[i].mean()
        gathered = block[np.array([4, 1, 3])]
        assert gathered.mean(axis=1).tobytes() == np.array(
            [block[4].mean(), block[1].mean(), block[3].mean()]
        ).tobytes()


def test_probe_scatter_add_matches_per_row():
    rng = np.random.default_rng(10)
    base = rng.normal(size=(5, 12))
    add = rng.normal(size=(3, 12))
    idx = np.array([0, 2, 4])
    scattered = base.copy()
    scattered[idx] += add
    looped = base.copy()
    for j, k in enumerate(idx):
        looped[k] += add[j]
    assert scattered.tobytes() == looped.tobytes()


def test_probe_zero_removed_row_replay():
    """x + (a - 0.0) and x + (a² - 0.0²) are bit-identical to appends."""
    rng = np.random.default_rng(11)
    x = rng.normal(size=72)
    a = rng.normal(size=72)
    assert (x + (a - 0.0)).tobytes() == (x + a).tobytes()
    assert (x + (a**2 - 0.0**2)).tobytes() == (x + a**2).tobytes()


def test_probe_session_axis_training_grads():
    """The fused backward's stacked matmuls slice to per-session grads."""
    rng = np.random.default_rng(12)
    x = rng.normal(size=(4, 9, 36))
    w = rng.normal(size=(4, 36, 17))
    g = rng.normal(size=(4, 9, 17))
    fwd = np.matmul(x, w)
    w_grad = np.matmul(x.transpose(0, 2, 1), g)
    b_grad = g.sum(axis=1)
    x_grad = np.matmul(g, w.transpose(0, 2, 1))
    for k in range(4):
        assert fwd[k].tobytes() == (x[k] @ w[k]).tobytes()
        assert w_grad[k].tobytes() == (x[k].T @ g[k]).tobytes()
        assert b_grad[k].tobytes() == g[k].sum(axis=0).tobytes()
        assert x_grad[k].tobytes() == (g[k] @ w[k].T).tobytes()


def test_probe_adam_lane_bias_broadcast():
    """Per-session bias corrections broadcast over (K, 1, ...) columns
    exactly as the scalar per-session Adam expressions."""
    rng = np.random.default_rng(13)
    counts = [3, 7, 11]
    beta1, beta2, lr, eps = 0.9, 0.999, 3e-3, 1e-8
    m = rng.normal(size=(3, 36, 17))
    v = rng.normal(size=(3, 36, 17)) ** 2
    bias1 = np.array([1.0 - beta1**c for c in counts])
    bias2 = np.array([1.0 - beta2**c for c in counts])
    shape = (3,) + (1,) * (m.ndim - 1)
    fused = lr * (m / bias1.reshape(shape)) / (
        np.sqrt(v / bias2.reshape(shape)) + eps
    )
    for k, count in enumerate(counts):
        solo = lr * (m[k] / (1.0 - beta1**count)) / (
            np.sqrt(v[k] / (1.0 - beta2**count)) + eps
        )
        assert fused[k].tobytes() == solo.tobytes()


def test_probe_fancy_gather_minibatch():
    """(K, B)-indexed minibatch gather slices to per-session takes,
    including the ragged final batch."""
    rng = np.random.default_rng(14)
    flat = rng.normal(size=(3, 32, 20))
    orders = np.stack([rng.permutation(32) for _ in range(3)])
    rows = np.arange(3)[:, None]
    for start in (0, 24):  # 24 → final partial batch of 8
        idx = orders[:, start : start + 12]
        batch = flat[rows, idx]
        for k in range(3):
            assert batch[k].tobytes() == flat[k][idx[k]].tobytes()


def test_probe_fleet_scorer_lane_bitwise():
    """`AnomalyLikelihood.fleet_update_batch` equals per-scorer
    `update_batch` bitwise — ragged spans, warm-ring fallback, mixed
    parameters — and leaves identical ring state behind."""
    import pickle

    from repro.scoring.anomaly_score import AnomalyLikelihood

    rng = np.random.default_rng(16)

    def warmed(seed, k=64, n_warm=200):
        scorer = AnomalyLikelihood(k=k)
        scorer.update_batch(np.random.default_rng(seed).normal(size=n_warm))
        return scorer

    # Ragged spans across a 4-session lane, plus a still-warming ring
    # (scalar-path region) and a mismatched-k session that must fall
    # back — the lane result must not depend on who shares the stack.
    scorers = [warmed(s) for s in range(4)]
    scorers.append(warmed(4, n_warm=10))  # ring below k-1: scalar path
    scorers.append(warmed(5, k=32))  # different window length
    values = [rng.normal(size=b) for b in (16, 1, 7, 16, 5, 16)]
    reference = [pickle.loads(pickle.dumps(s)) for s in scorers]

    fused = AnomalyLikelihood.fleet_update_batch(scorers, values)
    for scorer, ref, vals, out in zip(scorers, reference, values, fused):
        want = ref.update_batch(vals)
        assert out.tobytes() == want.tobytes()
        assert pickle.dumps(scorer.snapshot()) == pickle.dumps(ref.snapshot())


def test_train_micro_fix_identity():
    """The preallocated/hoisted `_train` loop equals the naive one."""
    from repro import nn
    from repro.models.autoencoder import TwoLayerAutoencoder

    rng = np.random.default_rng(15)
    windows = rng.normal(size=(50, 8, 6))
    current = TwoLayerAutoencoder(window=8, n_channels=6, seed=3)
    naive = TwoLayerAutoencoder(window=8, n_channels=6, seed=3)
    loss_current = current.fit(windows, epochs=3)

    naive.scaler.fit(windows)
    flat = naive.scaler.transform(windows).reshape(len(windows), -1)
    loss_naive = float("nan")
    for _ in range(3):
        order = naive._rng.permutation(len(flat))
        losses = []
        for start in range(0, len(flat), naive.batch_size):
            batch = flat[order[start : start + naive.batch_size]]
            naive._optimizer.zero_grad()
            output = naive.network(batch)
            losses.append(nn.mse_loss(output, batch))
            naive.network.backward(nn.mse_loss_grad(output, batch))
            naive._optimizer.step()
        loss_naive = float(np.mean(losses))
    naive._fitted = True

    assert loss_current == loss_naive
    for p_cur, p_old in zip(current.network.parameters(), naive.network.parameters()):
        assert p_cur.value.tobytes() == p_old.value.tobytes()
