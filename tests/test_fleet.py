"""Bitwise-identity property tests for cross-session fused inference.

The contract under test: :meth:`FleetEngine.step_chunk` over K same-spec
detectors produces exactly the outputs *and* the detector state that K
separate per-session :meth:`step_chunk` calls would have produced — for
any fleet size, any chunk size, and any mix of clean / diverging /
ineligible sessions.  Since ``step_chunk`` is itself pinned bitwise to
``step()`` (``tests/test_chunked_stream.py``), this transitively pins the
fused path to the sequential reference.

The suite also pins the numerical substrate the fusion relies on (the
"kernel probes"): session-axis stacked ``np.matmul`` slices, row-mean
reductions, scatter adds and the zero-removed-row replay must be
bit-identical to their per-session counterparts on this BLAS build —
if a probe fails on some platform, the fused path is *wrong there*, not
merely different.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.datasets.corpora import make_daphnet
from repro.models.base import BATCH_TILE, tiled_forward
from repro.nn.arena import FleetIncompatible, ParameterArena
from repro.streaming.checkpoint import load_detector, save_detector
from repro.streaming.fleet import FleetEngine

CONFIG = DetectorConfig(window=8, train_capacity=32, fit_epochs=2, kswin_check_every=8)
WARMUP = 150

#: registry slice with fleet support: session-axis batchable models ×
#: the fusable Task-2 strategies.
FLEET_SPECS = (
    AlgorithmSpec("ae", "sw", "musigma"),
    AlgorithmSpec("usad", "sw", "musigma"),
    AlgorithmSpec("nbeats", "sw", "regular"),
    AlgorithmSpec("ae", "sw", "never"),
)

#: (K, chunk) grid: fleet sizes {1, 3, 8} × chunk sizes {1, 7, 64},
#: sampled so each axis value appears with several of the other's.
FLEET_SHAPES = ((1, 7), (3, 1), (3, 64), (8, 7))


def _series(k: int, n_steps: int = 600):
    return make_daphnet(n_series=1, n_steps=n_steps, clean_prefix=200, seed=k)[0]


def _build_fleet(spec: AlgorithmSpec, k_sessions: int, values_by_k):
    """K warmed-up detectors, deterministically reproducible."""
    detectors = []
    for k in range(k_sessions):
        det = build_detector(spec, _series(k).n_channels, CONFIG)
        for t in range(WARMUP):
            det.step(values_by_k[k][t])
        detectors.append(det)
    return detectors


def state_fingerprint(det) -> bytes:
    """Every piece of detector state the equivalence contract pins."""
    drift = det.drift_detector
    drift_state = (drift.ops.additions, drift.ops.multiplications, drift.ops.comparisons)
    if getattr(drift, "_sum", None) is not None:
        drift_state += (
            drift._sum.tobytes(),
            drift._sumsq.tobytes(),
            drift._count,
            drift._ref_mean.tobytes(),
            drift._ref_std.tobytes(),
        )
    return pickle.dumps(
        {
            "t": det.t,
            "first": det.first_scored_step,
            "train_set": [x.tobytes() for x in det.train_strategy._deque],
            "drift": drift_state,
            "ring": det.buffer._ring.tobytes(),
            "pos": det.buffer._pos,
            "count": det.buffer._count,
            "scorer": pickle.dumps(det.scorer),
            "params": [
                p.value.tobytes()
                for m in det.model.fleet_modules()
                for p in m.parameters()
            ],
            "events": [(e.t, e.reason, e.train_set_size) for e in det.events],
        }
    )


def _drain_both(spec, k_sessions, chunk, values_by_k, n_steps, shift=None):
    """Run fused vs per-session over identical streams; return both fleets."""
    values = [v.copy() for v in values_by_k]
    if shift is not None:
        for k, start, delta in shift:
            values[k][start:] += delta
    fused_dets = _build_fleet(spec, k_sessions, values)
    ref_dets = _build_fleet(spec, k_sessions, values)
    fleet = FleetEngine(fused_dets)
    for start in range(WARMUP, WARMUP + n_steps, chunk):
        end = min(start + chunk, WARMUP + n_steps)
        blocks = [v[start:end] for v in values]
        fused = fleet.step_chunk(blocks)
        for k in range(k_sessions):
            reference = ref_dets[k].step_chunk(blocks[k])
            for got, want in zip(fused[k], reference):
                assert got.tobytes() == want.tobytes()
    return fleet, fused_dets, ref_dets


# ----------------------------------------------------------------------
# fused == per-session across the registry slice × fleet shapes
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec", FLEET_SPECS, ids=lambda s: f"{s.model}+{s.task1}+{s.task2}"
)
@pytest.mark.parametrize("k_sessions,chunk", FLEET_SHAPES)
def test_fleet_matches_per_session_bitwise(spec, k_sessions, chunk):
    values = [_series(k).values for k in range(k_sessions)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec, k_sessions, chunk, values, n_steps=192
    )
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    manifest = fleet.manifest()
    assert manifest["sessions"] == k_sessions
    total = (
        manifest["fused_steps"] + manifest["dirty_steps"] + manifest["stock_steps"]
    )
    assert total == k_sessions * 192


def test_fleet_divergence_and_rejoin_bitwise():
    """Sessions that fire mid-fleet drop to the dirty lane and rejoin."""
    spec = AlgorithmSpec("ae", "sw", "musigma")
    values = [_series(k).values for k in range(4)]
    fleet, fused_dets, ref_dets = _drain_both(
        spec,
        4,
        16,
        values,
        n_steps=320,
        shift=[(1, 250, 6.0), (3, 400, 9.0)],
    )
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    # The shifted sessions must actually have diverged (fine-tuned) and
    # the fleet must still have fused the quiet majority.
    assert fused_dets[1].n_finetunes > 0 and fused_dets[3].n_finetunes > 0
    manifest = fleet.manifest()
    assert manifest["dirty_steps"] > 0
    assert manifest["fused_steps"] > manifest["dirty_steps"]


def test_fleet_mixed_specs_fall_back_to_stock():
    """A non-uniform member is stepped through its own engine, bitwise."""
    values = [_series(k).values for k in range(3)]
    mixed = [
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("usad", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
    ]
    reference = [
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("usad", "sw", "musigma"), 9, CONFIG),
        build_detector(AlgorithmSpec("ae", "sw", "musigma"), 9, CONFIG),
    ]
    for k in range(3):
        for t in range(WARMUP):
            mixed[k].step(values[k][t])
            reference[k].step(values[k][t])
    fleet = FleetEngine(mixed)
    for start in range(WARMUP, WARMUP + 96, 16):
        blocks = [v[start : start + 16] for v in values]
        fused = fleet.step_chunk(blocks)
        for k in range(3):
            want = reference[k].step_chunk(blocks[k])
            for got, expected in zip(fused[k], want):
                assert got.tobytes() == expected.tobytes()
    assert 1 in fleet.last_drain["stock"]  # the usad member never fuses
    for fused_det, ref_det in zip(mixed, reference):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)


# ----------------------------------------------------------------------
# arena attach / detach / checkpoint round-trips
# ----------------------------------------------------------------------
def test_fleet_member_checkpoint_bitwise_vs_unfused():
    """A fleet member's checkpoint equals the never-fused detector's."""
    spec = AlgorithmSpec("ae", "sw", "musigma")
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, ref_dets = _drain_both(spec, 3, 16, values, n_steps=96)
    assert fleet._arena is not None and fleet._arena.synced()
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        # Arena row views must pickle to the same bytes as standalone
        # arrays — a spilled fleet member is indistinguishable from one
        # that never joined a fleet.
        assert pickle.dumps(fused_det) == pickle.dumps(ref_det)


def test_fleet_detach_reattach_round_trip(tmp_path):
    """Detach → checkpoint → reload → rejoin stays bitwise."""
    spec = AlgorithmSpec("usad", "sw", "musigma")
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, ref_dets = _drain_both(spec, 3, 16, values, n_steps=96)
    arena = fleet._arena
    assert arena is not None
    # Detach one session: its parameters become standalone arrays with
    # unchanged bits; the other rows keep their arena views.
    member = fused_dets[1]
    before = [
        p.value.copy()
        for m in member.model.fleet_modules()
        for p in m.parameters()
    ]
    arena.detach_row(1)
    after = [
        p.value for m in member.model.fleet_modules() for p in m.parameters()
    ]
    for want, got in zip(before, after):
        assert got.base is None
        assert got.tobytes() == want.tobytes()
    # Round-trip the detached member through a checkpoint file.
    path = tmp_path / "member.ckpt"
    save_detector(member, path)
    fused_dets[1] = load_detector(path)
    fleet.detectors[1] = fused_dets[1]
    # The next drain rebuilds the arena (the reloaded member's params are
    # rebound) and the fleet keeps matching the reference bitwise.
    assert not arena.synced()
    for start in range(WARMUP + 96, WARMUP + 192, 16):
        blocks = [v[start : start + 16] for v in values]
        fused = fleet.step_chunk(blocks)
        for k in range(3):
            want = ref_dets[k].step_chunk(blocks[k])
            for got, expected in zip(fused[k], want):
                assert got.tobytes() == expected.tobytes()
    for fused_det, ref_det in zip(fused_dets, ref_dets):
        assert state_fingerprint(fused_det) == state_fingerprint(ref_det)
    assert fleet._arena.synced()


def test_arena_survives_in_place_finetunes():
    """Optimizer updates mutate arena rows in place; no rebuild needed."""
    spec = AlgorithmSpec("ae", "sw", "regular")
    values = [_series(k).values for k in range(3)]
    fleet, fused_dets, _ = _drain_both(spec, 3, 16, values, n_steps=96)
    assert any(det.n_finetunes > 0 for det in fused_dets)
    assert fleet._arena is not None and fleet._arena.synced()


def test_arena_rejects_mismatched_shapes():
    specs = [
        build_detector(AlgorithmSpec("ae", "sw", "never"), 9, CONFIG),
        build_detector(
            AlgorithmSpec("ae", "sw", "never"),
            9,
            DetectorConfig(window=12, train_capacity=32, fit_epochs=1),
        ),
    ]
    values = _series(0).values
    for det in specs:
        for t in range(WARMUP):
            det.step(values[t])
    with pytest.raises(FleetIncompatible):
        ParameterArena([det.model.fleet_modules() for det in specs])


# ----------------------------------------------------------------------
# kernel probes: the bitwise substrate of the fused path
# ----------------------------------------------------------------------
def test_probe_tiled_forward_matches_plain_gemm():
    rng = np.random.default_rng(7)
    w = rng.normal(size=(144, 36))
    rows = rng.normal(size=(13, 144))
    tiled = tiled_forward(lambda x: x @ w, rows)
    plain = np.stack([row[None] @ w for row in rows])[:, 0]
    assert tiled.tobytes() == plain.tobytes()
    assert BATCH_TILE == 1  # chunk-1 latency depends on zero padding waste


def test_probe_session_axis_matmul_slices():
    rng = np.random.default_rng(8)
    stack = rng.normal(size=(5, 7, 1, 36))
    w = rng.normal(size=(36, 17))
    fused = stack @ w
    for k in range(5):
        assert fused[k].tobytes() == (stack[k] @ w).tobytes()
        for t in range(7):
            assert fused[k, t].tobytes() == (stack[k, t] @ w).tobytes()


def test_probe_row_mean_matches_per_row():
    rng = np.random.default_rng(9)
    for dim in (1, 16, 17, 144):
        block = rng.normal(size=(6, dim))
        fused = block.mean(axis=1)
        for i in range(6):
            assert fused[i] == block[i].mean()
        gathered = block[np.array([4, 1, 3])]
        assert gathered.mean(axis=1).tobytes() == np.array(
            [block[4].mean(), block[1].mean(), block[3].mean()]
        ).tobytes()


def test_probe_scatter_add_matches_per_row():
    rng = np.random.default_rng(10)
    base = rng.normal(size=(5, 12))
    add = rng.normal(size=(3, 12))
    idx = np.array([0, 2, 4])
    scattered = base.copy()
    scattered[idx] += add
    looped = base.copy()
    for j, k in enumerate(idx):
        looped[k] += add[j]
    assert scattered.tobytes() == looped.tobytes()


def test_probe_zero_removed_row_replay():
    """x + (a - 0.0) and x + (a² - 0.0²) are bit-identical to appends."""
    rng = np.random.default_rng(11)
    x = rng.normal(size=72)
    a = rng.normal(size=72)
    assert (x + (a - 0.0)).tobytes() == (x + a).tobytes()
    assert (x + (a**2 - 0.0**2)).tobytes() == (x + a**2).tobytes()
