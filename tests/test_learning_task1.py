"""Tests for Task-1 training-set strategies: SW, URES, ARES."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning import (
    AnomalyAwareReservoir,
    SlidingWindow,
    UniformReservoir,
    UpdateKind,
)


def vec(i):
    return np.array([float(i), float(i) * 2])


class TestSlidingWindow:
    def test_grows_until_capacity(self):
        sw = SlidingWindow(3)
        for i in range(3):
            update = sw.update(vec(i))
            assert update.kind is UpdateKind.ADDED
        assert len(sw) == 3

    def test_evicts_oldest(self):
        sw = SlidingWindow(3)
        for i in range(5):
            sw.update(vec(i))
        train = sw.training_set()
        np.testing.assert_array_equal(train[:, 0], [2.0, 3.0, 4.0])

    def test_replace_reports_removed_vector(self):
        sw = SlidingWindow(2)
        sw.update(vec(0))
        sw.update(vec(1))
        update = sw.update(vec(2))
        assert update.kind is UpdateKind.REPLACED
        np.testing.assert_array_equal(update.removed, vec(0))

    def test_reset(self):
        sw = SlidingWindow(2)
        sw.update(vec(0))
        sw.reset()
        assert len(sw) == 0
        assert sw.training_set().size == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_preserves_order(self):
        sw = SlidingWindow(4)
        for i in range(10):
            sw.update(vec(i))
        train = sw.training_set()
        assert np.all(np.diff(train[:, 0]) > 0)


class TestUniformReservoir:
    def test_fills_then_bounded(self, rng):
        res = UniformReservoir(10, rng=rng)
        for i in range(100):
            res.update(vec(i))
            assert len(res) <= 10
        assert len(res) == 10

    def test_inclusion_probability_roughly_uniform(self):
        # Each of 200 items should be retained with probability 10/200.
        counts = np.zeros(200)
        for seed in range(300):
            res = UniformReservoir(10, rng=np.random.default_rng(seed))
            for i in range(200):
                res.update(np.array([float(i)]))
            for value in res.training_set().ravel():
                counts[int(value)] += 1
        frequency = counts / 300
        # Expected inclusion probability is 10/200 = 0.05 for every item.
        assert abs(frequency.mean() - 0.05) < 0.005
        # Early items must not be systematically preferred over late ones.
        assert abs(frequency[:100].mean() - frequency[100:].mean()) < 0.02

    def test_update_kinds_valid(self, rng):
        res = UniformReservoir(5, rng=rng)
        kinds = {res.update(vec(i)).kind for i in range(50)}
        assert UpdateKind.ADDED in kinds
        assert kinds <= {UpdateKind.ADDED, UpdateKind.REPLACED, UpdateKind.UNCHANGED}

    def test_reset_restarts_counting(self, rng):
        res = UniformReservoir(5, rng=rng)
        for i in range(20):
            res.update(vec(i))
        res.reset()
        assert len(res) == 0
        assert res.update(vec(0)).kind is UpdateKind.ADDED


class TestAnomalyAwareReservoir:
    def test_priority_decreases_with_score(self, rng):
        res = AnomalyAwareReservoir(5, rng=np.random.default_rng(0))
        # Average priorities over draws to smooth the random base u.
        normal = np.mean([res.priority(0.0) for _ in range(200)])
        anomalous = np.mean([res.priority(1.0) for _ in range(200)])
        assert normal > anomalous

    def test_priority_in_unit_interval(self, rng):
        res = AnomalyAwareReservoir(5, rng=rng)
        for score in np.linspace(0, 1, 11):
            p = res.priority(float(score))
            assert 0.0 <= p <= 1.0

    def test_retains_normal_vectors(self):
        res = AnomalyAwareReservoir(10, rng=np.random.default_rng(1))
        # Alternate normal (score 0) and anomalous (score 1) vectors; the
        # reservoir should be dominated by normal ones.
        for i in range(200):
            score = 1.0 if i % 2 else 0.0
            res.update(np.array([float(i % 2)]), score=score)
        values = res.training_set().ravel()
        assert values.mean() < 0.3  # mostly the score-0 vectors

    def test_capacity_respected(self, rng):
        res = AnomalyAwareReservoir(7, rng=rng)
        for i in range(50):
            res.update(vec(i), score=rng.uniform())
            assert len(res) <= 7

    def test_replacement_requires_lower_priority(self):
        res = AnomalyAwareReservoir(
            2, u_range=(0.8, 0.800001), rng=np.random.default_rng(0)
        )
        res.update(vec(0), score=0.0)
        res.update(vec(1), score=0.0)
        # A maximally anomalous vector has far lower priority than residents.
        update = res.update(vec(2), score=1.0)
        assert update.kind is UpdateKind.UNCHANGED

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AnomalyAwareReservoir(5, lambda1=0.0)
        with pytest.raises(ValueError):
            AnomalyAwareReservoir(5, u_range=(0.0, 0.5))
        with pytest.raises(ValueError):
            AnomalyAwareReservoir(5, u_range=(0.9, 0.7))

    def test_priorities_tracked_alongside_buffer(self, rng):
        res = AnomalyAwareReservoir(4, rng=rng)
        for i in range(10):
            res.update(vec(i), score=0.1)
        assert len(res.priorities()) == len(res)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_size_invariant(self, capacity, n_updates):
        res = AnomalyAwareReservoir(capacity, rng=np.random.default_rng(0))
        for i in range(n_updates):
            res.update(np.array([float(i)]), score=(i % 3) / 3)
        assert len(res) == min(capacity, n_updates)
