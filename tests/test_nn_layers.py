"""Tests for the neural substrate: numerical gradient checks and shapes."""

import numpy as np
import pytest

from repro import nn


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def loss_through(module, x, target):
    out = module(x)
    return float(np.sum((out - target) ** 2))


def check_param_gradients(module, x, target, atol=1e-5):
    """Backprop gradients must match finite differences for every parameter."""
    out = module(x)
    module.zero_grad()
    module.backward(2.0 * (out - target))
    for param in module.parameters():
        expected = numerical_gradient(
            lambda: loss_through(module, x, target), param.value
        )
        np.testing.assert_allclose(param.grad, expected, atol=atol, rtol=1e-4)


def check_input_gradient(module, x, target, atol=1e-5):
    out = module(x)
    module.zero_grad()
    grad_in = module.backward(2.0 * (out - target))
    expected = numerical_gradient(lambda: loss_through(module, x, target), x)
    np.testing.assert_allclose(grad_in, expected, atol=atol, rtol=1e-4)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = nn.Linear(4, 7, rng)
        assert layer(rng.normal(size=(3, 4))).shape == (3, 7)

    def test_forward_rejects_wrong_width(self, rng):
        layer = nn.Linear(4, 7, rng)
        with pytest.raises(ValueError):
            layer(rng.normal(size=(3, 5)))

    def test_backward_before_forward_raises(self, rng):
        layer = nn.Linear(4, 7, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((3, 7)))

    def test_parameter_gradients(self, rng):
        layer = nn.Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 2))
        check_param_gradients(layer, x, target)

    def test_input_gradient(self, rng):
        layer = nn.Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        check_input_gradient(layer, x, rng.normal(size=(5, 2)))

    def test_gradients_accumulate(self, rng):
        layer = nn.Linear(2, 2, rng)
        x = rng.normal(size=(1, 2))
        layer(x)
        layer.backward(np.ones((1, 2)))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_unknown_init_rejected(self, rng):
        with pytest.raises(ValueError):
            nn.Linear(2, 2, rng, init="nope")


@pytest.mark.parametrize("activation_cls", [nn.Sigmoid, nn.ReLU, nn.Tanh])
class TestActivations:
    def test_input_gradient(self, activation_cls, rng):
        act = activation_cls()
        x = rng.normal(size=(4, 3)) + 0.1  # avoid ReLU kink at exactly 0
        check_input_gradient(act, x, rng.normal(size=(4, 3)))

    def test_shape_preserved(self, activation_cls, rng):
        act = activation_cls()
        x = rng.normal(size=(2, 5))
        assert act(x).shape == x.shape


class TestSigmoid:
    def test_range(self, rng):
        out = nn.Sigmoid()(rng.normal(scale=100, size=(10, 10)))
        assert np.all(out >= 0) and np.all(out <= 1)

    def test_extreme_values_stable(self):
        out = nn.Sigmoid()(np.array([[-1e4, 1e4]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)


class TestReLU:
    def test_zeroes_negatives(self):
        out = nn.ReLU()(np.array([[-1.0, 2.0, -3.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0, 0.0]])


class TestIdentity:
    def test_passthrough(self, rng):
        x = rng.normal(size=(3, 3))
        ident = nn.Identity()
        np.testing.assert_array_equal(ident(x), x)
        np.testing.assert_array_equal(ident.backward(x), x)


class TestSequential:
    def test_compose_and_gradients(self, rng):
        net = nn.Sequential(
            nn.Linear(3, 5, rng), nn.Tanh(), nn.Linear(5, 2, rng), nn.Sigmoid()
        )
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        check_param_gradients(net, x, target)
        check_input_gradient(net, x, target)

    def test_len_and_getitem(self, rng):
        net = nn.Sequential(nn.Linear(2, 2, rng), nn.ReLU())
        assert len(net) == 2
        assert isinstance(net[1], nn.ReLU)

    def test_n_parameters(self, rng):
        net = nn.Sequential(nn.Linear(3, 4, rng), nn.Linear(4, 2, rng))
        assert net.n_parameters() == 3 * 4 + 4 + 4 * 2 + 2


class TestModuleState:
    def test_state_roundtrip(self, rng):
        net = nn.Sequential(nn.Linear(3, 3, rng), nn.Tanh(), nn.Linear(3, 1, rng))
        state = net.state()
        x = rng.normal(size=(2, 3))
        before = net(x).copy()
        for param in net.parameters():
            param.value += 1.0
        assert not np.allclose(net(x), before)
        net.load_state(state)
        np.testing.assert_allclose(net(x), before)

    def test_load_state_wrong_length_rejected(self, rng):
        net = nn.Sequential(nn.Linear(2, 2, rng))
        with pytest.raises(ValueError):
            net.load_state([])

    def test_load_state_wrong_shape_rejected(self, rng):
        net = nn.Sequential(nn.Linear(2, 2, rng))
        state = [np.zeros((3, 3)), np.zeros(2)]
        with pytest.raises(ValueError):
            net.load_state(state)


class TestLosses:
    def test_mse_loss_value(self):
        assert nn.mse_loss(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])) == pytest.approx(2.5)

    def test_mse_grad_matches_numeric(self, rng):
        pred = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))
        grad = nn.mse_loss_grad(pred, target)
        expected = numerical_gradient(lambda: nn.mse_loss(pred, target), pred)
        np.testing.assert_allclose(grad, expected, atol=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nn.mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            nn.mse_loss_grad(np.zeros((2, 2)), np.zeros((2, 3)))


class TestInit:
    def test_glorot_bounds(self, rng):
        from repro.nn.init import glorot_uniform

        weights = glorot_uniform(100, 100, rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(weights) <= limit)

    def test_invalid_fans_rejected(self, rng):
        from repro.nn.init import glorot_uniform, he_uniform

        with pytest.raises(ValueError):
            glorot_uniform(0, 5, rng)
        with pytest.raises(ValueError):
            he_uniform(5, 0, rng)
