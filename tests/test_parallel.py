"""Tests for the parallel experiment engine (repro.streaming.parallel)."""

import logging

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.datasets import make_smd
from repro.streaming import (
    CellFailure,
    CorpusCell,
    ParallelCorpusRunner,
    StreamResult,
    build_cells,
    derive_cell_seed,
    run_corpus,
)
from repro.streaming.parallel import resolve_n_jobs


SMALL_CONFIG = DetectorConfig(window=8, train_capacity=24, fit_epochs=1)


def small_grid(n_series=2, n_steps=400):
    corpus = make_smd(n_series=n_series, n_steps=n_steps, clean_prefix=100, seed=3)
    specs = [
        AlgorithmSpec("online_arima", "sw", "musigma"),
        AlgorithmSpec("pcb_iforest", "sw", "kswin"),
    ]
    return build_cells(specs, corpus, SMALL_CONFIG, scorers=("avg",))


def poisoned_series(n_steps=300):
    """A series whose tail is non-finite: the detector raises mid-stream."""
    rng = np.random.default_rng(0)
    values = rng.normal(size=(n_steps, 2))
    values[n_steps // 2 :] = np.inf
    return TimeSeries(
        values=values,
        labels=np.zeros(n_steps, dtype=int),
        name="poisoned",
    )


class TestResolveNJobs:
    def test_sequential_aliases(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(0) == 1
        assert resolve_n_jobs(1) == 1

    def test_explicit(self):
        assert resolve_n_jobs(4) == 4

    def test_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1


class TestDeriveCellSeed:
    def test_deterministic(self):
        assert derive_cell_seed(7, "a", "b") == derive_cell_seed(7, "a", "b")

    def test_sensitive_to_every_part(self):
        base = derive_cell_seed(7, "spec", "scorer", "series")
        assert derive_cell_seed(8, "spec", "scorer", "series") != base
        assert derive_cell_seed(7, "spec2", "scorer", "series") != base
        assert derive_cell_seed(7, "spec", "scorer2", "series") != base

    def test_in_numpy_seed_range(self):
        seed = derive_cell_seed(0, "x")
        assert 0 <= seed < 2**32


class TestParallelEqualsSequential:
    def test_bitwise_identical_scores(self):
        cells = small_grid()
        sequential = ParallelCorpusRunner(n_jobs=1).run(cells)
        parallel = ParallelCorpusRunner(n_jobs=2).run(cells)
        assert not sequential.failures and not parallel.failures
        assert len(sequential.results) == len(cells)
        for seq, par in zip(sequential.results, parallel.results):
            assert seq.series_name == par.series_name
            assert seq.algorithm == par.algorithm
            np.testing.assert_array_equal(seq.scores, par.scores)
            np.testing.assert_array_equal(seq.nonconformities, par.nonconformities)
            assert seq.drift_steps == par.drift_steps

    def test_chunked_dispatch_matches(self):
        cells = small_grid()
        one_by_one = ParallelCorpusRunner(n_jobs=2, chunksize=1).run(cells)
        chunked = ParallelCorpusRunner(n_jobs=2, chunksize=3).run(cells)
        for a, b in zip(one_by_one.results, chunked.results):
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_outcomes_stay_ordered(self):
        cells = small_grid(n_series=3)
        grid = ParallelCorpusRunner(n_jobs=2).run(cells)
        for cell, outcome in zip(cells, grid.outcomes):
            assert isinstance(outcome, StreamResult)
            assert outcome.series_name == cell.series.name
            assert outcome.algorithm == cell.spec.model

    def test_per_cell_seeds_also_deterministic(self):
        corpus = make_smd(n_series=2, n_steps=400, clean_prefix=100, seed=3)
        specs = [AlgorithmSpec("pcb_iforest", "sw", "kswin")]
        cells = build_cells(
            specs, corpus, SMALL_CONFIG, scorers=("avg",), per_cell_seeds=True
        )
        assert len({cell.seed for cell in cells}) == len(cells)
        sequential = ParallelCorpusRunner(n_jobs=1).run(cells)
        parallel = ParallelCorpusRunner(n_jobs=2).run(cells)
        for seq, par in zip(sequential.results, parallel.results):
            np.testing.assert_array_equal(seq.scores, par.scores)


class TestWorkerCrashSurvival:
    def _cells_with_poison(self):
        good = make_smd(n_series=2, n_steps=300, clean_prefix=80, seed=5)
        spec = AlgorithmSpec("online_arima", "sw", "musigma")
        series = [good[0], poisoned_series(), good[1]]
        return [
            CorpusCell(spec=spec, series=s, config=SMALL_CONFIG, scorer="avg")
            for s in series
        ]

    def test_grid_survives_failing_cell(self):
        grid = ParallelCorpusRunner(n_jobs=2).run(self._cells_with_poison())
        assert grid.n_cells == 3
        assert len(grid.failures) == 1
        assert len(grid.results) == 2
        # The failure slot is in the middle, aligned with its cell.
        assert isinstance(grid.outcomes[1], CellFailure)
        failure = grid.failures[0]
        assert failure.series_name == "poisoned"
        assert failure.error_type == "StreamError"
        assert "non-finite" in failure.message
        assert "run_stream" in failure.traceback

    def test_sequential_engine_also_captures(self):
        grid = ParallelCorpusRunner(n_jobs=1).run(self._cells_with_poison())
        assert len(grid.failures) == 1
        assert len(grid.results) == 2

    def test_raise_on_failure_escalates(self):
        grid = ParallelCorpusRunner(n_jobs=1).run(self._cells_with_poison())
        with pytest.raises(RuntimeError, match="poisoned"):
            grid.raise_on_failure()


class TestRunCorpusParallel:
    def _factory(self, series):
        return build_detector(
            AlgorithmSpec("online_arima", "sw", "musigma"),
            series.n_channels,
            SMALL_CONFIG,
        )

    def test_matches_sequential(self):
        corpus = make_smd(n_series=3, n_steps=400, clean_prefix=100, seed=1)
        sequential = run_corpus(self._factory, corpus)
        parallel = run_corpus(self._factory, corpus, n_jobs=2)
        assert parallel.n_series == 3
        for seq, par in zip(sequential, parallel):
            np.testing.assert_array_equal(seq.scores, par.scores)

    def test_closure_factories_supported(self):
        # The whole point of the fork path: factories capturing local state.
        corpus = make_smd(n_series=2, n_steps=400, clean_prefix=100, seed=2)
        config = SMALL_CONFIG
        spec = AlgorithmSpec("pcb_iforest", "sw", "kswin")
        result = run_corpus(
            lambda s: build_detector(spec, s.n_channels, config),
            corpus,
            n_jobs=2,
        )
        assert result.n_series == 2

    def test_worker_failure_raises(self):
        corpus = [poisoned_series(), poisoned_series()]
        with pytest.raises(RuntimeError, match="poisoned"):
            run_corpus(self._factory, corpus, n_jobs=2)

    def test_progress_every_forwarded(self, caplog):
        corpus = make_smd(n_series=1, n_steps=250, clean_prefix=60, seed=0)
        with caplog.at_level(logging.INFO, logger="repro.stream"):
            run_corpus(self._factory, corpus, progress_every=100)
        assert "step 100/250" in caplog.text

    def test_n_jobs_validation(self):
        with pytest.raises(ValueError):
            ParallelCorpusRunner(chunksize=0)
