"""Mid-stream checkpoint/restore must resume bitwise-identically.

The contract pinned here: for any registry algorithm and any chunk size,
cutting a stream at step ``c``, checkpointing, loading, and streaming the
remainder produces exactly the score/nonconformity/event sequence of the
uninterrupted run.  The cut points cover every interesting detector
phase: mid-warm-up (before the initial fit), just after the initial fit,
and deep in the stream after drift-triggered fine-tunes — including cuts
that fall in the middle of a chunk boundary for ``batch_size`` 7 and 64,
which exercises the chunked engine's rolling buffers, mirrored score
rings and nonconformity snapshots across the pickle boundary.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.streaming import (
    load_detector,
    peek_checkpoint,
    save_detector,
    transfer_checkpoint,
)

#: A registry slice spanning the model families and both Task-2 drift
#: detectors (the full 26-spec grid runs in the experiment harness; this
#: slice keeps the test suite fast while covering every stateful code
#: path: AE forward, ARIMA recursion, iForest ensembles, ARES scoring
#: feedback and KSWIN windows).
SPECS = [
    ("ae", "sw", "kswin"),
    ("online_arima", "sw", "musigma"),
    ("pcb_iforest", "sw", "kswin"),
    ("usad", "ares", "kswin"),
]

#: Cut points: mid-warm-up (20), just past the initial fit (45), and
#: post-drift (380, after the level shift at step 300).  None is aligned
#: with batch_size 7 or 64, so mid-chunk resume is always exercised.
CUTS = (20, 45, 380)

CONFIG = DetectorConfig(
    window=6,
    train_capacity=24,
    fit_epochs=3,
    initial_train_size=40,
    kswin_check_every=1,
)


def make_stream(n=600, seed=3):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    # A level shift halfway through keeps the drift detectors firing, so
    # the post-fine-tune state is exercised across the pickle boundary.
    values[n // 2 :] *= 2.5
    values[n // 2 :] += 1.0
    return values + rng.normal(scale=0.08, size=values.shape)


def run_chunked(detector, values, batch_size):
    scores, nonconformities = [], []
    for start in range(0, len(values), batch_size):
        a, f, _, _ = detector.step_chunk(values[start : start + batch_size])
        scores.append(f)
        nonconformities.append(a)
    return (
        np.concatenate(scores) if scores else np.empty(0),
        np.concatenate(nonconformities) if nonconformities else np.empty(0),
    )


@pytest.mark.parametrize("batch_size", [1, 7, 64])
@pytest.mark.parametrize("spec", SPECS, ids=["-".join(s) for s in SPECS])
class TestMidStreamResume:
    def test_resumed_scores_bitwise_identical(self, tmp_path, spec, batch_size):
        values = make_stream()
        reference = build_detector(AlgorithmSpec(*spec), n_channels=2, config=CONFIG)
        full_scores, full_nc = run_chunked(reference, values, batch_size)
        reference_events = [(e.t, e.reason) for e in reference.events]

        for cut in CUTS:
            detector = build_detector(
                AlgorithmSpec(*spec), n_channels=2, config=CONFIG
            )
            run_chunked(detector, values[:cut], batch_size)
            path = save_detector(detector, tmp_path / f"cut{cut}.pkl")
            resumed = load_detector(path)
            rest_scores, rest_nc = run_chunked(resumed, values[cut:], batch_size)

            assert np.array_equal(full_scores[cut:], rest_scores), (
                f"scores diverge after resume at cut={cut}"
            )
            assert np.array_equal(full_nc[cut:], rest_nc), (
                f"nonconformities diverge after resume at cut={cut}"
            )
            assert [(e.t, e.reason) for e in resumed.events] == reference_events


@pytest.mark.parametrize("batch_size", [7, 64])
def test_resume_across_engine_modes(tmp_path, batch_size):
    """A checkpoint taken under one chunk size resumes under another.

    Chunk-size invariance of the chunked engine extends across the
    pickle boundary: the persisted state is the sequential-reference
    state, not an artifact of the block size that produced it.
    """
    values = make_stream()
    cut = 380
    reference = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    full_scores, _ = run_chunked(reference, values, 1)

    detector = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    run_chunked(detector, values[:cut], batch_size)
    resumed = load_detector(save_detector(detector, tmp_path / "cross.pkl"))
    rest_scores, _ = run_chunked(resumed, values[cut:], 1)
    assert np.array_equal(full_scores[cut:], rest_scores)


_CHILD_RESUME = """\
import sys

import numpy as np

from repro.streaming import load_detector

checkpoint, values_path, out = sys.argv[1:4]
detector = load_detector(checkpoint)
values = np.load(values_path)
scores = []
for start in range(len(values)):
    _, f, _, _ = detector.step_chunk(values[start : start + 1])
    scores.append(f)
np.save(out, np.concatenate(scores))
"""


def test_resume_in_a_fresh_process_is_bitwise_identical(tmp_path):
    """Checkpoint pickled here, loaded and resumed in a freshly spawned
    interpreter — the boundary live migration and crash recovery cross.

    Same-process round-trips can hide state that leaks through module
    globals or interned objects; a child process shares nothing but the
    checkpoint bytes, so whatever resumes there is exactly what the file
    carries.
    """
    values = make_stream()
    cut = 380
    reference = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    full_scores, _ = run_chunked(reference, values, 1)

    detector = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    run_chunked(detector, values[:cut], 1)
    checkpoint = save_detector(detector, tmp_path / "parent.pkl")

    # Ship the spill bytes the way the router does, and sanity-check the
    # meta block a router reads to compute the resume sequence number.
    shipped = tmp_path / "target" / "parent.pkl"
    meta = transfer_checkpoint(checkpoint, shipped)
    assert meta == peek_checkpoint(shipped)
    assert meta["t"] == cut - 1, "meta t must be the last processed index"

    values_path = tmp_path / "rest.npy"
    out = tmp_path / "child-scores.npy"
    np.save(values_path, values[cut:])
    src_dir = Path(__file__).resolve().parents[1] / "src"
    subprocess.run(
        [sys.executable, "-c", _CHILD_RESUME, str(shipped), str(values_path),
         str(out)],
        check=True,
        env={**os.environ, "PYTHONPATH": str(src_dir)},
        cwd=tmp_path,
        timeout=300,
    )
    child_scores = np.load(out)
    assert np.array_equal(full_scores[cut:], child_scores), (
        "scores resumed in a fresh process diverge from the parent run"
    )
