"""Mid-stream checkpoint/restore must resume bitwise-identically.

The contract pinned here: for any registry algorithm and any chunk size,
cutting a stream at step ``c``, checkpointing, loading, and streaming the
remainder produces exactly the score/nonconformity/event sequence of the
uninterrupted run.  The cut points cover every interesting detector
phase: mid-warm-up (before the initial fit), just after the initial fit,
and deep in the stream after drift-triggered fine-tunes — including cuts
that fall in the middle of a chunk boundary for ``batch_size`` 7 and 64,
which exercises the chunked engine's rolling buffers, mirrored score
rings and nonconformity snapshots across the pickle boundary.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.streaming import (
    load_detector,
    peek_checkpoint,
    save_detector,
    transfer_checkpoint,
)

#: A registry slice spanning the model families and both Task-2 drift
#: detectors (the full 26-spec grid runs in the experiment harness; this
#: slice keeps the test suite fast while covering every stateful code
#: path: AE forward, ARIMA recursion, iForest ensembles, ARES scoring
#: feedback and KSWIN windows).
SPECS = [
    ("ae", "sw", "kswin"),
    ("online_arima", "sw", "musigma"),
    ("pcb_iforest", "sw", "kswin"),
    ("usad", "ares", "kswin"),
]

#: Cut points: mid-warm-up (20), just past the initial fit (45), and
#: post-drift (380, after the level shift at step 300).  None is aligned
#: with batch_size 7 or 64, so mid-chunk resume is always exercised.
CUTS = (20, 45, 380)

CONFIG = DetectorConfig(
    window=6,
    train_capacity=24,
    fit_epochs=3,
    initial_train_size=40,
    kswin_check_every=1,
)


def make_stream(n=600, seed=3):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    # A level shift halfway through keeps the drift detectors firing, so
    # the post-fine-tune state is exercised across the pickle boundary.
    values[n // 2 :] *= 2.5
    values[n // 2 :] += 1.0
    return values + rng.normal(scale=0.08, size=values.shape)


def run_chunked(detector, values, batch_size):
    scores, nonconformities = [], []
    for start in range(0, len(values), batch_size):
        a, f, _, _ = detector.step_chunk(values[start : start + batch_size])
        scores.append(f)
        nonconformities.append(a)
    return (
        np.concatenate(scores) if scores else np.empty(0),
        np.concatenate(nonconformities) if nonconformities else np.empty(0),
    )


@pytest.mark.parametrize("batch_size", [1, 7, 64])
@pytest.mark.parametrize("spec", SPECS, ids=["-".join(s) for s in SPECS])
class TestMidStreamResume:
    def test_resumed_scores_bitwise_identical(self, tmp_path, spec, batch_size):
        values = make_stream()
        reference = build_detector(AlgorithmSpec(*spec), n_channels=2, config=CONFIG)
        full_scores, full_nc = run_chunked(reference, values, batch_size)
        reference_events = [(e.t, e.reason) for e in reference.events]

        for cut in CUTS:
            detector = build_detector(
                AlgorithmSpec(*spec), n_channels=2, config=CONFIG
            )
            run_chunked(detector, values[:cut], batch_size)
            path = save_detector(detector, tmp_path / f"cut{cut}.pkl")
            resumed = load_detector(path)
            rest_scores, rest_nc = run_chunked(resumed, values[cut:], batch_size)

            assert np.array_equal(full_scores[cut:], rest_scores), (
                f"scores diverge after resume at cut={cut}"
            )
            assert np.array_equal(full_nc[cut:], rest_nc), (
                f"nonconformities diverge after resume at cut={cut}"
            )
            assert [(e.t, e.reason) for e in resumed.events] == reference_events


@pytest.mark.parametrize("batch_size", [7, 64])
def test_resume_across_engine_modes(tmp_path, batch_size):
    """A checkpoint taken under one chunk size resumes under another.

    Chunk-size invariance of the chunked engine extends across the
    pickle boundary: the persisted state is the sequential-reference
    state, not an artifact of the block size that produced it.
    """
    values = make_stream()
    cut = 380
    reference = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    full_scores, _ = run_chunked(reference, values, 1)

    detector = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    run_chunked(detector, values[:cut], batch_size)
    resumed = load_detector(save_detector(detector, tmp_path / "cross.pkl"))
    rest_scores, _ = run_chunked(resumed, values[cut:], 1)
    assert np.array_equal(full_scores[cut:], rest_scores)


_CHILD_RESUME = """\
import sys

import numpy as np

from repro.streaming import load_detector

checkpoint, values_path, out = sys.argv[1:4]
detector = load_detector(checkpoint)
values = np.load(values_path)
scores = []
for start in range(len(values)):
    _, f, _, _ = detector.step_chunk(values[start : start + 1])
    scores.append(f)
np.save(out, np.concatenate(scores))
"""


def test_resume_in_a_fresh_process_is_bitwise_identical(tmp_path):
    """Checkpoint pickled here, loaded and resumed in a freshly spawned
    interpreter — the boundary live migration and crash recovery cross.

    Same-process round-trips can hide state that leaks through module
    globals or interned objects; a child process shares nothing but the
    checkpoint bytes, so whatever resumes there is exactly what the file
    carries.
    """
    values = make_stream()
    cut = 380
    reference = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    full_scores, _ = run_chunked(reference, values, 1)

    detector = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    run_chunked(detector, values[:cut], 1)
    checkpoint = save_detector(detector, tmp_path / "parent.pkl")

    # Ship the spill bytes the way the router does, and sanity-check the
    # meta block a router reads to compute the resume sequence number.
    shipped = tmp_path / "target" / "parent.pkl"
    meta = transfer_checkpoint(checkpoint, shipped)
    assert meta == peek_checkpoint(shipped)
    assert meta["t"] == cut - 1, "meta t must be the last processed index"

    values_path = tmp_path / "rest.npy"
    out = tmp_path / "child-scores.npy"
    np.save(values_path, values[cut:])
    src_dir = Path(__file__).resolve().parents[1] / "src"
    subprocess.run(
        [sys.executable, "-c", _CHILD_RESUME, str(shipped), str(values_path),
         str(out)],
        check=True,
        env={**os.environ, "PYTHONPATH": str(src_dir)},
        cwd=tmp_path,
        timeout=300,
    )
    child_scores = np.load(out)
    assert np.array_equal(full_scores[cut:], child_scores), (
        "scores resumed in a fresh process diverge from the parent run"
    )


# ----------------------------------------------------------------------
# cross-spec warm-start (the hot-swap resume primitive)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "target", [("online_arima", "sw", "musigma"), ("usad", "ares", "kswin")],
    ids=["arima", "usad"],
)
def test_cross_spec_warm_start_continues_the_clock(tmp_path, target):
    """Checkpoint spec A at a cut, resume under spec B at ``t + 1``.

    This is the primitive a hot-swap promotion (and a ``resume`` with a
    new spec) is built on: the new detector's clock continues exactly
    where the old one stopped — no stream index skipped or scored twice
    — and its scores are bitwise what a clock-preset spec-B detector
    produces over the remainder, independent of *how* the offset was
    obtained (peeked from checkpoint metadata vs. set directly).
    """
    from repro.select import warm_start_detector, warm_start_from_checkpoint

    values = make_stream()
    cut = 380
    label = "+".join(target)
    old = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    run_chunked(old, values[:cut], 7)
    checkpoint = save_detector(old, tmp_path / "a.pkl")
    assert peek_checkpoint(checkpoint)["t"] == cut - 1

    resumed = warm_start_from_checkpoint(
        checkpoint, label, 2, config=CONFIG
    )
    assert resumed.t == cut - 1  # next point scored is stream index `cut`
    resumed_scores, _ = run_chunked(resumed, values[cut:], 7)
    assert resumed.t == len(values) - 1  # no skip, no double

    reference = warm_start_detector(label, 2, config=CONFIG, at=cut)
    reference_scores, _ = run_chunked(reference, values[cut:], 7)
    assert np.array_equal(resumed_scores, reference_scores)
    # The clock offset must show up in the new spec's event log, so a
    # post-swap fine-tune is attributed to the right stream index.
    assert all(event.t >= cut for event in resumed.events)


def test_warm_start_rejects_bad_inputs(tmp_path):
    from repro.core.exceptions import ConfigurationError
    from repro.select import warm_start_detector, warm_start_from_checkpoint

    with pytest.raises(ConfigurationError):
        warm_start_detector("ae+sw", 2)
    with pytest.raises(ConfigurationError):
        warm_start_detector("ae+sw+kswin", 2, at=-3)
    detector = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), n_channels=2, config=CONFIG
    )
    run_chunked(detector, make_stream()[:50], 7)
    checkpoint = save_detector(detector, tmp_path / "a.pkl")
    with pytest.raises(ConfigurationError):
        warm_start_from_checkpoint(checkpoint, "not-a-spec", 2)
