"""Tests for the stream runner."""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.streaming import run_stream


def small_config():
    return DetectorConfig(window=6, train_capacity=12, fit_epochs=3)


class TestRunStream:
    def test_result_aligned_with_series(self, labelled_series):
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"), 2, small_config()
        )
        result = run_stream(detector, labelled_series)
        assert result.scores.shape == (labelled_series.n_steps,)
        assert result.nonconformities.shape == (labelled_series.n_steps,)
        np.testing.assert_array_equal(result.labels, labelled_series.labels)

    def test_warmup_region_zero(self, labelled_series):
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"), 2, small_config()
        )
        result = run_stream(detector, labelled_series)
        assert np.all(result.scores[: result.first_scored] == 0.0)
        scores, labels = result.scored_region()
        assert scores.size == labelled_series.n_steps - result.first_scored
        assert labels.size == scores.size

    def test_events_and_drifts_recorded(self, labelled_series):
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"), 2, small_config()
        )
        result = run_stream(detector, labelled_series)
        assert result.events[0].reason == "initial_fit"
        for step in result.drift_steps:
            assert 0 <= step < labelled_series.n_steps

    def test_runtime_measured(self, labelled_series):
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"), 2, small_config()
        )
        result = run_stream(detector, labelled_series)
        assert result.runtime_seconds > 0

    def test_series_name_and_algorithm_recorded(self, labelled_series):
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"), 2, small_config()
        )
        result = run_stream(detector, labelled_series)
        assert result.series_name == "test/series"
        assert result.algorithm == "ae"

    def test_n_finetunes_excludes_initial_fit(self, labelled_series):
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "never"), 2, small_config()
        )
        result = run_stream(detector, labelled_series)
        assert result.n_finetunes == 0
        assert len(result.events) == 1
