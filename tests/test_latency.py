"""Tests for the detection-latency metric."""

import numpy as np
import pytest

from repro.metrics import detection_latency


@pytest.fixture
def labels():
    out = np.zeros(300, dtype=int)
    out[100:120] = 1
    out[200:230] = 1
    return out


class TestDetectionLatency:
    def test_instant_detection_zero_delay(self, labels):
        scores = labels.astype(float)
        result = detection_latency(scores, labels, 0.5)
        assert result.delays == (0, 0)
        assert result.mean_delay == 0.0
        assert result.detection_rate == 1.0

    def test_delay_counted_from_window_start(self, labels):
        scores = np.zeros(300)
        scores[107] = 1.0  # 7 steps into the first window
        scores[200] = 1.0  # immediate for the second
        result = detection_latency(scores, labels, 0.5)
        assert result.delays == (7, 0)
        assert result.mean_delay == pytest.approx(3.5)

    def test_missed_window_excluded_from_delays(self, labels):
        scores = np.zeros(300)
        scores[105] = 1.0
        result = detection_latency(scores, labels, 0.5)
        assert result.n_detected == 1
        assert result.delays == (5,)
        assert result.detection_rate == 0.5

    def test_nothing_detected(self, labels):
        result = detection_latency(np.zeros(300), labels, 0.5)
        assert result.delays == ()
        assert np.isnan(result.mean_delay)
        assert result.detection_rate == 0.0

    def test_tolerance_counts_late_detection(self, labels):
        scores = np.zeros(300)
        scores[125] = 1.0  # 5 steps after the first window ends
        strict = detection_latency(scores, labels, 0.5, tolerance=0)
        lenient = detection_latency(scores, labels, 0.5, tolerance=10)
        assert strict.n_detected == 0
        assert lenient.n_detected == 1
        assert lenient.delays == (25,)  # larger than the window length

    def test_no_windows(self):
        result = detection_latency(np.ones(50), np.zeros(50, dtype=int), 0.5)
        assert result.n_windows == 0
        assert result.detection_rate == 0.0

    def test_validation(self, labels):
        with pytest.raises(ValueError):
            detection_latency(np.zeros(10), labels, 0.5)
        with pytest.raises(ValueError):
            detection_latency(np.zeros(300), labels, 0.5, tolerance=-1)

    def test_early_alarm_before_window_not_counted(self, labels):
        scores = np.zeros(300)
        scores[95] = 1.0  # before the first window starts
        result = detection_latency(scores, labels, 0.5)
        assert result.n_detected == 0
