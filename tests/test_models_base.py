"""Tests for the model base utilities: Standardizer, MinMaxScaler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import NotFittedError
from repro.models.base import MinMaxScaler, Standardizer, _as_windows


class TestStandardizer:
    def test_transform_standardizes(self, small_windows):
        scaler = Standardizer().fit(small_windows)
        flat = scaler.transform(small_windows).reshape(-1, small_windows.shape[-1])
        np.testing.assert_allclose(flat.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(flat.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_roundtrip(self, small_windows):
        scaler = Standardizer().fit(small_windows)
        recovered = scaler.inverse(scaler.transform(small_windows))
        np.testing.assert_allclose(recovered, small_windows, atol=1e-10)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            Standardizer().transform(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            Standardizer().inverse(np.zeros((2, 2)))

    def test_constant_channel_no_division_by_zero(self):
        windows = np.zeros((5, 4, 2))
        scaler = Standardizer().fit(windows)
        assert np.all(np.isfinite(scaler.transform(windows)))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            Standardizer().fit(np.zeros((4, 4)))


class TestMinMaxScaler:
    def test_transform_in_unit_interval(self, small_windows):
        scaler = MinMaxScaler().fit(small_windows)
        scaled = scaler.transform(small_windows)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_inverse_roundtrip_in_range(self, small_windows):
        scaler = MinMaxScaler(margin=0.0).fit(small_windows)
        recovered = scaler.inverse(scaler.transform(small_windows))
        np.testing.assert_allclose(recovered, small_windows, atol=1e-8)

    def test_out_of_range_clipped(self, small_windows):
        scaler = MinMaxScaler(margin=0.0).fit(small_windows)
        extreme = small_windows[0] + 1000.0
        assert scaler.transform(extreme).max() == 1.0

    def test_margin_gives_headroom(self, small_windows):
        scaler = MinMaxScaler(margin=0.5).fit(small_windows)
        scaled = scaler.transform(small_windows)
        # With margin, the data strictly inside (0, 1).
        assert scaled.min() > 0.0 and scaled.max() < 1.0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros(3))

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler(margin=-0.1)

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=8,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_always_unit_interval(self, values):
        usable = len(values) - len(values) % 4
        data = np.asarray(values[:usable], dtype=np.float64).reshape(-1, 2, 2)
        scaler = MinMaxScaler().fit(data)
        scaled = scaler.transform(data)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0


class TestAsWindows:
    def test_single_window_promoted(self):
        assert _as_windows(np.zeros((4, 2))).shape == (1, 4, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _as_windows(np.zeros((0, 4, 2)))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            _as_windows(np.zeros(4))
