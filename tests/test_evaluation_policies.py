"""Tests for threshold policies and the step-AUC integration."""

import numpy as np
import pytest

from repro.experiments import quantile_threshold
from repro.metrics import step_pr_auc


class TestQuantileThreshold:
    def test_flags_expected_fraction(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=10000)
        threshold = quantile_threshold(scores, 0.95)
        assert np.mean(scores >= threshold) == pytest.approx(0.05, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_threshold(np.array([]), 0.95)
        with pytest.raises(ValueError):
            quantile_threshold(np.ones(5), 1.0)
        with pytest.raises(ValueError):
            quantile_threshold(np.ones(5), 0.0)

    def test_constant_scores(self):
        threshold = quantile_threshold(np.full(100, 0.5), 0.95)
        assert threshold == pytest.approx(0.5)


class TestStepPRAUC:
    def test_perfect_single_jump(self):
        # One operating point reaches recall 1 at precision 1.
        assert step_pr_auc(np.array([0.0, 1.0]), np.array([1.0, 1.0])) == 1.0

    def test_all_positive_point_does_not_dominate(self):
        # A sharp detector gets recall 0.8 at precision 0.9; the trailing
        # degenerate point reaches recall 1 at "perfect" range precision.
        recalls = np.array([0.0, 0.8, 1.0])
        precisions = np.array([1.0, 0.9, 1.0])
        auc = step_pr_auc(recalls, precisions)
        assert auc == pytest.approx(0.8 * 0.9 + 0.2 * 1.0)

    def test_recall_regressions_ignored(self):
        # Range recall is not monotone in the threshold; regressions must
        # not subtract area.
        recalls = np.array([0.0, 0.6, 0.4, 0.8])
        precisions = np.array([1.0, 0.5, 0.9, 0.5])
        auc = step_pr_auc(recalls, precisions)
        assert auc == pytest.approx(0.6 * 0.5 + 0.2 * 0.5)

    def test_bounded_by_one(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            recalls = np.sort(rng.uniform(size=10))
            precisions = rng.uniform(size=10)
            assert 0.0 <= step_pr_auc(recalls, precisions) <= 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            step_pr_auc(np.zeros(3), np.zeros(4))


class TestKSWINAlphaCorrectionFlag:
    def test_uncorrected_fires_more(self):
        from repro.learning import KSWIN

        rng = np.random.default_rng(0)
        fired = {}
        for corrected in (True, False):
            detector = KSWIN(alpha=0.05, correct_alpha=corrected)
            detector.should_finetune(0, rng.normal(size=(30, 10, 3)))
            count = 0
            for t in range(1, 60):
                train = np.random.default_rng(t).normal(size=(30, 10, 3))
                if detector.should_finetune(t, train):
                    count += 1
                    detector.notify_finetuned(t, train)
            fired[corrected] = count
        assert fired[False] >= fired[True]
