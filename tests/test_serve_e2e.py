"""End-to-end service equivalence: served scores == offline run_stream.

The acceptance property of ``repro.serve``: scores returned by the
service — at any micro-batch size, through the JSON wire encoding, and
with at least one forced eviction/rehydration mid-stream — are bitwise
identical to an offline :func:`~repro.streaming.runner.run_stream` over
the same series.  The offline reference runs the chunked engine's
sequential reference (``batch_size=1``); the chunked engine is bitwise
invariant to block boundaries, which is exactly what makes the service's
micro-batch size a pure throughput knob.

Extends the registry slice and stream of
``tests/test_checkpoint_roundtrip.py`` so evict/rehydrate cycles cross
the same detector phases those cuts pin (warm-up, post-fit, post-drift).
"""

import threading

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.serve import (
    DetectionServer,
    DetectionService,
    ServeClient,
    ServeConfig,
    SocketServeClient,
)
from repro.streaming import run_stream

#: Same slice as tests/test_checkpoint_roundtrip.py — every model family
#: and both Task-2 drift detectors.
SPECS = [
    ("ae", "sw", "kswin"),
    ("online_arima", "sw", "musigma"),
    ("pcb_iforest", "sw", "kswin"),
    ("usad", "ares", "kswin"),
]

CONFIG = dict(
    window=6,
    train_capacity=24,
    fit_epochs=3,
    initial_train_size=40,
    kswin_check_every=1,
)


def make_stream(n=600, seed=3):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    values[n // 2 :] *= 2.5
    values[n // 2 :] += 1.0
    return values + rng.normal(scale=0.08, size=values.shape)


_OFFLINE_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def offline_reference(spec, values):
    """``run_stream`` over the same series (sequential chunked reference)."""
    key = (spec, len(values))
    if key not in _OFFLINE_CACHE:
        detector = build_detector(
            AlgorithmSpec(*spec), n_channels=2, config=DetectorConfig(**CONFIG)
        )
        series = TimeSeries(values=values, labels=np.zeros(len(values), dtype=int))
        result = run_stream(detector, series, batch_size=1)
        _OFFLINE_CACHE[key] = (result.scores, result.nonconformities)
    return _OFFLINE_CACHE[key]


def make_service(tmp_path, max_batch, **overrides):
    defaults = dict(
        max_sessions=1,
        spill_dir=str(tmp_path / "spill"),
        max_batch=max_batch,
        queue_limit=512,
        detector=DetectorConfig(**CONFIG),
    )
    defaults.update(overrides)
    return DetectionService(ServeConfig(**defaults), autostart=False)


@pytest.mark.parametrize("max_batch", [1, 7, 64])
@pytest.mark.parametrize("spec", SPECS, ids=["-".join(s) for s in SPECS])
def test_served_scores_bitwise_equal_offline(tmp_path, spec, max_batch):
    """Full wire round-trip + forced mid-stream eviction, any batch size."""
    values = make_stream()
    ref_scores, ref_nc = offline_reference(spec, values)

    service = make_service(tmp_path, max_batch)
    client = ServeClient(service)
    label = "+".join(spec)
    reply = client.create("s", spec=label, n_channels=2, config=CONFIG)
    assert reply["ok"], reply

    # Evict at 350: past the level shift at 300, so the spilled state
    # includes post-drift fine-tunes (the hardest state to round-trip).
    scores, nonconformities = client.score_series(
        "s", values, ingest_size=37, evict_at=350
    )

    assert np.array_equal(scores, ref_scores), (
        f"served scores diverge from offline run_stream for {label} "
        f"at max_batch={max_batch}"
    )
    assert np.array_equal(nonconformities, ref_nc)

    session = service.store.get("s")
    assert session.n_evictions >= 1, "the forced eviction never happened"
    assert session.n_rehydrations >= 1
    stats = client.stats()
    rollup = stats["rollup"]["counters"]
    assert rollup["sessions_evicted"] >= 1
    assert rollup["sessions_rehydrated"] >= 1
    assert rollup["points_scored"] == len(values)


def test_lru_thrash_across_sessions_stays_bitwise(tmp_path):
    """Interleaved streams under max_sessions=2 force repeated LRU
    evictions; every stream still matches its own offline reference."""
    specs = SPECS[:3]
    values = make_stream(n=420)
    service = make_service(tmp_path, max_batch=32, max_sessions=2)
    client = ServeClient(service)
    streams = []
    for index, spec in enumerate(specs):
        stream = f"s{index}"
        client.create(stream, spec="+".join(spec), n_channels=2, config=CONFIG)
        streams.append(stream)

    collected = {stream: {} for stream in streams}
    # Round-robin slices keep all three sessions alternately hot, so the
    # 2-slot store keeps spilling whichever stream went cold.
    for start in range(0, len(values), 60):
        block = values[start : start + 60]
        for stream in streams:
            reply = client.ingest(stream, block)
            assert reply["ok"], reply
            for result in client.score(stream, flush=True)["results"]:
                collected[stream][result["seq"]] = result

    total_evictions = 0
    for stream, spec in zip(streams, specs):
        by_seq = collected[stream]
        assert len(by_seq) == len(values)
        scores = np.array([by_seq[seq]["score"] for seq in range(len(values))])
        ref_scores, _ = offline_reference(spec, values)
        assert np.array_equal(scores, ref_scores), f"{stream} diverged"
        total_evictions += service.store.get(stream).n_evictions
    assert total_evictions >= 2, "LRU churn never evicted anything"


def test_tcp_server_round_trip(tmp_path):
    """The same property through a real socket: live drain thread,
    ThreadingTCPServer, forced eviction, stats and shutdown."""
    spec = SPECS[0]
    values = make_stream(n=400)
    ref_scores, ref_nc = offline_reference(spec, values)

    service = make_service(tmp_path, max_batch=16)  # autostart below
    service.scheduler.start()
    server = DetectionServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        with SocketServeClient(host, port) as client:
            assert client.ping()["ok"]
            reply = client.create(
                "tcp", spec="+".join(spec), n_channels=2, config=CONFIG
            )
            assert reply["ok"], reply
            scores, nonconformities = client.score_series(
                "tcp", values, ingest_size=50, evict_at=200, sleep=True
            )
            assert np.array_equal(scores, ref_scores)
            assert np.array_equal(nonconformities, ref_nc)
            stats = client.stats()
            assert stats["sessions"]["tcp"]["n_rehydrations"] >= 1
            summary = client.close("tcp")
            assert summary["n_points"] == len(values)
            assert client.shutdown()["ok"]
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "server thread failed to stop"
    finally:
        service.shutdown()
        server.server_close()
