"""Tests for PCB-iForest."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import PCBIForest


@pytest.fixture
def train_windows(rng):
    """Windows whose newest rows cluster around the origin."""
    points = rng.normal(size=(80, 3))
    return np.stack([np.tile(p, (6, 1)) for p in points])


class TestPCBIForest:
    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            PCBIForest(threshold=0.0)
        with pytest.raises(ConfigurationError):
            PCBIForest(threshold=1.0)

    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            PCBIForest().score(np.zeros((4, 3)))

    def test_score_in_unit_interval(self, train_windows):
        model = PCBIForest(n_trees=20, seed=0)
        model.fit(train_windows)
        score = model.score(train_windows[0])
        assert 0.0 < score < 1.0

    def test_outlier_scores_higher(self, train_windows, rng):
        model = PCBIForest(n_trees=40, seed=0)
        model.fit(train_windows)
        inlier = float(np.mean([model.score(w) for w in train_windows[:20]]))
        outlier_window = np.tile(np.array([10.0, 10.0, 10.0]), (6, 1))
        assert model.score(outlier_window) > inlier + 0.1

    def test_counters_update_on_score(self, train_windows):
        model = PCBIForest(n_trees=10, seed=0)
        model.fit(train_windows)
        assert np.all(model.performance_counters == 0)
        model.score(train_windows[0])
        assert np.any(model.performance_counters != 0)
        # Each tree moved by exactly +-1.
        assert set(np.abs(model.performance_counters)) <= {0, 1}

    def test_finetune_prunes_and_resets(self, train_windows):
        model = PCBIForest(n_trees=10, seed=0)
        model.fit(train_windows)
        for window in train_windows[:10]:
            model.score(window)
        model.finetune(train_windows)
        assert len(model.forest.trees) == 10  # replacements grown
        assert np.all(model.performance_counters == 0)

    def test_finetune_keeps_positive_trees(self, train_windows):
        model = PCBIForest(n_trees=10, seed=0)
        model.fit(train_windows)
        model.performance_counters[:] = -1
        model.performance_counters[3] = 5
        survivor = model.forest.trees[3]
        model.finetune(train_windows)
        assert model.forest.trees[0] is survivor

    def test_finetune_before_fit_raises(self, train_windows):
        with pytest.raises(NotFittedError):
            PCBIForest().finetune(train_windows)

    def test_accepts_bare_stream_vector(self, train_windows):
        model = PCBIForest(n_trees=10, seed=0)
        model.fit(train_windows)
        assert 0.0 < model.score(np.zeros(3)) < 1.0

    def test_prediction_kind(self):
        assert PCBIForest.prediction_kind == "score"

    def test_loss_is_mean_score(self, train_windows):
        model = PCBIForest(n_trees=10, seed=0)
        model.fit(train_windows)
        assert 0.0 < model.loss(train_windows) < 1.0
