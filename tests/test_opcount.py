"""Tests for the Table II operation-count formulas."""

import pytest

from repro.learning import kswin_ops, mu_sigma_ops


class TestMuSigmaOps:
    def test_formula_values(self):
        ops = mu_sigma_ops(m=100, w=100, n_channels=9)
        assert ops.additions == 6 * 9 * 100
        assert ops.multiplications == 2 * 9 * 100
        assert ops.comparisons == 3 * 9 * 100

    def test_independent_of_m(self):
        assert mu_sigma_ops(10, 50, 4) == mu_sigma_ops(1000, 50, 4)

    def test_linear_in_channels(self):
        small = mu_sigma_ops(10, 50, 2)
        large = mu_sigma_ops(10, 50, 4)
        assert large.additions == 2 * small.additions


class TestKSWINOps:
    def test_formula_values(self):
        ops = kswin_ops(m=100, w=100, n_channels=9)
        assert ops.additions == 2 * 9 * 100 * 100
        assert ops.multiplications == 2 * 9 * 100 * 100

    def test_comparisons_superlinear_in_m(self):
        small = kswin_ops(10, 100, 1)
        large = kswin_ops(100, 100, 1)
        assert large.comparisons > 10 * small.comparisons

    def test_kswin_dominates_musigma(self):
        # Table II's point: KSWIN costs far more per step.
        for m, w, n in [(50, 100, 9), (100, 100, 38), (200, 50, 4)]:
            assert kswin_ops(m, w, n).total > 10 * mu_sigma_ops(m, w, n).total

    def test_total(self):
        ops = kswin_ops(2, 2, 1)
        assert ops.total == ops.additions + ops.multiplications + ops.comparisons


class TestValidation:
    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_invalid_inputs(self, bad):
        with pytest.raises(ValueError):
            mu_sigma_ops(*bad)
        with pytest.raises(ValueError):
            kswin_ops(*bad)
