"""Tests for the corpus runner helper."""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.datasets import make_smd
from repro.experiments.table3 import Table3Config
from repro.streaming import run_corpus


class TestRunCorpus:
    def test_runs_every_series(self):
        corpus = make_smd(n_series=3, n_steps=500, clean_prefix=120, seed=0)
        config = DetectorConfig(window=8, train_capacity=24, fit_epochs=1)

        def factory(series):
            return build_detector(
                AlgorithmSpec("online_arima", "sw", "musigma"),
                series.n_channels,
                config,
            )

        result = run_corpus(factory, corpus)
        assert result.n_series == 3
        assert result.total_runtime_seconds > 0
        for stream_result in result:
            assert np.all(np.isfinite(stream_result.scores))

    def test_fresh_detector_per_series(self):
        corpus = make_smd(n_series=2, n_steps=400, clean_prefix=100, seed=1)
        built = []

        def factory(series):
            detector = build_detector(
                AlgorithmSpec("online_arima", "sw", "never"),
                series.n_channels,
                DetectorConfig(window=8, train_capacity=24, fit_epochs=1),
            )
            built.append(detector)
            return detector

        run_corpus(factory, corpus)
        assert len(built) == 2
        assert built[0] is not built[1]

    def test_empty_corpus(self):
        result = run_corpus(lambda s: None, [])
        assert result.n_series == 0
        assert result.total_finetunes == 0


class TestPaperScaleConfig:
    def test_paper_parameters(self):
        config = Table3Config.paper_scale()
        assert config.detector.window == 100
        assert config.clean_prefix == 5000
        assert config.detector.initial_train_size == 4900
        assert config.detector.kswin_check_every == 1
