"""Tests for the sensitivity-sweep harness."""

import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec
from repro.experiments import render_sweep, sweep_parameter


def tiny_base():
    return DetectorConfig(
        window=8,
        train_capacity=24,
        initial_train_size=100,
        fit_epochs=2,
        kswin_check_every=16,
        scorer_k=24,
        scorer_k_short=4,
    )


class TestSweepParameter:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown DetectorConfig field"):
            sweep_parameter("windowz", [8, 16])

    def test_sweep_returns_point_per_value(self):
        points = sweep_parameter(
            "train_capacity",
            [16, 32],
            spec=AlgorithmSpec("online_arima", "sw", "musigma"),
            n_steps=600,
            clean_prefix=130,
            base_config=tiny_base(),
        )
        assert [point.value for point in points] == [16, 32]
        for point in points:
            assert 0.0 <= point.metrics.auc <= 1.0
            assert point.runtime_seconds > 0

    def test_render(self):
        points = sweep_parameter(
            "window",
            [6, 10],
            spec=AlgorithmSpec("online_arima", "sw", "musigma"),
            n_steps=600,
            clean_prefix=130,
            base_config=tiny_base(),
        )
        text = render_sweep("window", points)
        assert "Sensitivity sweep: window" in text
        assert "AUC" in text

    def test_kswin_alpha_sweepable(self):
        points = sweep_parameter(
            "kswin_alpha",
            [0.001, 0.1],
            spec=AlgorithmSpec("ae", "sw", "kswin"),
            n_steps=600,
            clean_prefix=130,
            base_config=tiny_base(),
        )
        # A looser alpha cannot fine-tune less often.
        assert points[1].mean_finetunes >= points[0].mean_finetunes
