"""Sharded-fleet equivalence: routed scores == offline ``run_stream``.

The acceptance property of :mod:`repro.serve.router`: scores served
through the consistent-hash router over real worker *processes* are
bitwise identical to an offline sequential reference — through any mix
of live migrations between shards, a worker being hard-killed and
respawned mid-stream, and a latency-triggered rebalance.  The fleet adds
process boundaries, spill-file transfers and resume-``create`` on top of
the single-service path ``tests/test_serve_e2e.py`` pins; nothing in
that stack is allowed to perturb a single float.

Also pins the routing substrate (``HashRing`` determinism, balance and
minimal remapping on node loss), the session store's crash-recovery
surface (orphaned-spill sweep, spill-filename collision guard) and the
fleet ``stats`` rollup (union latency percentiles, summed counters).

These tests spawn real subprocesses; everything is kept small (short
streams, tiny detectors) so the whole module stays in tens of seconds.
"""

import time
from collections import Counter

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.exceptions import ReproError
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.serve import (
    HashRing,
    RouterConfig,
    RouterService,
    ServeClient,
    ServeConfig,
    SessionStore,
    SpillCollisionError,
)
from repro.serve import state as serve_state
from repro.streaming import run_stream

SPEC = ("ae", "sw", "kswin")

CONFIG = dict(
    window=6,
    train_capacity=24,
    fit_epochs=3,
    initial_train_size=40,
    kswin_check_every=1,
)


def make_stream(n=240, seed=3):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    values[n // 2 :] *= 2.5
    return values + rng.normal(scale=0.08, size=values.shape)


_OFFLINE_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def offline_reference(spec, values):
    key = (spec, len(values))
    if key not in _OFFLINE_CACHE:
        detector = build_detector(
            AlgorithmSpec(*spec), n_channels=2, config=DetectorConfig(**CONFIG)
        )
        series = TimeSeries(values=values, labels=np.zeros(len(values), dtype=int))
        result = run_stream(detector, series, batch_size=1)
        _OFFLINE_CACHE[key] = (result.scores, result.nonconformities)
    return _OFFLINE_CACHE[key]


@pytest.fixture
def fleet(tmp_path):
    """A 2-worker router fleet (torn down even when a test fails)."""

    def build(**overrides):
        defaults = dict(
            n_workers=2,
            spill_dir=str(tmp_path / "fleet"),
            worker=ServeConfig(
                max_delay_ms=5.0,
                max_batch=32,
                detector=DetectorConfig(**CONFIG),
            ),
        )
        defaults.update(overrides)
        router = RouterService(RouterConfig(**defaults))
        routers.append(router)
        return router

    routers: list[RouterService] = []
    try:
        yield build
    finally:
        for router in routers:
            router.shutdown()


def stream_through(
    client,
    stream,
    values,
    start_seq=0,
    ingest_size=50,
    action_at=None,
    action=None,
):
    """Ingest ``values`` and collect every score, in seq order.

    ``action`` (e.g. a migration, or killing a worker) fires once, after
    ``action_at`` points have been accepted.  ``start_seq`` aligns a
    continuation slice with the server's absolute sequence numbers.
    """
    n = len(values)
    by_seq: dict[int, dict] = {}
    sent = 0
    fired = action is None
    while len(by_seq) < n:
        if not fired and sent >= action_at:
            action()
            fired = True
        if sent < n:
            reply = client.ingest(stream, values[sent : sent + ingest_size])
            if reply.get("ok"):
                sent += reply["accepted"]
            else:
                error = reply.get("error", {})
                assert error.get("type") == "queue_full", reply
                time.sleep(float(error.get("retry_after", 0.01)))
        reply = client.score(stream, flush=True)
        assert reply.get("ok"), reply
        for result in reply["results"]:
            by_seq[result["seq"] - start_seq] = result
    scores = np.array([by_seq[i]["score"] for i in range(n)])
    nonconformities = np.array([by_seq[i]["nonconformity"] for i in range(n)])
    return scores, nonconformities


# ----------------------------------------------------------------------
# the hash ring
# ----------------------------------------------------------------------
def test_hash_ring_is_deterministic_and_balanced():
    nodes = [f"worker-{i}" for i in range(4)]
    ring = HashRing(nodes)
    keys = [f"stream-{i}" for i in range(2000)]
    owners = [ring.lookup(key) for key in keys]
    assert owners == [HashRing(nodes).lookup(key) for key in keys]
    share = Counter(owners)
    assert set(share) == set(nodes), "some node owns no keys"
    assert min(share.values()) > 0.5 * len(keys) / len(nodes), (
        f"load split too skewed: {share}"
    )


def test_hash_ring_remaps_only_the_lost_nodes_keys():
    nodes = [f"worker-{i}" for i in range(4)]
    before = HashRing(nodes)
    after = HashRing(nodes[:-1])
    keys = [f"stream-{i}" for i in range(2000)]
    moved = sum(
        1
        for key in keys
        if before.lookup(key) != "worker-3"
        and before.lookup(key) != after.lookup(key)
    )
    assert moved == 0, (
        f"{moved} keys not owned by the removed node were remapped"
    )


# ----------------------------------------------------------------------
# the store's crash-recovery surface
# ----------------------------------------------------------------------
def test_startup_sweep_reports_orphaned_spills(tmp_path):
    detector = build_detector(
        AlgorithmSpec(*SPEC), n_channels=2, config=DetectorConfig(**CONFIG)
    )
    store = SessionStore(tmp_path)
    session = store.create("crashed", detector, n_channels=2)
    path = store.evict(session)
    assert path.exists()

    reborn = SessionStore(tmp_path)  # same dir, fresh process in spirit
    assert reborn.orphaned_spills == [path]
    adopted = reborn.adopt("crashed", n_channels=2, seq=0)
    assert adopted.spill_path == path
    assert reborn.orphaned_spills == []


def test_adopt_without_a_spill_is_refused(tmp_path):
    store = SessionStore(tmp_path)
    with pytest.raises(ReproError, match="no spill checkpoint"):
        store.adopt("never-spilled", n_channels=2, seq=0)


def test_spill_filename_collision_is_refused(tmp_path, monkeypatch):
    monkeypatch.setattr(
        serve_state, "spill_filename", lambda stream_id: "session-same.ckpt"
    )
    detector = build_detector(
        AlgorithmSpec(*SPEC), n_channels=2, config=DetectorConfig(**CONFIG)
    )
    store = SessionStore(tmp_path)
    store.create("first", detector, n_channels=2)
    with pytest.raises(SpillCollisionError, match="refusing to share"):
        store.create("second", None, n_channels=2)


# ----------------------------------------------------------------------
# the fleet
# ----------------------------------------------------------------------
def test_routed_scores_bitwise_equal_offline_through_migration(fleet):
    """Half the stream on one shard, a live migration, the rest on the
    other — every score identical to the never-migrated offline run."""
    values = make_stream()
    ref_scores, ref_nc = offline_reference(SPEC, values)
    router = fleet()
    client = ServeClient(router)

    reply = client.create("mig", spec="+".join(SPEC), n_channels=2)
    assert reply.get("ok"), reply
    source = reply["worker"]
    target = 1 - source
    cut = len(values) // 2

    s1, n1 = stream_through(client, "mig", values[:cut])
    outcome = router.migrate("mig", target)
    assert outcome["moved"] and outcome["seq"] == cut
    assert router.owner_of("mig") == target
    s2, n2 = stream_through(client, "mig", values[cut:], start_seq=cut)

    assert np.array_equal(np.concatenate([s1, s2]), ref_scores)
    assert np.array_equal(np.concatenate([n1, n2]), ref_nc)
    assert router.telemetry.counters.get("sessions_migrated") == 1

    # A no-op migration (already on the target) is reported, not done.
    assert router.migrate("mig", target) == {
        "stream": "mig", "from": target, "to": target, "moved": False,
    }


def test_mid_stream_migration_under_ingest_pressure(fleet):
    """Migration injected *between* ingest slices of one client loop —
    the realistic shape, with buffered results crossing the move."""
    values = make_stream()
    ref_scores, _ = offline_reference(SPEC, values)
    router = fleet()
    client = ServeClient(router)
    reply = client.create("hot", spec="+".join(SPEC), n_channels=2)
    target = 1 - reply["worker"]

    scores, _ = stream_through(
        client,
        "hot",
        values,
        ingest_size=37,
        action_at=len(values) // 3,
        action=lambda: router.migrate("hot", target),
    )
    assert np.array_equal(scores, ref_scores)
    assert router.owner_of("hot") == target


def test_worker_kill_and_respawn_recovers_from_spill(fleet):
    """Hard-kill the owning worker after a spill; the next request
    respawns it, re-homes the stream, and scores stay bitwise equal."""
    values = make_stream()
    ref_scores, _ = offline_reference(SPEC, values)
    router = fleet()
    client = ServeClient(router)
    reply = client.create("frag", spec="+".join(SPEC), n_channels=2)
    owner = reply["worker"]
    cut = len(values) // 2

    s1, _ = stream_through(client, "frag", values[:cut])
    assert client.evict("frag").get("ok")  # durability point
    router.workers[owner].kill()
    assert not router.workers[owner].alive()

    s2, _ = stream_through(client, "frag", values[cut:], start_seq=cut)
    assert np.array_equal(np.concatenate([s1, s2]), ref_scores)
    assert router.workers[owner].alive()
    assert router.workers[owner].respawns == 1
    counters = router.telemetry.counters
    assert counters.get("workers_respawned") == 1
    assert counters.get("streams_recovered") == 1
    assert "streams_restarted" not in counters


def test_latency_rebalance_migrates_off_the_hot_shard(fleet):
    """With a sub-nanosecond p99 threshold every loaded shard is hot;
    ``check_rebalance`` moves the stream to the empty shard and the
    stream keeps scoring bitwise-correctly there."""
    values = make_stream()
    ref_scores, _ = offline_reference(SPEC, values)
    router = fleet(hot_p99_s=1e-9, rebalance_max_moves=1)
    client = ServeClient(router)
    reply = client.create("busy", spec="+".join(SPEC), n_channels=2)
    source = reply["worker"]
    cut = len(values) // 2

    s1, _ = stream_through(client, "busy", values[:cut])
    outcome = router.check_rebalance()
    assert outcome["moved"] == ["busy"] and source in outcome["hot"]
    assert router.owner_of("busy") == 1 - source

    s2, _ = stream_through(client, "busy", values[cut:], start_seq=cut)
    assert np.array_equal(np.concatenate([s1, s2]), ref_scores)
    assert router.telemetry.counters.get("rebalances") == 1


def test_fleet_stats_rollup_merges_workers(fleet):
    """Counters sum across shards and the fleet ingest-latency
    percentiles come from the union of the sessions' samples."""
    values = make_stream(n=120)
    router = fleet()
    client = ServeClient(router)
    streams = [f"stat-{i}" for i in range(4)]
    owners = set()
    for stream in streams:
        reply = client.create(stream, spec="+".join(SPEC), n_channels=2)
        assert reply.get("ok"), reply
        owners.add(reply["worker"])
        stream_through(client, stream, values)
    assert owners == {0, 1}, "pick stream ids that land on both shards"

    stats = client.stats()
    assert stats["n_workers"] == 2 and stats["n_sessions"] == 4
    assert set(stats["sessions"]) == set(streams)
    assert {block["worker"] for block in stats["workers"]} == {0, 1}
    total = len(values) * len(streams)
    assert stats["rollup"]["counters"]["points_scored"] == total
    merged = stats["ingest_latency"]
    assert merged["count"] == total
    assert 0.0 < merged["p50"] <= merged["p99"] <= merged["max"]
    # Raw windows stay out of the reply unless explicitly requested.
    assert "latency_window" not in next(iter(stats["sessions"].values()))


def test_router_error_paths(fleet):
    router = fleet()
    client = ServeClient(router)
    reply = client.ingest("ghost", [[0.0, 0.0]])
    assert not reply.get("ok") and reply["error"]["type"] == "unknown_stream"

    assert client.create("dup", spec="+".join(SPEC), n_channels=2).get("ok")
    reply = client.create("dup", spec="+".join(SPEC), n_channels=2)
    assert not reply.get("ok") and reply["error"]["type"] == "duplicate_stream"

    with pytest.raises(ReproError, match="out of range"):
        router.migrate("dup", 7)


def test_queue_full_propagates_through_the_router(fleet):
    """Admission control is per-shard: the owning worker's queue bound
    surfaces to the client as queue_full + retry_after, untouched."""
    router = fleet(
        worker=ServeConfig(
            max_delay_ms=1000.0,
            queue_limit=2,
            detector=DetectorConfig(**CONFIG),
        )
    )
    client = ServeClient(router)
    assert client.create("tight", spec="+".join(SPEC), n_channels=2).get("ok")
    reply = client.ingest("tight", [[0.0, 0.0]] * 5)  # batch > queue bound
    assert not reply.get("ok"), reply
    error = reply["error"]
    assert error["type"] == "queue_full"
    assert float(error["retry_after"]) > 0.0
