"""Tests for parameter-sharing module copies (used by USAD)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.share import shared_copy, unique_parameters


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSharedCopy:
    def test_parameters_are_shared_instances(self, rng):
        net = nn.Sequential(nn.Linear(3, 4, rng), nn.ReLU(), nn.Linear(4, 3, rng))
        copy = shared_copy(net)
        originals = list(net.parameters())
        copies = list(copy.parameters())
        assert len(originals) == len(copies)
        for a, b in zip(originals, copies):
            assert a is b

    def test_forward_caches_are_independent(self, rng):
        layer = nn.Linear(2, 2, rng)
        twin = shared_copy(layer)
        x1 = rng.normal(size=(1, 2))
        x2 = rng.normal(size=(1, 2))
        layer(x1)
        twin(x2)
        # Backward through the original must use x1's cache, not x2's.
        layer.zero_grad()
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.weight.grad, x1.T @ np.ones((1, 2)))

    def test_gradients_accumulate_across_copies(self, rng):
        layer = nn.Linear(2, 2, rng)
        twin = shared_copy(layer)
        x = rng.normal(size=(1, 2))
        layer(x)
        twin(x)
        layer.zero_grad()
        layer.backward(np.ones((1, 2)))
        twin.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * (x.T @ np.ones((1, 2))))

    def test_unsupported_module_rejected(self):
        class Custom(nn.Module):
            pass

        with pytest.raises(TypeError):
            shared_copy(Custom())

    def test_shared_forward_identical(self, rng):
        net = nn.Sequential(nn.Linear(3, 3, rng), nn.Sigmoid())
        copy = shared_copy(net)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(net(x), copy(x))


class TestUniqueParameters:
    def test_deduplicates_shared(self, rng):
        net = nn.Sequential(nn.Linear(2, 2, rng))
        twin = shared_copy(net)
        params = unique_parameters(net, twin)
        assert len(params) == 2  # weight + bias, once

    def test_distinct_modules_kept(self, rng):
        a = nn.Sequential(nn.Linear(2, 2, rng))
        b = nn.Sequential(nn.Linear(2, 2, rng))
        assert len(unique_parameters(a, b)) == 4
