"""Tests for the Online ARIMA model."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import OnlineARIMA, difference


class TestDifference:
    def test_zero_order_identity(self):
        series = np.arange(5.0)
        np.testing.assert_array_equal(difference(series, 0), series)

    def test_first_order(self):
        np.testing.assert_array_equal(
            difference(np.array([1.0, 3.0, 6.0]), 1), [2.0, 3.0]
        )

    def test_second_order_kills_linear_trend(self):
        trend = 2.0 * np.arange(10.0) + 5.0
        np.testing.assert_allclose(difference(trend, 2), np.zeros(8))

    def test_multichannel(self):
        series = np.stack([np.arange(5.0), np.arange(5.0) * 2], axis=1)
        diffed = difference(series, 1)
        assert diffed.shape == (4, 2)
        np.testing.assert_allclose(diffed[:, 1], 2.0)


def windows_from(series, w):
    return np.stack([series[i : i + w] for i in range(series.shape[0] - w)])


class TestOnlineARIMA:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            OnlineARIMA(window=3, d=2)  # lags would be 0
        with pytest.raises(ConfigurationError):
            OnlineARIMA(window=10, d=-1)
        with pytest.raises(ConfigurationError):
            OnlineARIMA(window=10, lr=0.0)

    def test_predict_before_fit_raises(self):
        model = OnlineARIMA(window=8)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((8, 1)))

    def test_wrong_window_rejected(self):
        model = OnlineARIMA(window=8)
        model.fit(np.zeros((3, 8, 1)) + np.arange(8.0)[None, :, None])
        with pytest.raises(ConfigurationError):
            model.predict(np.zeros((9, 1)))

    def test_learns_linear_trend(self):
        # With d=1 a linear trend has constant differences; gamma should
        # learn to predict that constant.
        t = np.arange(300, dtype=np.float64)
        series = (3.0 * t)[:, None]
        w = 10
        model = OnlineARIMA(window=w, d=1, lr=0.05)
        model.fit(windows_from(series, w), epochs=30)
        window = series[100 : 100 + w]
        prediction = model.predict(window)
        assert prediction[0] == pytest.approx(series[100 + w - 1, 0], rel=0.05)

    def test_learns_ar_process(self):
        rng = np.random.default_rng(0)
        n = 1000
        series = np.zeros(n)
        for t in range(2, n):
            series[t] = 0.6 * series[t - 1] - 0.3 * series[t - 2] + rng.normal(scale=0.1)
        w = 12
        windows = windows_from(series[:, None], w)
        model = OnlineARIMA(window=w, d=0, lr=0.05)
        model.fit(windows, epochs=10)
        errors = []
        for window in windows[-100:]:
            errors.append(abs(model.predict(window)[0] - window[-1, 0]))
        # Prediction error should approach the noise floor.
        assert np.mean(errors) < 0.3

    def test_multichannel_shared_coefficients(self):
        t = np.arange(200, dtype=np.float64)
        series = np.stack([np.sin(t / 10), np.sin(t / 10 + 1.0)], axis=1)
        w = 12
        model = OnlineARIMA(window=w, d=1, lr=0.05)
        model.fit(windows_from(series, w), epochs=20)
        prediction = model.predict(series[50 : 50 + w])
        assert prediction.shape == (2,)
        np.testing.assert_allclose(prediction, series[50 + w - 1], atol=0.2)

    def test_finetune_continues_learning(self):
        t = np.arange(300, dtype=np.float64)
        series = (2.0 * t)[:, None]
        w = 10
        windows = windows_from(series, w)
        model = OnlineARIMA(window=w, d=1, lr=0.02)
        model.fit(windows[:50], epochs=2)
        gamma_before = model.gamma.copy()
        model.finetune(windows[50:100], epochs=2)
        assert not np.allclose(model.gamma, gamma_before)

    def test_gradient_clipping_keeps_finite(self):
        rng = np.random.default_rng(1)
        # Badly scaled data should not blow up the coefficients.
        series = rng.normal(scale=1e6, size=(200, 1))
        w = 10
        model = OnlineARIMA(window=w, d=0, lr=0.5)
        model.fit(windows_from(series, w), epochs=3)
        assert np.all(np.isfinite(model.gamma))

    def test_lag_count_relation(self):
        # The paper's constraint w = lags + d + 1.
        model = OnlineARIMA(window=20, d=2)
        assert model.lags == 20 - 1 - 2
