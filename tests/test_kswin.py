"""Tests for the KSWIN drift detector and the KS statistic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.learning import KSWIN, ks_critical_value, ks_statistic

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestKSStatistic:
    @given(
        st.lists(floats, min_size=1, max_size=100),
        st.lists(floats, min_size=1, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, a, b):
        ours = ks_statistic(np.asarray(a), np.asarray(b))
        scipy_stat = stats.ks_2samp(a, b).statistic
        assert ours == pytest.approx(scipy_stat, abs=1e-12)

    def test_identical_samples_zero(self):
        sample = np.arange(50.0)
        assert ks_statistic(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic(np.zeros(10), np.ones(10) * 5) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.array([1.0]))

    @given(
        st.lists(floats, min_size=1, max_size=50),
        st.lists(floats, min_size=1, max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetric_and_bounded(self, a, b):
        d1 = ks_statistic(np.asarray(a), np.asarray(b))
        d2 = ks_statistic(np.asarray(b), np.asarray(a))
        assert d1 == pytest.approx(d2)
        assert 0.0 <= d1 <= 1.0


class TestCriticalValue:
    def test_decreases_with_sample_size(self):
        small = ks_critical_value(0.05, 20, 20)
        large = ks_critical_value(0.05, 2000, 2000)
        assert large < small

    def test_decreases_with_alpha(self):
        strict = ks_critical_value(0.001, 100, 100)
        loose = ks_critical_value(0.1, 100, 100)
        assert strict > loose

    def test_paper_form_more_conservative(self):
        standard = ks_critical_value(0.05, 100, 100, form="standard")
        paper = ks_critical_value(0.05, 100, 100, form="paper")
        assert paper == pytest.approx(standard * np.sqrt(2.0))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ks_critical_value(0.0, 10, 10)
        with pytest.raises(ValueError):
            ks_critical_value(0.05, 0, 10)
        with pytest.raises(ValueError):
            ks_critical_value(0.05, 10, 10, form="nonsense")

    def test_controls_false_positives(self):
        # Two same-distribution samples should rarely exceed the critical
        # value at alpha = 0.01.
        rng = np.random.default_rng(0)
        rejections = 0
        trials = 200
        for _ in range(trials):
            a = rng.normal(size=100)
            b = rng.normal(size=100)
            if ks_statistic(a, b) > ks_critical_value(0.01, 100, 100):
                rejections += 1
        assert rejections / trials < 0.05


class TestKSWINDetector:
    def _train_set(self, rng, m=20, w=8, n=3, shift=0.0):
        return rng.normal(loc=shift, size=(m, w, n))

    def test_first_call_installs_reference(self, rng):
        detector = KSWIN()
        train = self._train_set(rng)
        assert not detector.should_finetune(0, train)

    def test_no_drift_no_fire(self, rng):
        detector = KSWIN(alpha=0.005)
        reference = self._train_set(rng)
        detector.should_finetune(0, reference)
        fired = sum(
            detector.should_finetune(t, self._train_set(rng)) for t in range(1, 20)
        )
        assert fired == 0

    def test_fires_on_mean_shift(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng))
        assert detector.should_finetune(1, self._train_set(rng, shift=5.0))

    def test_notify_updates_reference(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng))
        shifted = self._train_set(rng, shift=5.0)
        assert detector.should_finetune(1, shifted)
        detector.notify_finetuned(1, shifted)
        assert not detector.should_finetune(2, self._train_set(rng, shift=5.0))

    def test_check_every_skips_steps(self, rng):
        detector = KSWIN(check_every=5)
        detector.should_finetune(0, self._train_set(rng))
        shifted = self._train_set(rng, shift=5.0)
        assert not detector.should_finetune(3, shifted)  # 3 % 5 != 0
        assert detector.should_finetune(5, shifted)

    def test_two_dimensional_training_set_supported(self, rng):
        detector = KSWIN()
        flat = rng.normal(size=(30, 4))
        detector.should_finetune(0, flat)
        assert detector.should_finetune(1, flat + 5.0)

    def test_channel_count_change_rejected(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng, n=3))
        with pytest.raises(ValueError):
            detector.should_finetune(1, self._train_set(rng, n=4))

    def test_counts_operations(self, rng):
        detector = KSWIN()
        train = self._train_set(rng)
        detector.should_finetune(0, train)
        detector.should_finetune(1, train)
        assert detector.ops.comparisons > 0

    def test_reset_clears_reference(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng))
        detector.reset()
        assert not detector.should_finetune(0, self._train_set(rng, shift=5.0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KSWIN(alpha=0.0)
        with pytest.raises(ValueError):
            KSWIN(check_every=0)

    def test_single_channel_drift_detected(self, rng):
        # Drift confined to one of several channels must still fire.
        detector = KSWIN()
        reference = self._train_set(rng, n=4)
        detector.should_finetune(0, reference)
        drifted = self._train_set(rng, n=4)
        drifted[:, :, 2] += 5.0
        assert detector.should_finetune(1, drifted)
