"""Tests for the KSWIN drift detector and the KS statistic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.learning import (
    KSWIN,
    AnomalyAwareReservoir,
    SlidingWindow,
    UniformReservoir,
    ks_critical_value,
    ks_statistic,
    ks_statistic_sorted,
    kswin_incremental_ops,
    kswin_ops,
)

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestKSStatistic:
    @given(
        st.lists(floats, min_size=1, max_size=100),
        st.lists(floats, min_size=1, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, a, b):
        ours = ks_statistic(np.asarray(a), np.asarray(b))
        scipy_stat = stats.ks_2samp(a, b).statistic
        assert ours == pytest.approx(scipy_stat, abs=1e-12)

    def test_identical_samples_zero(self):
        sample = np.arange(50.0)
        assert ks_statistic(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic(np.zeros(10), np.ones(10) * 5) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.array([1.0]))

    @given(
        st.lists(floats, min_size=1, max_size=50),
        st.lists(floats, min_size=1, max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetric_and_bounded(self, a, b):
        d1 = ks_statistic(np.asarray(a), np.asarray(b))
        d2 = ks_statistic(np.asarray(b), np.asarray(a))
        assert d1 == pytest.approx(d2)
        assert 0.0 <= d1 <= 1.0


class TestCriticalValue:
    def test_decreases_with_sample_size(self):
        small = ks_critical_value(0.05, 20, 20)
        large = ks_critical_value(0.05, 2000, 2000)
        assert large < small

    def test_decreases_with_alpha(self):
        strict = ks_critical_value(0.001, 100, 100)
        loose = ks_critical_value(0.1, 100, 100)
        assert strict > loose

    def test_paper_form_more_conservative(self):
        standard = ks_critical_value(0.05, 100, 100, form="standard")
        paper = ks_critical_value(0.05, 100, 100, form="paper")
        assert paper == pytest.approx(standard * np.sqrt(2.0))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ks_critical_value(0.0, 10, 10)
        with pytest.raises(ValueError):
            ks_critical_value(0.05, 0, 10)
        with pytest.raises(ValueError):
            ks_critical_value(0.05, 10, 10, form="nonsense")

    def test_controls_false_positives(self):
        # Two same-distribution samples should rarely exceed the critical
        # value at alpha = 0.01.
        rng = np.random.default_rng(0)
        rejections = 0
        trials = 200
        for _ in range(trials):
            a = rng.normal(size=100)
            b = rng.normal(size=100)
            if ks_statistic(a, b) > ks_critical_value(0.01, 100, 100):
                rejections += 1
        assert rejections / trials < 0.05


class TestKSWINDetector:
    def _train_set(self, rng, m=20, w=8, n=3, shift=0.0):
        return rng.normal(loc=shift, size=(m, w, n))

    def test_first_call_installs_reference(self, rng):
        detector = KSWIN()
        train = self._train_set(rng)
        assert not detector.should_finetune(0, train)

    def test_no_drift_no_fire(self, rng):
        detector = KSWIN(alpha=0.005)
        reference = self._train_set(rng)
        detector.should_finetune(0, reference)
        fired = sum(
            detector.should_finetune(t, self._train_set(rng)) for t in range(1, 20)
        )
        assert fired == 0

    def test_fires_on_mean_shift(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng))
        assert detector.should_finetune(1, self._train_set(rng, shift=5.0))

    def test_notify_updates_reference(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng))
        shifted = self._train_set(rng, shift=5.0)
        assert detector.should_finetune(1, shifted)
        detector.notify_finetuned(1, shifted)
        assert not detector.should_finetune(2, self._train_set(rng, shift=5.0))

    def test_check_every_skips_steps(self, rng):
        detector = KSWIN(check_every=5)
        detector.should_finetune(0, self._train_set(rng))
        shifted = self._train_set(rng, shift=5.0)
        assert not detector.should_finetune(3, shifted)  # 3 % 5 != 0
        assert detector.should_finetune(5, shifted)

    def test_two_dimensional_training_set_supported(self, rng):
        detector = KSWIN()
        flat = rng.normal(size=(30, 4))
        detector.should_finetune(0, flat)
        assert detector.should_finetune(1, flat + 5.0)

    def test_channel_count_change_rejected(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng, n=3))
        with pytest.raises(ValueError):
            detector.should_finetune(1, self._train_set(rng, n=4))

    def test_counts_operations(self, rng):
        detector = KSWIN()
        train = self._train_set(rng)
        detector.should_finetune(0, train)
        detector.should_finetune(1, train)
        assert detector.ops.comparisons > 0

    def test_reset_clears_reference(self, rng):
        detector = KSWIN()
        detector.should_finetune(0, self._train_set(rng))
        detector.reset()
        assert not detector.should_finetune(0, self._train_set(rng, shift=5.0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KSWIN(alpha=0.0)
        with pytest.raises(ValueError):
            KSWIN(check_every=0)

    def test_single_channel_drift_detected(self, rng):
        # Drift confined to one of several channels must still fire.
        detector = KSWIN()
        reference = self._train_set(rng, n=4)
        detector.should_finetune(0, reference)
        drifted = self._train_set(rng, n=4)
        drifted[:, :, 2] += 5.0
        assert detector.should_finetune(1, drifted)


class TestKSStatisticSorted:
    @given(
        st.lists(floats, min_size=1, max_size=80),
        st.lists(floats, min_size=1, max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_bitwise_equal_to_unsorted(self, a, b):
        a = np.asarray(a)
        b = np.asarray(b)
        assert ks_statistic_sorted(np.sort(a), np.sort(b)) == ks_statistic(a, b)


def _drive(detector, strategy, stream):
    """Run one detector over a Task-1 update stream; return its decisions.

    Checks start once the training set is full, as in the real pipeline —
    a reference snapshotted from a near-empty set makes the corrected
    critical value exceed 1 and the detector can never fire.
    """
    decisions = []
    for t, x in enumerate(stream):
        update = strategy.update(x, score=float(abs(x).mean()))
        detector.observe(update, t)
        train_set = strategy.training_set()
        if not strategy.is_full:
            decisions.append(False)
            continue
        fired = detector.should_finetune(t, train_set)
        decisions.append(fired)
        if fired:
            detector.notify_finetuned(t, train_set)
    return decisions


def _make_strategy(name, capacity, seed):
    if name == "sw":
        return SlidingWindow(capacity)
    if name == "ur":
        return UniformReservoir(capacity, rng=np.random.default_rng(seed))
    return AnomalyAwareReservoir(capacity, rng=np.random.default_rng(seed))


class TestKSWINIncremental:
    """The incremental sorted-window path must make the exact decisions of
    the batch path on the same update stream — including through drift,
    fine-tuning resets, and the reservoirs' replace-by-random-slot churn."""

    @pytest.mark.parametrize("strategy_name", ["sw", "ur", "ar"])
    @pytest.mark.parametrize("shape", [(6, 3), (8,)])
    def test_decisions_identical_to_batch(self, strategy_name, shape):
        rng = np.random.default_rng(11)
        stream = [
            rng.normal(size=shape) + (3.0 if t > 120 else 0.0) for t in range(220)
        ]
        batch = _drive(
            KSWIN(incremental=False), _make_strategy(strategy_name, 24, 5), stream
        )
        incremental = _drive(
            KSWIN(incremental=True), _make_strategy(strategy_name, 24, 5), stream
        )
        assert incremental == batch
        if strategy_name == "sw":
            # The sliding window fully turns over after the shift, so the
            # drift/fire/notify branch is actually exercised; the
            # reservoirs dilute the drift and may legitimately stay quiet.
            assert sum(batch) > 0

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=5, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_random_insert_evict_sequences(self, value_stream):
        # Heavily tied integer values stress the delete-by-value slot
        # arithmetic (equal elements occupy consecutive sorted positions).
        stream = [
            np.asarray([float(v), float((v * 7) % 5)]) for v in value_stream
        ]
        batch = _drive(KSWIN(incremental=False), SlidingWindow(6), stream)
        incremental = _drive(KSWIN(incremental=True), SlidingWindow(6), stream)
        assert incremental == batch

    def test_sorted_pools_mirror_training_set(self):
        rng = np.random.default_rng(2)
        strategy = SlidingWindow(10)
        detector = KSWIN(incremental=True)
        for t in range(40):
            update = strategy.update(rng.normal(size=(4, 2)))
            detector.observe(update, t)
            detector.should_finetune(t, strategy.training_set())
        pooled = KSWIN._per_channel(strategy.training_set())
        assert detector._current_sorted is not None
        for channel in range(pooled.shape[0]):
            assert np.array_equal(
                detector._current_sorted[channel], np.sort(pooled[channel])
            )

    def test_without_observe_falls_back_to_batch(self, rng):
        # Direct should_finetune calls (as the Table II benchmark makes)
        # never build incremental state, and keep working.
        detector = KSWIN(incremental=True)
        detector.should_finetune(0, rng.normal(size=(20, 8, 3)))
        assert detector._current_sorted is None
        assert detector.should_finetune(1, rng.normal(loc=5.0, size=(20, 8, 3)))

    def test_desync_falls_back_to_batch(self, rng):
        # If the training set the detector is asked about does not match
        # the observed stream (size mismatch), the batch path answers.
        strategy = SlidingWindow(8)
        detector = KSWIN(incremental=True)
        for t in range(12):
            detector.observe(strategy.update(rng.normal(size=(4, 2))), t)
        detector.should_finetune(0, rng.normal(size=(30, 4, 2)))
        assert detector.should_finetune(1, rng.normal(loc=5.0, size=(30, 4, 2)))

    def test_incremental_counts_fewer_comparisons(self, rng):
        stream = [rng.normal(size=(6, 2)) for _ in range(80)]
        batch_det = KSWIN(incremental=False)
        incr_det = KSWIN(incremental=True)
        _drive(batch_det, SlidingWindow(16), stream)
        _drive(incr_det, SlidingWindow(16), stream)
        assert incr_det.ops.comparisons < batch_det.ops.comparisons

    def test_reset_clears_incremental_state(self, rng):
        strategy = SlidingWindow(8)
        detector = KSWIN(incremental=True)
        for t in range(10):
            detector.observe(strategy.update(rng.normal(size=(4, 2))), t)
        assert detector._current_sorted is not None
        detector.reset()
        assert detector._current_sorted is None
        assert detector._reference_sorted is None


class TestIncrementalOpFormula:
    def test_cheaper_than_batch_formula(self):
        batch = kswin_ops(m=100, w=50, n_channels=5)
        incremental = kswin_incremental_ops(m=100, w=50, n_channels=5)
        assert incremental.comparisons < batch.comparisons
        assert incremental.additions == batch.additions
        assert incremental.multiplications == batch.multiplications

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            kswin_incremental_ops(0, 10, 1)
