"""Tests for the USAD adversarial autoencoder."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import USAD


@pytest.fixture
def many_windows(rng):
    """A realistically sized training set: 150 windows of a periodic signal."""
    t = np.arange(400, dtype=np.float64)
    base = np.stack(
        [
            np.sin(2 * np.pi * t / 25.0),
            np.cos(2 * np.pi * t / 25.0),
            0.5 * np.sin(2 * np.pi * t / 50.0),
        ],
        axis=1,
    )
    base += rng.normal(scale=0.05, size=base.shape)
    return np.stack([base[i : i + 8] for i in range(150)])


class TestUSAD:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            USAD(window=0, n_channels=2)
        with pytest.raises(ConfigurationError):
            USAD(window=4, n_channels=2, blend=1.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            USAD(window=4, n_channels=2).predict(np.zeros((4, 2)))

    def test_reconstructions_bounded(self, small_windows):
        # Sigmoid decoders + min-max scaling keep the adversarial game
        # bounded: reconstructions must stay within the scaler's range.
        model = USAD(window=8, n_channels=3, epochs=20, seed=0)
        model.fit(small_windows)
        w1, w3 = model.reconstructions(small_windows[0] + 50.0)
        low, high = model.scaler.low, model.scaler.low + model.scaler.span
        assert np.all(w1 >= low - 1e-9) and np.all(w1 <= high + 1e-9)
        assert np.all(w3 >= low - 1e-9) and np.all(w3 <= high + 1e-9)

    def test_reconstruction_quality(self, many_windows):
        model = USAD(window=8, n_channels=3, epochs=80, seed=0)
        model.fit(many_windows)
        window = many_windows[10]
        w1, _ = model.reconstructions(window)
        correlation = np.corrcoef(window.ravel(), w1.ravel())[0, 1]
        assert correlation > 0.6

    def test_usad_score_higher_for_anomalous_window(self, many_windows):
        model = USAD(window=8, n_channels=3, epochs=60, seed=0)
        model.fit(many_windows)
        normal = many_windows[5]
        anomalous = normal.copy()
        anomalous[4:] += 5.0
        assert model.usad_score(anomalous) > model.usad_score(normal)

    def test_blend_extremes(self, small_windows):
        model = USAD(window=8, n_channels=3, epochs=10, seed=0, blend=0.0)
        model.fit(small_windows)
        w1, _ = model.reconstructions(small_windows[0])
        np.testing.assert_allclose(model.predict(small_windows[0]), w1)

    def test_lifetime_epoch_advances_adversarial_weight(self, small_windows):
        model = USAD(window=8, n_channels=3, seed=0)
        model.fit(small_windows, epochs=3)
        assert model._lifetime_epoch == 3
        model.finetune(small_windows, epochs=2)
        assert model._lifetime_epoch == 5

    def test_wrong_shape_rejected(self, small_windows):
        model = USAD(window=8, n_channels=3, epochs=1)
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((4, 7, 3)))

    def test_parameters_shared_between_copies(self, small_windows):
        model = USAD(window=8, n_channels=3, epochs=1, seed=0)
        for original, copy in zip(
            model.encoder.parameters(), model._encoder_b.parameters()
        ):
            assert original is copy

    def test_loss_finite_through_training(self, small_windows):
        model = USAD(window=8, n_channels=3, seed=0)
        loss = model.fit(small_windows, epochs=30)
        assert np.isfinite(loss)
        for param in model.encoder.parameters():
            assert np.all(np.isfinite(param.value))
