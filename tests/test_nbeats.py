"""Tests for the N-BEATS forecaster and its basis expansions."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import NBeats, seasonality_basis, trend_basis


def windows_from(series, w):
    return np.stack([series[i : i + w] for i in range(series.shape[0] - w)])


class TestBases:
    def test_trend_basis_shape(self):
        basis = trend_basis(theta_per_channel=3, length=10, n_channels=2)
        assert basis.shape == (6, 20)

    def test_trend_basis_rows_are_polynomials(self):
        basis = trend_basis(theta_per_channel=3, length=4, n_channels=1)
        grid = np.arange(4) / 4
        np.testing.assert_allclose(basis[0], np.ones(4))
        np.testing.assert_allclose(basis[1], grid)
        np.testing.assert_allclose(basis[2], grid**2)

    def test_seasonality_basis_shape(self):
        basis = seasonality_basis(harmonics=2, length=8, n_channels=3)
        assert basis.shape == ((1 + 2 * 2) * 3, 8 * 3)

    def test_seasonality_contains_constant(self):
        basis = seasonality_basis(harmonics=1, length=6, n_channels=1)
        np.testing.assert_allclose(basis[0], np.ones(6))


class TestNBeats:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            NBeats(window=1, n_channels=2)
        with pytest.raises(ConfigurationError):
            NBeats(window=8, n_channels=2, stack_types=())
        with pytest.raises(ConfigurationError):
            NBeats(window=8, n_channels=2, stack_types=("wavelet",))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            NBeats(window=8, n_channels=2).predict(np.zeros((8, 2)))

    def test_forecast_shape(self, small_windows):
        model = NBeats(window=8, n_channels=3, epochs=2, seed=0)
        model.fit(small_windows)
        assert model.predict(small_windows[0]).shape == (3,)

    def test_learns_sinusoid(self):
        t = np.arange(400, dtype=np.float64)
        series = np.stack(
            [np.sin(2 * np.pi * t / 25), np.cos(2 * np.pi * t / 25)], axis=1
        )
        w = 16
        windows = windows_from(series, w)
        model = NBeats(window=w, n_channels=2, epochs=60, seed=0, hidden=32)
        model.fit(windows)
        errors = [
            np.linalg.norm(model.predict(window) - window[-1])
            for window in windows[-50:]
        ]
        assert np.mean(errors) < 0.3

    def test_training_reduces_loss(self, small_windows):
        model = NBeats(window=8, n_channels=3, seed=0)
        first = model.fit(small_windows, epochs=1)
        last = model.finetune(small_windows, epochs=40)
        assert last < first

    def test_interpretable_stacks(self, small_windows):
        model = NBeats(
            window=8,
            n_channels=3,
            stack_types=("trend", "seasonality"),
            epochs=5,
            seed=0,
        )
        loss = model.fit(small_windows)
        assert np.isfinite(loss)
        assert model.predict(small_windows[0]).shape == (3,)

    def test_wrong_shape_rejected(self, small_windows):
        model = NBeats(window=8, n_channels=3, epochs=1)
        model.fit(small_windows)
        with pytest.raises(ConfigurationError):
            model.predict(np.zeros((7, 3)))

    def test_deterministic_given_seed(self, small_windows):
        predictions = []
        for _ in range(2):
            model = NBeats(window=8, n_channels=3, epochs=3, seed=9)
            model.fit(small_windows)
            predictions.append(model.predict(small_windows[0]))
        np.testing.assert_allclose(predictions[0], predictions[1])

    def test_residual_gradients_flow_to_all_blocks(self, small_windows):
        model = NBeats(window=8, n_channels=3, stack_types=("generic",) * 3, seed=0)
        model.fit(small_windows, epochs=2)
        for block in model.blocks:
            grads = [np.abs(p.value).sum() for p in block.parameters()]
            assert any(g > 0 for g in grads)

    def test_block_count_matches_stack_types(self):
        model = NBeats(window=8, n_channels=2, stack_types=("generic",) * 4)
        assert len(model.blocks) == 4
