"""End-to-end integration tests: full pipelines must actually detect.

These tests run complete detectors over labelled streams and check that
the produced scores carry signal — higher inside anomaly windows than
outside — and that the framework's moving parts (warm-up, fine-tuning,
scoring) interact correctly across model families.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import AnomalyWindow, TimeSeries, labels_from_windows
from repro.datasets import inject_spike
from repro.experiments import evaluate_result
from repro.streaming import run_stream


@pytest.fixture(scope="module")
def easy_series():
    """A smooth correlated stream with three unmissable anomalies."""
    rng = np.random.default_rng(42)
    n, channels = 1600, 4
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [
            np.sin(2 * np.pi * t / 60 + phase)
            for phase in rng.uniform(0, 2 * np.pi, channels)
        ],
        axis=1,
    )
    values += rng.normal(scale=0.05, size=values.shape)
    windows = [AnomalyWindow(700, 725), AnomalyWindow(1000, 1020), AnomalyWindow(1300, 1330)]
    for window in windows:
        inject_spike(values, window, rng, magnitude=8.0, channel_fraction=0.75)
    return TimeSeries(
        values=values,
        labels=labels_from_windows(windows, n),
        name="integration/easy",
        windows=windows,
    )


# The anomaly likelihood reacts within the anomaly window (its short
# window leads); a plain moving average of comparable length would lag
# past the window end and break ranged-overlap evaluation.
CONFIG = DetectorConfig(
    window=12,
    train_capacity=96,
    initial_train_size=300,
    fit_epochs=25,
    scorer="al",
    scorer_k=48,
    scorer_k_short=6,
    kswin_check_every=8,
)


def windows_detected(result, series, margin=3.0):
    """Count anomaly windows whose peak nonconformity clearly exceeds the
    background (median + ``margin`` * MAD of out-of-window scores)."""
    nc = result.nonconformities
    labels = series.labels.astype(bool)
    background = nc[result.first_scored :][~labels[result.first_scored :]]
    median = float(np.median(background))
    mad = float(np.median(np.abs(background - median))) + 1e-9
    threshold = median + margin * mad
    hits = 0
    for window in series.windows:
        stop = min(window.end + 12, series.n_steps)
        if nc[window.start : stop].max() > threshold:
            hits += 1
    return hits


@pytest.mark.parametrize(
    "spec",
    [
        AlgorithmSpec("online_arima", "ares", "musigma"),
        AlgorithmSpec("ae", "ares", "musigma"),
        AlgorithmSpec("usad", "ares", "musigma"),
        AlgorithmSpec("nbeats", "ares", "kswin"),
    ],
    ids=lambda spec: spec.label,
)
def test_model_families_detect_obvious_anomalies(easy_series, spec):
    # ARES keeps anomalous windows out of the training set (the paper's
    # point); the sliding window would fine-tune on the anomalies.
    detector = build_detector(spec, easy_series.n_channels, CONFIG)
    result = run_stream(detector, easy_series)
    assert windows_detected(result, easy_series) == len(easy_series.windows)


def test_pcb_iforest_detects_point_outliers(easy_series):
    spec = AlgorithmSpec("pcb_iforest", "ares", "kswin")
    detector = build_detector(spec, easy_series.n_channels, CONFIG)
    result = run_stream(detector, easy_series)
    # Tree-based scores are tighter; most windows must still peak clearly.
    assert windows_detected(result, easy_series) >= 2


def test_every_grid_algorithm_streams_without_error(easy_series):
    """All 26 algorithms must run end to end on a short stream."""
    from repro.core.registry import build_algorithm_grid

    short = easy_series.slice(0, 500)
    config = DetectorConfig(
        window=8, train_capacity=24, fit_epochs=2, kswin_check_every=16
    )
    for spec in build_algorithm_grid():
        detector = build_detector(spec, short.n_channels, config)
        result = run_stream(detector, short)
        assert np.all(np.isfinite(result.scores)), spec.label
        assert np.all(result.scores >= 0.0), spec.label
        assert np.all(result.scores <= 1.0), spec.label


def test_scores_bounded_for_al_scorer(easy_series):
    detector = build_detector(
        AlgorithmSpec("ae", "sw", "musigma"),
        easy_series.n_channels,
        DetectorConfig(window=12, train_capacity=64, fit_epochs=5, scorer="al"),
    )
    result = run_stream(detector, easy_series)
    assert np.all((result.scores >= 0.0) & (result.scores <= 1.0))


def test_evaluation_pipeline_produces_sane_metrics(easy_series):
    detector = build_detector(
        AlgorithmSpec("ae", "ares", "musigma"), easy_series.n_channels, CONFIG
    )
    result = run_stream(detector, easy_series)
    metrics = evaluate_result(result, threshold_quantile=0.96)
    assert 0.0 <= metrics.precision <= 1.0
    assert 0.0 <= metrics.recall <= 1.0
    assert 0.0 <= metrics.auc <= 1.0
    assert 0.0 <= metrics.vus <= 1.0
    assert metrics.recall > 0.3  # obvious anomalies must mostly be found


def test_finetuning_does_not_break_scoring(easy_series):
    """A detector that fine-tunes often must keep emitting valid scores."""
    config = DetectorConfig(
        window=12,
        train_capacity=48,
        initial_train_size=200,
        fit_epochs=10,
        scorer="avg",
        kswin_alpha=0.1,
        kswin_check_every=4,
    )
    detector = build_detector(
        AlgorithmSpec("ae", "sw", "kswin"), easy_series.n_channels, config
    )
    result = run_stream(detector, easy_series)
    assert result.n_finetunes > 0
    assert np.all(np.isfinite(result.scores))


def test_deterministic_given_seeds(easy_series):
    results = []
    for _ in range(2):
        detector = build_detector(
            AlgorithmSpec("usad", "ares", "musigma"), easy_series.n_channels, CONFIG
        )
        results.append(run_stream(detector, easy_series).scores)
    np.testing.assert_allclose(results[0], results[1])
