"""Tests for the experiment harness (Tables II & III, Figure 1, ablation)."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec
from repro.experiments import (
    MetricRow,
    average_rows,
    best_f1_threshold,
    evaluate_scores,
    render_figure1,
    render_score_ablation,
    render_table,
    render_table2,
    render_table3,
    run_figure1,
    run_score_ablation,
    run_table2,
    run_table3,
)
from repro.experiments.table3 import Table3Config


class TestEvaluation:
    def test_perfect_scores_full_metrics(self, labelled_series):
        rng = np.random.default_rng(0)
        scores = labelled_series.labels + rng.uniform(
            0, 0.05, labelled_series.n_steps
        )
        row = evaluate_scores(scores, labelled_series.labels)
        assert row.precision == 1.0
        assert row.recall == 1.0
        assert row.nab > 0.9

    def test_best_f1_threshold_separates(self, labelled_series):
        scores = labelled_series.labels.astype(float)
        threshold = best_f1_threshold(scores, labelled_series.labels)
        assert 0.0 < threshold <= 1.0

    def test_average_rows(self):
        rows = [MetricRow(1, 1, 1, 1, 1), MetricRow(0, 0, 0, 0, 0)]
        mean = average_rows(rows)
        assert mean.precision == 0.5
        assert mean.nab == 0.5

    def test_average_rows_empty_rejected(self):
        with pytest.raises(ValueError):
            average_rows([])

    def test_as_dict_keys(self):
        row = MetricRow(0.1, 0.2, 0.3, 0.4, 0.5)
        assert list(row.as_dict()) == ["Prec", "Rec", "AUC", "VUS", "NAB"]


class TestRenderTable:
    def test_renders_aligned(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text

    def test_wrong_row_width_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])


class TestTable2:
    def test_rows_have_formulas_and_measurements(self):
        rows = run_table2(settings=[(20, 10, 3)])
        row = rows[0]
        assert row.musigma_formula.total > 0
        assert row.kswin_formula.total > row.musigma_formula.total
        assert row.kswin_measured.total > row.musigma_measured.total

    def test_measured_scaling_matches_formula(self):
        # Doubling m should roughly double KSWIN's measured arithmetic but
        # leave mu/sigma's unchanged — the Table II asymptotics.
        rows = run_table2(settings=[(20, 10, 3), (40, 10, 3)])
        small, large = rows
        assert large.musigma_measured.total == small.musigma_measured.total
        ratio = large.kswin_measured.additions / small.kswin_measured.additions
        assert 1.5 < ratio < 2.5

    def test_render(self):
        text = render_table2(run_table2(settings=[(20, 10, 3)]))
        assert "Table II" in text


@pytest.fixture(scope="module")
def tiny_table3_config():
    return Table3Config(
        n_series=1,
        n_steps=700,
        clean_prefix=150,
        detector=DetectorConfig(
            window=10,
            train_capacity=24,
            fit_epochs=5,
            kswin_check_every=8,
            scorer_k=24,
            scorer_k_short=4,
        ),
        scorers=("avg",),
    )


class TestTable3:
    def test_subset_run(self, tiny_table3_config):
        specs = [
            AlgorithmSpec("ae", "sw", "musigma"),
            AlgorithmSpec("pcb_iforest", "sw", "kswin"),
        ]
        rows = run_table3("daphnet", specs=specs, config=tiny_table3_config)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row.metrics.precision <= 1.0
            assert 0.0 <= row.metrics.recall <= 1.0
            assert row.n_runs == 1

    def test_render(self, tiny_table3_config):
        specs = [AlgorithmSpec("ae", "sw", "musigma")]
        rows = run_table3("smd", specs=specs, config=tiny_table3_config)
        text = render_table3("smd", rows)
        assert "Table III" in text
        assert "ae" in text


class TestScoreAblation:
    def test_three_rows_in_order(self, tiny_table3_config):
        specs = [AlgorithmSpec("ae", "sw", "musigma")]
        rows = run_score_ablation("daphnet", specs=specs, config=tiny_table3_config)
        assert [row.scorer for row in rows] == ["raw", "avg", "al"]
        text = render_score_ablation("daphnet", rows)
        assert "raw" in text


class TestFigure1:
    def test_finetuned_gap_larger(self):
        impact = run_figure1(seed=7)
        assert impact.gap_finetuned > impact.gap_stale
        # The mechanism behind the larger gap: fine-tuning adapts the model
        # to the post-drift regime, lowering its normal nonconformity.
        assert impact.baseline_finetuned < impact.baseline_stale
        assert impact.detection_step > 900  # detected after the true drift
        text = render_figure1(impact)
        assert "improvement" in text
