"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table3_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.corpus == "daphnet"
        assert args.window == 16

    def test_unknown_corpus_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--corpus", "yahoo"])

    def test_scale_overrides(self):
        args = build_parser().parse_args(
            ["table3", "--corpus", "smd", "--steps", "900", "--window", "8"]
        )
        assert args.corpus == "smd"
        assert args.steps == 900
        assert args.window == 8


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "26 algorithm combinations" in out
        assert out.count("kswin") >= 14

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Table II" in capsys.readouterr().out
