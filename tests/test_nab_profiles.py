"""Tests for NAB application profiles."""

import numpy as np
import pytest

from repro.metrics import (
    PROFILES,
    REWARD_LOW_FN,
    REWARD_LOW_FP,
    STANDARD,
    nab_score,
    nab_score_profile,
)


@pytest.fixture
def labels():
    out = np.zeros(500, dtype=int)
    out[100:120] = 1
    out[300:330] = 1
    return out


class TestNABProfiles:
    def test_registry_complete(self):
        assert set(PROFILES) == {"standard", "reward_low_FP", "reward_low_FN"}

    def test_standard_matches_default(self, labels):
        scores = np.random.default_rng(0).uniform(size=labels.size)
        default = nab_score(scores, labels, 0.8)
        standard = nab_score_profile(scores, labels, 0.8, STANDARD)
        assert default.score == standard.score

    def test_low_fp_punishes_false_alarms_harder(self, labels):
        scores = labels.astype(float).copy()
        scores[400:420] = 1.0  # 20 false-positive steps
        standard = nab_score_profile(scores, labels, 0.5, STANDARD)
        low_fp = nab_score_profile(scores, labels, 0.5, REWARD_LOW_FP)
        assert low_fp.score < standard.score

    def test_low_fn_punishes_misses_harder(self, labels):
        scores = np.zeros(labels.size)
        scores[100] = 1.0  # detect one window, miss the other
        standard = nab_score_profile(scores, labels, 0.5, STANDARD)
        low_fn = nab_score_profile(scores, labels, 0.5, REWARD_LOW_FN)
        assert low_fn.score < standard.score

    def test_low_fn_tolerates_false_alarms(self, labels):
        scores = labels.astype(float).copy()
        scores[400:420] = 1.0
        standard = nab_score_profile(scores, labels, 0.5, STANDARD)
        low_fn = nab_score_profile(scores, labels, 0.5, REWARD_LOW_FN)
        assert low_fn.score > standard.score  # a_fp halved

    def test_perfect_detector_scores_one_under_all_profiles(self, labels):
        scores = labels.astype(float)
        for profile in PROFILES.values():
            result = nab_score_profile(scores, labels, 0.5, profile)
            assert result.score == pytest.approx(1.0)
