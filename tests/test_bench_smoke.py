"""Smoke test for the speedup benchmark: regenerates BENCH_parallel.json.

Runs ``benchmarks/bench_parallel_speedup.py --fast`` as a subprocess (the
benchmarks directory is not a package) and checks the emitted JSON has
the expected shape.  Speedup thresholds are asserted only loosely here —
the fast mode exists to prove the pipeline works, not to measure; the
full run (``python benchmarks/bench_parallel_speedup.py``) produces the
committed numbers.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_SCRIPT = REPO_ROOT / "benchmarks" / "bench_parallel_speedup.py"
METRICS_BENCH_SCRIPT = REPO_ROOT / "benchmarks" / "bench_metrics.py"
STREAM_BENCH_SCRIPT = REPO_ROOT / "benchmarks" / "bench_runtime_models.py"
SERVE_BENCH_SCRIPT = REPO_ROOT / "benchmarks" / "bench_serve.py"
FLEET_BENCH_SCRIPT = REPO_ROOT / "benchmarks" / "bench_fleet.py"


def test_bench_parallel_smoke(tmp_path):
    out = tmp_path / "BENCH_parallel.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [
            sys.executable,
            str(BENCH_SCRIPT),
            "--fast",
            "--n-jobs",
            "2",
            "--out",
            str(out),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr

    payload = json.loads(out.read_text())
    assert payload["mode"] == "fast"
    for key in ("generated_by", "cpu_count", "grid", "iforest_batch", "determinism"):
        assert key in payload
    grid = payload["grid"]
    for key in (
        "n_cells",
        "legacy_sequential_s",
        "sequential_s",
        "parallel_s",
        "hotpath_speedup",
        "pool_speedup",
        "speedup",
    ):
        assert key in grid
    # Correctness claims hold even at smoke scale; timing claims do not.
    assert payload["determinism"]["bitwise_identical"] is True
    assert payload["iforest_batch"]["speedup"] > 1.0


def test_bench_metrics_smoke(tmp_path):
    out = tmp_path / "BENCH_metrics.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, str(METRICS_BENCH_SCRIPT), "--fast", "--out", str(out)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr

    payload = json.loads(out.read_text())
    assert payload["mode"] == "fast"
    for key in ("generated_by", "cpu_count", "n_steps", "vus", "range_pr",
                "nab", "kswin", "speedup"):
        assert key in payload
    for section in ("vus", "range_pr", "nab"):
        for key in ("reference_s", "sweep_s", "speedup", "allclose_rtol"):
            assert key in payload[section]
        assert payload[section]["allclose_rtol"] == 1e-9
    # Correctness claims hold even at smoke scale (the benchmark raises on
    # any reference divergence before writing results); timing claims do not.
    assert payload["kswin"]["decisions_identical"] is True
    assert payload["speedup"] > 1.0


def test_bench_stream_smoke(tmp_path):
    out = tmp_path / "BENCH_stream.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, str(STREAM_BENCH_SCRIPT), "--fast", "--out", str(out)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr

    payload = json.loads(out.read_text())
    assert payload["mode"] == "fast"
    for key in ("generated_by", "cpu_count", "chunk_size", "combos", "determinism"):
        assert key in payload
    assert len(payload["combos"]) == 5
    for combo in payload["combos"]:
        for key in (
            "algorithm",
            "n_steps",
            "steps_per_second",
            "speedup_vs_chunk1",
            "speedup_vs_legacy",
        ):
            assert key in combo
        # Correctness claim (identity with the chunk=1 reference) holds
        # even at smoke scale; the benchmark asserts it before writing.
        assert combo["bitwise_identical"] is True
    assert payload["determinism"]["bitwise_identical"] is True

    telemetry = payload["telemetry"]
    for key in (
        "disabled_seconds",
        "disabled_spread",
        "traced_seconds",
        "traced_overhead",
        "scores_identical",
    ):
        assert key in telemetry
    # Disabled telemetry must not change a single bit of the scores; the
    # runtime claim ("within noise") is judged from the recorded
    # disabled_spread at full scale, not asserted at smoke scale.
    assert telemetry["scores_identical"] is True
    assert len(telemetry["disabled_seconds"]) == 3


def test_bench_serve_smoke(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, str(SERVE_BENCH_SCRIPT), "--fast", "--out", str(out)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr

    payload = json.loads(out.read_text())
    assert payload["mode"] == "fast"
    for key in (
        "generated_by",
        "cpu_count",
        "spec",
        "n_points_per_session",
        "offline_ceiling_points_per_second",
        "matrix",
        "wire",
        "equivalence",
    ):
        assert key in payload
    assert len(payload["matrix"]) == 4  # 2 session counts x 2 batch sizes
    for row in payload["matrix"]:
        for key in ("sessions", "max_batch", "points_per_second",
                    "efficiency_vs_ceiling"):
            assert key in row
        assert row["points_per_second"] > 0
    # Correctness claim (served == offline run_stream, bitwise) holds even
    # at smoke scale; the benchmark asserts it before writing any number.
    assert payload["equivalence"]["bitwise_identical"] is True
    assert payload["wire"]["points_per_second"] > 0


def test_bench_fleet_smoke(tmp_path):
    out = tmp_path / "BENCH_fleet.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, str(FLEET_BENCH_SCRIPT), "--fast", "--out", str(out)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr

    payload = json.loads(out.read_text())
    assert payload["mode"] == "fast"
    for key in (
        "generated_by",
        "cpu_count",
        "spec",
        "max_batch",
        "n_points_per_session",
        "fleet",
        "fleet_drift",
        "serve",
        "equivalence",
    ):
        assert key in payload
    assert len(payload["fleet"]) == 2  # fast mode: K in {1, 4}
    assert len(payload["fleet_drift"]) == 2  # fast: one interval x K in {1, 4}
    for row in payload["fleet"] + payload["fleet_drift"]:
        for key in (
            "sessions",
            "per_session_points_per_second",
            "fused_points_per_second",
            "speedup_fused_vs_per_session",
            "fused_fraction",
            "bypassed",
            "finetunes_fused",
        ):
            assert key in row
        # Correctness claim (fused == per-session step_chunk, bitwise)
        # holds even at smoke scale; the throughput claims are asserted
        # only by the full run that writes the committed numbers.
        assert row["equivalence_bitwise"] is True
        if row["sessions"] == 1:
            # Below min_fleet the engine bypasses: all-stock, by design.
            assert row["bypassed"] is True and row["fused_fraction"] == 0
        else:
            assert row["fused_fraction"] > 0
    for row in payload["fleet_drift"]:
        assert row["drift_interval"] == 32  # fast-mode default axis
        if row["sessions"] > 1:
            # Drift-heavy fleets must fine-tune *fused*, keeping the
            # whole drain on the fused path.
            assert row["finetunes_fused"] > 0
            assert row["fused_fraction"] == 1.0
    assert payload["equivalence"]["bitwise_identical"] is True
    for key in ("fused_points_per_second", "per_session_points_per_second"):
        assert payload["serve"][key] > 0


def test_bench_select_smoke(tmp_path):
    out = tmp_path / "BENCH_select.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_select.py"),
            "--fast",
            "--out",
            str(out),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr

    payload = json.loads(out.read_text())
    assert payload["mode"] == "fast"
    for key in ("generated_by", "champion", "equivalence", "overhead", "regret"):
        assert key in payload
    # Correctness claims hold even at smoke scale; the benchmark asserts
    # them before writing any number.
    assert payload["equivalence"]["bitwise_identical"] is True
    assert payload["equivalence"]["shadow_neutral"] is True
    rows = {row["n_challengers"]: row for row in payload["overhead"]}
    assert set(rows) == {0, 1, 3}
    for row in rows.values():
        assert row["points_per_second"] > 0
    # Shadow lanes cost throughput, never correctness: the baseline is
    # the fastest row and more lanes are monotonically slower.
    assert rows[0]["relative_rate"] == 1.0
    assert rows[1]["points_per_second"] > rows[3]["points_per_second"]
    regret = payload["regret"]
    assert regret["policy"]["promotions"] >= 1
    worst = max(
        entry["mean_nonconformity"] for entry in regret["fixed"].values()
    )
    assert regret["policy"]["mean_nonconformity"] < worst
    assert regret["ratio_vs_best"] <= regret["tracking_bound_vs_best"]
