"""Tests for the StreamingAnomalyDetector pipeline and representation."""

import numpy as np
import pytest

from repro.core.detector import StreamingAnomalyDetector
from repro.core.exceptions import StreamError
from repro.core.representation import RollingBuffer, WindowRepresentation
from repro.learning import MuSigmaChange, NeverFineTune, SlidingWindow
from repro.models import TwoLayerAutoencoder
from repro.scoring import AverageScore, CosineNonconformity


def build_detector(window=6, capacity=20, task2=None, fit_epochs=10):
    return StreamingAnomalyDetector(
        model=TwoLayerAutoencoder(window=window, n_channels=2, epochs=fit_epochs, seed=0),
        train_strategy=SlidingWindow(capacity),
        drift_detector=task2 if task2 is not None else MuSigmaChange(),
        nonconformity=CosineNonconformity(),
        scorer=AverageScore(k=8),
        window=window,
        fit_epochs=fit_epochs,
    )


def stream(n, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    return values + rng.normal(scale=0.05, size=values.shape)


class TestRollingBuffer:
    def test_returns_none_until_warm(self):
        buffer = RollingBuffer(WindowRepresentation(3))
        assert buffer.push(np.array([1.0])) is None
        assert buffer.push(np.array([2.0])) is None
        window = buffer.push(np.array([3.0]))
        np.testing.assert_array_equal(window.ravel(), [1.0, 2.0, 3.0])

    def test_slides(self):
        buffer = RollingBuffer(WindowRepresentation(2))
        buffer.push(np.array([1.0]))
        buffer.push(np.array([2.0]))
        window = buffer.push(np.array([3.0]))
        np.testing.assert_array_equal(window.ravel(), [2.0, 3.0])

    def test_reset(self):
        buffer = RollingBuffer(WindowRepresentation(2))
        buffer.push(np.array([1.0]))
        buffer.push(np.array([2.0]))
        buffer.reset()
        assert buffer.push(np.array([3.0])) is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowRepresentation(0)
        representation = WindowRepresentation(3)
        with pytest.raises(ValueError):
            representation([np.zeros(2)])


class TestDetectorLifecycle:
    def test_warmup_scores_zero(self):
        detector = build_detector(window=6, capacity=10)
        values = stream(12)
        results = [detector.step(v) for v in values]
        # Until buffer warm + initial fit, scores are zero.
        assert all(r.score == 0.0 for r in results[:5])

    def test_initial_fit_at_capacity(self):
        detector = build_detector(window=6, capacity=10)
        for v in stream(40):
            detector.step(v)
        assert detector.model.is_fitted
        assert detector.events[0].reason == "initial_fit"
        # Initial fit happens once the training set has `capacity` vectors:
        # window warmup (6 steps -> first vector at t=5) + 9 more.
        assert detector.events[0].t == 14

    def test_first_scored_step_tracked(self):
        detector = build_detector(window=6, capacity=10)
        for v in stream(40):
            detector.step(v)
        assert detector.first_scored_step == 15  # one step after initial fit

    def test_scores_emitted_after_fit(self):
        detector = build_detector(window=6, capacity=10)
        results = [detector.step(v) for v in stream(60)]
        scored = [r for r in results if r.t > 20]
        assert any(r.nonconformity > 0 for r in scored)

    def test_channel_mismatch_rejected(self):
        detector = build_detector()
        detector.step(np.zeros(2))
        with pytest.raises(StreamError):
            detector.step(np.zeros(3))

    def test_non_finite_rejected(self):
        detector = build_detector()
        with pytest.raises(StreamError):
            detector.step(np.array([np.nan, 1.0]))

    def test_never_strategy_no_finetunes(self):
        detector = build_detector(task2=NeverFineTune())
        for v in stream(100):
            detector.step(v)
        assert detector.n_finetunes == 0
        assert len(detector.events) == 1  # only the initial fit

    def test_drift_triggers_finetune(self):
        detector = build_detector(window=6, capacity=15)
        values = stream(200)
        values[100:] += 5.0  # abrupt drift
        drift_flags = [detector.step(v).drift_detected for v in values]
        assert any(drift_flags[100:])
        assert detector.n_finetunes >= 1

    def test_finetune_event_records_losses(self):
        detector = build_detector(window=6, capacity=15)
        values = stream(200)
        values[100:] += 5.0
        for v in values:
            detector.step(v)
        event = next(e for e in detector.events if e.reason != "initial_fit")
        assert np.isfinite(event.loss_before)
        assert np.isfinite(event.loss_after)
        assert event.train_set_size == 15

    def test_reset_clears_state(self):
        detector = build_detector()
        for v in stream(60):
            detector.step(v)
        detector.reset()
        assert detector.t == -1
        assert len(detector.train_strategy) == 0
        assert detector.events == []
        assert detector.first_scored_step is None
        # Model stays fitted; streaming again works immediately.
        result = detector.step(np.zeros(2))
        assert result.t == 0

    def test_warm_up_equivalent_to_steps(self):
        values = stream(30)
        stepped = build_detector()
        for v in values:
            stepped.step(v)
        warmed = build_detector()
        warmed.warm_up(values)
        assert warmed.t == stepped.t
        assert len(warmed.train_strategy) == len(stepped.train_strategy)

    def test_min_train_size_validation(self):
        with pytest.raises(Exception):
            StreamingAnomalyDetector(
                model=TwoLayerAutoencoder(window=4, n_channels=2),
                train_strategy=SlidingWindow(10),
                drift_detector=NeverFineTune(),
                nonconformity=CosineNonconformity(),
                scorer=AverageScore(),
                window=4,
                min_train_size=1,
            )
