"""Tests for the ensemble detector."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.exceptions import ConfigurationError
from repro.core.registry import AlgorithmSpec, build_detector
from repro.streaming import EnsembleDetector, run_stream


def members(n_channels=2, specs=(("ae", "sw", "musigma"), ("online_arima", "sw", "musigma"))):
    config = DetectorConfig(window=8, train_capacity=24, fit_epochs=3)
    return [
        build_detector(AlgorithmSpec(*spec), n_channels, config) for spec in specs
    ]


def stream(n, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    values = np.stack(
        [np.sin(2 * np.pi * t / 30), np.cos(2 * np.pi * t / 30)], axis=1
    )
    return values + rng.normal(scale=0.05, size=values.shape)


class TestEnsembleDetector:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnsembleDetector([])
        with pytest.raises(ConfigurationError):
            EnsembleDetector(members(), fusion="vote")

    def test_mean_fusion_is_member_mean(self):
        ensemble = EnsembleDetector(members(), fusion="mean")
        values = stream(100)
        for v in values[:-1]:
            ensemble.step(v)
        # Compare against manually driving fresh members through the
        # same chunked engine the ensemble uses.
        fresh = members()
        for member in fresh:
            member.step_chunk(values[:-1])
        fused = ensemble.step(values[-1])
        individual = [float(member.step_chunk(values[-1:])[1][0]) for member in fresh]
        assert fused.score == pytest.approx(float(np.mean(individual)))

    def test_max_fusion_upper_bounds_mean(self):
        values = stream(150)
        mean_scores, max_scores = [], []
        for fusion, sink in (("mean", mean_scores), ("max", max_scores)):
            ensemble = EnsembleDetector(members(), fusion=fusion)
            for v in values:
                sink.append(ensemble.step(v).score)
        assert all(m <= x + 1e-12 for m, x in zip(mean_scores, max_scores))

    def test_first_scored_is_last_member_ready(self):
        config_fast = DetectorConfig(window=6, train_capacity=12, fit_epochs=1)
        config_slow = DetectorConfig(window=6, train_capacity=40, fit_epochs=1)
        fast = build_detector(AlgorithmSpec("ae", "sw", "never"), 2, config_fast)
        slow = build_detector(AlgorithmSpec("ae", "sw", "never"), 2, config_slow)
        ensemble = EnsembleDetector([fast, slow])
        for v in stream(100):
            ensemble.step(v)
        assert ensemble.first_scored_step == slow.first_scored_step

    def test_runs_through_run_stream(self, labelled_series):
        ensemble = EnsembleDetector(members())
        result = run_stream(ensemble, labelled_series)
        assert result.scores.shape == (labelled_series.n_steps,)
        assert np.all(np.isfinite(result.scores))

    def test_events_merged_sorted(self):
        ensemble = EnsembleDetector(members())
        for v in stream(200):
            ensemble.step(v)
        steps = [event.t for event in ensemble.events]
        assert steps == sorted(steps)
        assert len(steps) >= 2  # at least both initial fits

    @pytest.mark.parametrize("fusion", ["mean", "max", "median"])
    def test_step_chunk_matches_looped_step(self, fusion):
        """One ``step_chunk`` over the whole stream is bitwise identical
        to a per-point ``step`` loop — ensembles ride the micro-batch
        scheduler without the batch size leaking into the scores."""
        values = stream(160, seed=4)
        looped = EnsembleDetector(members(), fusion=fusion)
        chunked = EnsembleDetector(members(), fusion=fusion)
        results = [looped.step(v) for v in values]
        a, f, drift, fine = chunked.step_chunk(values)
        assert np.array_equal([r.nonconformity for r in results], a)
        assert np.array_equal([r.score for r in results], f)
        assert np.array_equal([r.drift_detected for r in results], drift)
        assert np.array_equal([r.finetuned for r in results], fine)
        assert chunked.t == looped.t == len(values) - 1

    def test_step_chunk_invariant_to_block_size(self):
        values = stream(150, seed=5)
        whole = EnsembleDetector(members(), fusion="mean")
        split = EnsembleDetector(members(), fusion="mean")
        a_whole, f_whole, _, _ = whole.step_chunk(values)
        pieces = [split.step_chunk(values[i : i + 17]) for i in range(0, 150, 17)]
        assert np.array_equal(np.concatenate([p[0] for p in pieces]), a_whole)
        assert np.array_equal(np.concatenate([p[1] for p in pieces]), f_whole)

    def test_reset(self):
        ensemble = EnsembleDetector(members())
        for v in stream(50):
            ensemble.step(v)
        ensemble.reset()
        assert ensemble.t == -1
        assert all(member.t == -1 for member in ensemble.members)
