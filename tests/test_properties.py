"""Cross-cutting property-based tests on framework invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.metrics import (
    buffered_label_weights,
    nab_score,
    range_precision_recall,
    vus,
)
from repro.streaming import run_stream

bounded_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestMetricInvariants:
    @given(
        st.lists(bounded_floats, min_size=10, max_size=120),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_pr_bounded(self, scores, n_windows, threshold):
        scores = np.asarray(scores)
        labels = np.zeros(scores.size, dtype=int)
        rng = np.random.default_rng(n_windows)
        for _ in range(n_windows):
            start = int(rng.integers(0, max(scores.size - 3, 1)))
            labels[start : start + 3] = 1
        precision, recall = range_precision_recall(scores, labels, threshold)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0

    @given(st.lists(bounded_floats, min_size=20, max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_nab_upper_bound(self, scores):
        # No detector can beat the perfect score of 1.
        scores = np.asarray(scores)
        labels = np.zeros(scores.size, dtype=int)
        labels[5:10] = 1
        result = nab_score(scores, labels, threshold=0.5)
        assert result.score <= 1.0 + 1e-12

    @given(st.lists(bounded_floats, min_size=20, max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_vus_bounded(self, scores):
        scores = np.asarray(scores)
        labels = np.zeros(scores.size, dtype=int)
        labels[8:14] = 1
        result = vus(scores, labels, max_buffer=8, n_buffers=3, n_thresholds=15)
        assert 0.0 <= result.vus_pr <= 1.0
        assert 0.0 <= result.vus_roc <= 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=10, max_size=80),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_buffer_monotone_in_length(self, bits, buffer):
        # A longer buffer never decreases any weight.
        labels = np.asarray(bits, dtype=np.int_)
        small = buffered_label_weights(labels, buffer)
        large = buffered_label_weights(labels, buffer + 4)
        assert np.all(large >= small - 1e-12)


class TestDetectorInvariants:
    @pytest.mark.parametrize("scorer", ["raw", "avg", "al", "conformal"])
    def test_scores_always_in_unit_interval(self, scorer, rng):
        n = 400
        values = rng.normal(size=(n, 2)).cumsum(axis=0) * 0.05
        values += rng.normal(scale=0.1, size=(n, 2))
        series = TimeSeries(values=values, labels=np.zeros(n, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"),
            2,
            DetectorConfig(window=6, train_capacity=24, fit_epochs=2, scorer=scorer),
        )
        result = run_stream(detector, series)
        assert np.all(result.scores >= 0.0)
        assert np.all(result.scores <= 1.0)
        assert np.all(result.nonconformities >= 0.0)
        assert np.all(result.nonconformities <= 1.0)

    def test_constant_stream_does_not_crash(self):
        values = np.ones((200, 3))
        series = TimeSeries(values=values, labels=np.zeros(200, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"),
            3,
            DetectorConfig(window=6, train_capacity=24, fit_epochs=2),
        )
        result = run_stream(detector, series)
        assert np.all(np.isfinite(result.scores))

    def test_single_channel_stream(self, rng):
        values = np.sin(np.arange(300) / 10.0)[:, None] + rng.normal(
            scale=0.05, size=(300, 1)
        )
        series = TimeSeries(values=values, labels=np.zeros(300, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("online_arima", "sw", "musigma"),
            1,
            DetectorConfig(window=8, train_capacity=24, fit_epochs=2),
        )
        result = run_stream(detector, series)
        assert np.all(np.isfinite(result.scores))

    def test_extreme_scale_stream(self, rng):
        values = rng.normal(scale=1e7, size=(300, 2)) + 1e9
        series = TimeSeries(values=values, labels=np.zeros(300, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("usad", "sw", "musigma"),
            2,
            DetectorConfig(window=6, train_capacity=24, fit_epochs=2),
        )
        result = run_stream(detector, series)
        assert np.all(np.isfinite(result.scores))


class TestRingBufferMatchesStackSemantics:
    """The mirrored-ring RollingBuffer must reproduce the old deque +
    ``np.stack`` window semantics exactly, for every (window, stream
    length, channel count)."""

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_windows_match_reference(self, window, n_steps, n_channels, seed):
        import collections

        from repro.core.representation import RollingBuffer, WindowRepresentation

        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(n_steps, n_channels))
        buffer = RollingBuffer(WindowRepresentation(window))
        reference = collections.deque(maxlen=window)
        for vector in vectors:
            emitted = buffer.push(vector)
            reference.append(vector)
            if len(reference) < window:
                assert emitted is None
                assert not buffer.is_warm
            else:
                assert buffer.is_warm
                np.testing.assert_array_equal(emitted, np.stack(list(reference)))

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_emitted_window_never_aliases_the_ring(self, window, seed):
        from repro.core.representation import RollingBuffer, WindowRepresentation

        rng = np.random.default_rng(seed)
        buffer = RollingBuffer(WindowRepresentation(window))
        emitted = None
        for vector in rng.normal(size=(window, 3)):
            emitted = buffer.push(vector)
        snapshot = emitted.copy()
        # Later pushes must not mutate a window already handed out
        # (training strategies store emitted windows verbatim).
        for vector in rng.normal(size=(window, 3)):
            buffer.push(vector)
        np.testing.assert_array_equal(emitted, snapshot)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_reset_restarts_warmup(self, window):
        from repro.core.representation import RollingBuffer, WindowRepresentation

        buffer = RollingBuffer(WindowRepresentation(window))
        for step in range(window):
            buffer.push(np.full(2, float(step)))
        assert buffer.is_warm
        buffer.reset()
        assert not buffer.is_warm
        for step in range(window - 1):
            assert buffer.push(np.full(2, float(step))) is None


class TestFlatTreeMatchesRecursive:
    """Array-encoded traversal must agree with the reference recursive
    traversal node-for-node: identical branch decisions, identical
    depths, for single points, batches and whole forests."""

    @given(
        st.integers(min_value=2, max_value=200),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_tree_depths_match(self, n_samples, dim, seed):
        from repro.models.isolation import ExtendedIsolationTree

        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n_samples, dim))
        tree = ExtendedIsolationTree(data, np.random.default_rng(seed + 1))
        queries = rng.normal(size=(16, dim))
        recursive = np.array([tree.path_length_recursive(q) for q in queries])
        iterative = np.array([tree.path_length(q) for q in queries])
        batch = tree.path_lengths(queries)
        np.testing.assert_array_equal(iterative, recursive)
        np.testing.assert_array_equal(batch, recursive)

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_forest_arena_matches_recursive(self, n_trees, seed):
        from repro.models.isolation import ExtendedIsolationForest

        rng = np.random.default_rng(seed)
        data = rng.normal(size=(80, 3))
        forest = ExtendedIsolationForest(n_trees=n_trees, subsample=32, seed=seed)
        forest.fit(data)
        queries = rng.normal(size=(8, 3))
        arena_batch = forest.depths_batch(queries)
        for i, query in enumerate(queries):
            recursive = np.array(
                [tree.path_length_recursive(query) for tree in forest.trees]
            )
            np.testing.assert_array_equal(forest.depths(query), recursive)
            np.testing.assert_array_equal(arena_batch[i], recursive)

    def test_use_arena_toggle_is_equivalent(self, rng):
        from repro.models.isolation import ExtendedIsolationForest

        data = rng.normal(size=(200, 4))
        forest = ExtendedIsolationForest(n_trees=10, subsample=64, seed=0).fit(data)
        queries = rng.normal(size=(20, 4))
        vectorized = forest.depths_batch(queries)
        forest.use_arena = False
        legacy = forest.depths_batch(queries)
        np.testing.assert_array_equal(vectorized, legacy)

    def test_arena_invalidated_when_trees_replaced(self, rng):
        from repro.models.isolation import ExtendedIsolationForest

        data = rng.normal(size=(100, 2))
        forest = ExtendedIsolationForest(n_trees=4, subsample=32, seed=0).fit(data)
        before = forest.depths(data[0])
        forest.trees = forest.trees[:2] + [
            forest.build_tree(data) for _ in range(2)
        ]
        after = forest.depths(data[0])
        assert after.shape == before.shape
        recursive = np.array(
            [tree.path_length_recursive(data[0]) for tree in forest.trees]
        )
        np.testing.assert_array_equal(after, recursive)
