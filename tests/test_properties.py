"""Cross-cutting property-based tests on framework invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DetectorConfig
from repro.core.registry import AlgorithmSpec, build_detector
from repro.core.types import TimeSeries
from repro.metrics import (
    buffered_label_weights,
    nab_score,
    range_precision_recall,
    vus,
)
from repro.streaming import run_stream

bounded_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestMetricInvariants:
    @given(
        st.lists(bounded_floats, min_size=10, max_size=120),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_pr_bounded(self, scores, n_windows, threshold):
        scores = np.asarray(scores)
        labels = np.zeros(scores.size, dtype=int)
        rng = np.random.default_rng(n_windows)
        for _ in range(n_windows):
            start = int(rng.integers(0, max(scores.size - 3, 1)))
            labels[start : start + 3] = 1
        precision, recall = range_precision_recall(scores, labels, threshold)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0

    @given(st.lists(bounded_floats, min_size=20, max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_nab_upper_bound(self, scores):
        # No detector can beat the perfect score of 1.
        scores = np.asarray(scores)
        labels = np.zeros(scores.size, dtype=int)
        labels[5:10] = 1
        result = nab_score(scores, labels, threshold=0.5)
        assert result.score <= 1.0 + 1e-12

    @given(st.lists(bounded_floats, min_size=20, max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_vus_bounded(self, scores):
        scores = np.asarray(scores)
        labels = np.zeros(scores.size, dtype=int)
        labels[8:14] = 1
        result = vus(scores, labels, max_buffer=8, n_buffers=3, n_thresholds=15)
        assert 0.0 <= result.vus_pr <= 1.0
        assert 0.0 <= result.vus_roc <= 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=10, max_size=80),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_buffer_monotone_in_length(self, bits, buffer):
        # A longer buffer never decreases any weight.
        labels = np.asarray(bits, dtype=np.int_)
        small = buffered_label_weights(labels, buffer)
        large = buffered_label_weights(labels, buffer + 4)
        assert np.all(large >= small - 1e-12)


class TestDetectorInvariants:
    @pytest.mark.parametrize("scorer", ["raw", "avg", "al", "conformal"])
    def test_scores_always_in_unit_interval(self, scorer, rng):
        n = 400
        values = rng.normal(size=(n, 2)).cumsum(axis=0) * 0.05
        values += rng.normal(scale=0.1, size=(n, 2))
        series = TimeSeries(values=values, labels=np.zeros(n, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"),
            2,
            DetectorConfig(window=6, train_capacity=24, fit_epochs=2, scorer=scorer),
        )
        result = run_stream(detector, series)
        assert np.all(result.scores >= 0.0)
        assert np.all(result.scores <= 1.0)
        assert np.all(result.nonconformities >= 0.0)
        assert np.all(result.nonconformities <= 1.0)

    def test_constant_stream_does_not_crash(self):
        values = np.ones((200, 3))
        series = TimeSeries(values=values, labels=np.zeros(200, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"),
            3,
            DetectorConfig(window=6, train_capacity=24, fit_epochs=2),
        )
        result = run_stream(detector, series)
        assert np.all(np.isfinite(result.scores))

    def test_single_channel_stream(self, rng):
        values = np.sin(np.arange(300) / 10.0)[:, None] + rng.normal(
            scale=0.05, size=(300, 1)
        )
        series = TimeSeries(values=values, labels=np.zeros(300, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("online_arima", "sw", "musigma"),
            1,
            DetectorConfig(window=8, train_capacity=24, fit_epochs=2),
        )
        result = run_stream(detector, series)
        assert np.all(np.isfinite(result.scores))

    def test_extreme_scale_stream(self, rng):
        values = rng.normal(scale=1e7, size=(300, 2)) + 1e9
        series = TimeSeries(values=values, labels=np.zeros(300, dtype=np.int_))
        detector = build_detector(
            AlgorithmSpec("usad", "sw", "musigma"),
            2,
            DetectorConfig(window=6, train_capacity=24, fit_epochs=2),
        )
        result = run_stream(detector, series)
        assert np.all(np.isfinite(result.scores))
