"""Tests for the Euclidean (RMS) nonconformity measure."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.models import OnlineARIMA, PCBIForest, TwoLayerAutoencoder
from repro.scoring import EuclideanNonconformity


def windows_from(series, w):
    return np.stack([series[i : i + w] for i in range(series.shape[0] - w)])


class TestEuclideanNonconformity:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EuclideanNonconformity(alpha=0.0)
        with pytest.raises(ValueError):
            EuclideanNonconformity(alpha=1.5)

    def test_bounded(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=20, seed=0)
        model.fit(small_windows)
        measure = EuclideanNonconformity()
        for window in small_windows[:20]:
            score = measure(window, model)
            assert 0.0 <= score < 1.0

    def test_works_for_univariate_forecaster(self):
        # The case the paper's cosine cannot handle (N = 1).
        t = np.arange(300, dtype=np.float64)
        series = np.sin(t / 10)[:, None]
        w = 10
        model = OnlineARIMA(window=w, d=1, lr=0.05)
        windows = windows_from(series, w)
        model.fit(windows, epochs=20)
        measure = EuclideanNonconformity()
        normal_scores = [measure(window, model) for window in windows[-30:]]
        anomalous = windows[-1].copy()
        anomalous[-1] += 10.0
        assert measure(anomalous, model) > np.mean(normal_scores) + 0.1

    def test_score_model_rejected(self, small_windows):
        model = PCBIForest(n_trees=5, seed=0)
        model.fit(small_windows)
        with pytest.raises(ConfigurationError):
            EuclideanNonconformity()(small_windows[0], model)

    def test_scale_adapts(self, small_windows):
        model = TwoLayerAutoencoder(window=8, n_channels=3, epochs=20, seed=0)
        model.fit(small_windows)
        measure = EuclideanNonconformity(alpha=0.5)
        for window in small_windows[:10]:
            measure(window, model)
        # After calibration, typical windows sit around 1 - e^-1 ~ 0.63.
        typical = measure(small_windows[11], model)
        assert 0.2 < typical < 0.9

    def test_registry_builds_it(self):
        from repro.core.registry import make_nonconformity

        measure = make_nonconformity("euclidean")
        assert isinstance(measure, EuclideanNonconformity)
