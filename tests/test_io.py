"""Tests for dataset IO (NPZ and CSV round trips)."""

import numpy as np
import pytest

from repro.datasets import load_csv, load_npz, save_csv, save_npz


class TestNPZRoundtrip:
    def test_roundtrip_preserves_everything(self, labelled_series, tmp_path):
        path = tmp_path / "series.npz"
        save_npz(labelled_series, path)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.values, labelled_series.values)
        np.testing.assert_array_equal(loaded.labels, labelled_series.labels)
        assert loaded.name == labelled_series.name
        assert len(loaded.windows) == len(labelled_series.windows)

    def test_drift_points_preserved(self, tmp_path):
        from repro.core.types import TimeSeries

        series = TimeSeries(
            values=np.zeros((10, 2)),
            labels=np.zeros(10, dtype=int),
            drift_points=[3, 7],
        )
        path = tmp_path / "drifty.npz"
        save_npz(series, path)
        assert load_npz(path).drift_points == [3, 7]


class TestCSVRoundtrip:
    def test_roundtrip(self, labelled_series, tmp_path):
        path = tmp_path / "series.csv"
        save_csv(labelled_series, path)
        loaded = load_csv(path)
        np.testing.assert_allclose(
            loaded.values, labelled_series.values, rtol=1e-9
        )
        np.testing.assert_array_equal(loaded.labels, labelled_series.labels)
        assert loaded.name == "series"  # file stem

    def test_windows_reconstructed(self, labelled_series, tmp_path):
        path = tmp_path / "series.csv"
        save_csv(labelled_series, path)
        loaded = load_csv(path)
        assert [(w.start, w.end) for w in loaded.windows] == [
            (w.start, w.end) for w in labelled_series.windows
        ]

    def test_unlabelled_csv(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,b\n1.0,2.0\n3.0,4.0\n")
        loaded = load_csv(path, label_column=None)
        assert loaded.values.shape == (2, 2)
        assert loaded.labels.sum() == 0

    def test_custom_name(self, labelled_series, tmp_path):
        path = tmp_path / "series.csv"
        save_csv(labelled_series, path)
        assert load_csv(path, name="custom").name == "custom"

    def test_missing_label_column_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,b\n1.0,2.0\n")
        with pytest.raises(ValueError, match="label column"):
            load_csv(path, label_column="anomaly")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b,label\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_csv(path)

    def test_malformed_value_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\nnot_a_number,0\n")
        with pytest.raises(ValueError, match="malformed"):
            load_csv(path)

    def test_loaded_series_streams(self, labelled_series, tmp_path):
        from repro.core.config import DetectorConfig
        from repro.core.registry import AlgorithmSpec, build_detector
        from repro.streaming import run_stream

        path = tmp_path / "series.csv"
        save_csv(labelled_series, path)
        loaded = load_csv(path)
        detector = build_detector(
            AlgorithmSpec("ae", "sw", "musigma"),
            loaded.n_channels,
            DetectorConfig(window=6, train_capacity=12, fit_epochs=1),
        )
        result = run_stream(detector, loaded)
        assert np.all(np.isfinite(result.scores))
