"""Crash-injection child for the mid-swap SIGKILL recovery tests.

Run as a subprocess by ``tests/test_select.py`` with the
``REPRO_SELECT_CRASH`` environment variable set to one of the swap
protocol's crash points (see :mod:`repro.select.swap`).  The child
streams a drifting series through a WAL-backed service whose selection
race is tuned so the bad champion is deterministically beaten; the
injected ``os._exit(42)`` fires inside the hot-swap, leaving exactly
the on-disk state a SIGKILL at that instant would.

Results collected before the crash are persisted to ``results.jsonl``
after every score round (one JSON line per round: the send cursor plus
the round's results), so the parent can merge them with what recovery
re-emits and assert the union is lossless.

Shared constants (stream, detector config, select knobs) live here so
the parent test imports them instead of duplicating.
"""

import json
import sys
from pathlib import Path

import numpy as np

N = 400
CHUNK = 25
SPEC = "ae+sw+never"  # never fine-tunes: deliberately bad after the shift
CHALLENGER = "ae+sw+kswin"

CONFIG = dict(
    window=6,
    train_capacity=24,
    fit_epochs=3,
    initial_train_size=40,
    kswin_check_every=1,
)

SELECT = dict(
    challengers=[CHALLENGER],
    policy="ewma",
    warmup=40,
    margin=0.02,
    dwell=16,
    min_dwell=64,
    fire_weight=0.0,
    demote=False,
)


def make_values():
    rng = np.random.default_rng(0)
    values = rng.normal(size=(N, 2))
    values[N // 2 :] = values[N // 2 :] * 2.5 + 1.0
    return values


def make_service(workdir, autostart=False):
    from repro.core.config import DetectorConfig
    from repro.serve import DetectionService, ServeConfig

    return DetectionService(
        ServeConfig(
            max_batch=16,
            spill_dir=str(Path(workdir) / "spill"),
            wal_dir=str(Path(workdir) / "wal"),
            wal_barrier_interval=48,
            detector=DetectorConfig(**CONFIG),
        ),
        autostart=autostart,
    )


def main() -> int:
    from repro.serve import ServeClient

    workdir = Path(sys.argv[1])
    service = make_service(workdir)
    client = ServeClient(service)
    reply = client.create("s", spec=SPEC, n_channels=2, select=dict(SELECT))
    assert reply["ok"], reply
    values = make_values()
    sent = 0
    with open(workdir / "results.jsonl", "a") as log:
        while sent < N:
            reply = client.ingest("s", values[sent : sent + CHUNK], expect=sent)
            assert reply["ok"], reply
            sent += reply["accepted"]
            # The injected crash fires inside this flush, mid-swap.
            reply = client.score("s")
            assert reply["ok"], reply
            log.write(
                json.dumps({"sent": sent, "results": reply["results"]}) + "\n"
            )
            log.flush()
    return 7  # the parent expects the crash (42), not completion


if __name__ == "__main__":
    sys.exit(main())
