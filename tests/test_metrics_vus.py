"""Tests for the VUS metric and buffered label weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import buffered_label_weights, vus


class TestBufferedLabelWeights:
    def test_zero_buffer_is_identity(self):
        labels = np.array([0, 1, 1, 0, 0])
        np.testing.assert_array_equal(
            buffered_label_weights(labels, 0), labels.astype(float)
        )

    def test_inside_window_stays_one(self):
        labels = np.zeros(20, dtype=int)
        labels[8:12] = 1
        weights = buffered_label_weights(labels, 8)
        np.testing.assert_array_equal(weights[8:12], 1.0)

    def test_ramp_decreasing_outward(self):
        labels = np.zeros(30, dtype=int)
        labels[10:15] = 1
        weights = buffered_label_weights(labels, 8)
        assert weights[9] > weights[8] > weights[7]
        assert weights[15] > weights[16] > weights[17]

    def test_ramp_symmetric(self):
        labels = np.zeros(30, dtype=int)
        labels[10:15] = 1
        weights = buffered_label_weights(labels, 8)
        assert weights[9] == pytest.approx(weights[15])

    def test_weights_bounded(self):
        labels = np.zeros(20, dtype=int)
        labels[5:8] = 1
        labels[10:12] = 1
        weights = buffered_label_weights(labels, 10)
        assert np.all(weights >= 0.0) and np.all(weights <= 1.0)

    def test_window_at_edge(self):
        labels = np.zeros(10, dtype=int)
        labels[0:2] = 1
        weights = buffered_label_weights(labels, 6)
        assert weights[0] == 1.0
        assert weights[2] > 0

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=5, max_size=80),
        st.integers(min_value=0, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_weights_dominate_labels(self, bits, buffer):
        labels = np.asarray(bits, dtype=np.int_)
        weights = buffered_label_weights(labels, buffer)
        assert np.all(weights >= labels.astype(float))
        assert np.all(weights <= 1.0)


class TestVUS:
    def test_perfect_scores_high_volume(self, labelled_series):
        rng = np.random.default_rng(0)
        scores = labelled_series.labels + rng.uniform(0, 0.05, labelled_series.n_steps)
        result = vus(scores, labelled_series.labels)
        assert result.vus_pr > 0.7
        assert result.vus_roc > 0.9

    def test_random_scores_lower(self, labelled_series):
        rng = np.random.default_rng(0)
        perfect = labelled_series.labels + rng.uniform(0, 0.05, labelled_series.n_steps)
        noise = rng.uniform(size=labelled_series.n_steps)
        assert (
            vus(perfect, labelled_series.labels).vus_pr
            > vus(noise, labelled_series.labels).vus_pr
        )

    def test_buffers_swept(self, labelled_series):
        scores = labelled_series.labels.astype(float)
        result = vus(scores, labelled_series.labels, max_buffer=8, n_buffers=3)
        assert len(result.buffers) == 3
        assert len(result.pr_aucs) == 3
        assert result.vus_pr == pytest.approx(float(np.mean(result.pr_aucs)))

    def test_buffer_credits_near_miss_over_far_miss(self):
        # VUS's point: a prediction just before the window earns weighted
        # credit under buffering, a far-away prediction does not.
        labels = np.zeros(200, dtype=int)
        labels[100:120] = 1
        near = np.zeros(200)
        near[95:100] = 1.0  # early by five steps
        far = np.zeros(200)
        far[20:25] = 1.0  # nowhere near the window
        near_result = vus(near, labels, max_buffer=16, n_buffers=3)
        far_result = vus(far, labels, max_buffer=16, n_buffers=3)
        assert near_result.vus_pr > far_result.vus_pr
        # And the near-miss weights are strictly positive under buffering.
        weights = buffered_label_weights(labels, 16)
        assert weights[95:100].sum() > 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            vus(np.zeros(5), np.zeros(6, dtype=int))
        with pytest.raises(ValueError):
            vus(np.zeros(5), np.zeros(5, dtype=int), max_buffer=-1)
        with pytest.raises(ValueError):
            vus(np.zeros(5), np.zeros(5, dtype=int), existence_weight=2.0)

    def test_volumes_bounded(self, labelled_series):
        rng = np.random.default_rng(3)
        scores = rng.uniform(size=labelled_series.n_steps)
        result = vus(scores, labelled_series.labels)
        assert 0.0 <= result.vus_pr <= 1.0
        assert 0.0 <= result.vus_roc <= 1.0
