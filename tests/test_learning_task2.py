"""Tests for Task-2 strategies: regular, mu/sigma-Change, never."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning import MuSigmaChange, NeverFineTune, RegularFineTuning
from repro.learning.base import Update, UpdateKind


def feed(detector, vectors, kind=UpdateKind.ADDED, removed=None):
    for i, vector in enumerate(vectors):
        update = Update(kind, added=np.asarray(vector, dtype=float), removed=removed)
        detector.observe(update, t=i)


class TestRegularFineTuning:
    def test_fires_on_interval(self):
        detector = RegularFineTuning(interval=5)
        fired = [t for t in range(1, 21) if detector.should_finetune(t, np.empty(0))]
        assert fired == [5, 10, 15, 20]

    def test_never_fires_at_zero(self):
        detector = RegularFineTuning(interval=3)
        assert not detector.should_finetune(0, np.empty(0))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            RegularFineTuning(interval=0)


class TestNeverFineTune:
    def test_never_fires(self):
        detector = NeverFineTune()
        assert not any(
            detector.should_finetune(t, np.empty(0)) for t in range(100)
        )


class TestMuSigmaRunningStats:
    def test_running_mean_matches_numpy(self, rng):
        detector = MuSigmaChange()
        vectors = rng.normal(size=(30, 6))
        feed(detector, vectors)
        np.testing.assert_allclose(detector.mean, vectors.mean(axis=0))

    def test_running_std_matches_numpy(self, rng):
        detector = MuSigmaChange()
        vectors = rng.normal(size=(30, 6))
        feed(detector, vectors)
        np.testing.assert_allclose(detector.std, vectors.std(axis=0), atol=1e-10)

    def test_replacement_updates_stats(self, rng):
        detector = MuSigmaChange()
        vectors = rng.normal(size=(10, 4))
        feed(detector, vectors)
        replacement = rng.normal(size=4)
        detector.observe(
            Update(UpdateKind.REPLACED, added=replacement, removed=vectors[0]),
            t=10,
        )
        current = np.vstack([vectors[1:], replacement])
        np.testing.assert_allclose(detector.mean, current.mean(axis=0))
        np.testing.assert_allclose(detector.std, current.std(axis=0), atol=1e-10)

    def test_unchanged_leaves_stats(self, rng):
        detector = MuSigmaChange()
        feed(detector, rng.normal(size=(5, 3)))
        before = detector.mean.copy()
        detector.observe(Update(UpdateKind.UNCHANGED), t=5)
        np.testing.assert_array_equal(detector.mean, before)

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=3,
                max_size=3,
            ),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_running_stats_property(self, rows):
        detector = MuSigmaChange()
        vectors = np.asarray(rows, dtype=np.float64)
        feed(detector, vectors)
        np.testing.assert_allclose(detector.mean, vectors.mean(axis=0), atol=1e-8)
        np.testing.assert_allclose(detector.std, vectors.std(axis=0), atol=1e-6)


class TestMuSigmaTrigger:
    def _primed(self, vectors):
        detector = MuSigmaChange()
        feed(detector, vectors)
        # First should_finetune call installs the reference snapshot.
        assert not detector.should_finetune(0, vectors)
        return detector

    def test_no_trigger_without_change(self, rng):
        vectors = rng.normal(size=(50, 4))
        detector = self._primed(vectors)
        assert not detector.should_finetune(1, vectors)

    def test_triggers_on_mean_shift(self, rng):
        vectors = rng.normal(size=(50, 4))
        detector = self._primed(vectors)
        shifted = vectors + 10.0
        for i, (new, old) in enumerate(zip(shifted, vectors)):
            detector.observe(
                Update(UpdateKind.REPLACED, added=new, removed=old), t=50 + i
            )
        assert detector.should_finetune(100, shifted)

    def test_triggers_on_variance_blowup(self, rng):
        vectors = rng.normal(size=(50, 4))
        detector = self._primed(vectors)
        scaled = vectors * 5.0
        for i, (new, old) in enumerate(zip(scaled, vectors)):
            detector.observe(
                Update(UpdateKind.REPLACED, added=new, removed=old), t=50 + i
            )
        assert detector.should_finetune(100, scaled)

    def test_triggers_on_variance_collapse(self, rng):
        vectors = rng.normal(size=(50, 4))
        detector = self._primed(vectors)
        flat = vectors * 0.01
        for i, (new, old) in enumerate(zip(flat, vectors)):
            detector.observe(
                Update(UpdateKind.REPLACED, added=new, removed=old), t=50 + i
            )
        assert detector.should_finetune(100, flat)

    def test_notify_resets_reference(self, rng):
        vectors = rng.normal(size=(50, 4))
        detector = self._primed(vectors)
        shifted = vectors + 10.0
        for i, (new, old) in enumerate(zip(shifted, vectors)):
            detector.observe(
                Update(UpdateKind.REPLACED, added=new, removed=old), t=50 + i
            )
        assert detector.should_finetune(100, shifted)
        detector.notify_finetuned(100, shifted)
        assert not detector.should_finetune(101, shifted)

    def test_counts_operations(self, rng):
        detector = MuSigmaChange()
        feed(detector, rng.normal(size=(10, 4)))
        assert detector.ops.additions > 0
        detector.reset()
        assert detector.ops.additions == 0

    def test_invalid_aggregate(self):
        with pytest.raises(ValueError):
            MuSigmaChange(aggregate="median")

    def test_invalid_std_factor(self):
        with pytest.raises(ValueError):
            MuSigmaChange(std_factor=1.0)
