"""Tests for the VAR model."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import VARModel


def simulate_var1(a_matrix, nu, n_steps, rng, noise=0.05):
    n = a_matrix.shape[0]
    series = np.zeros((n_steps, n))
    for t in range(1, n_steps):
        series[t] = nu + a_matrix @ series[t - 1] + rng.normal(scale=noise, size=n)
    return series


def windows_from(series, w):
    return np.stack([series[i : i + w] for i in range(series.shape[0] - w)])


class TestVARModel:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            VARModel(order=0)
        with pytest.raises(ConfigurationError):
            VARModel(ridge=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            VARModel(order=2).predict(np.zeros((5, 2)))

    def test_window_too_short_for_order(self):
        model = VARModel(order=5)
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((3, 5, 2)))

    def test_recovers_var1_coefficients(self):
        rng = np.random.default_rng(0)
        a_true = np.array([[0.5, 0.2], [-0.1, 0.4]])
        nu_true = np.array([0.3, -0.2])
        series = simulate_var1(a_true, nu_true, 2000, rng)
        model = VARModel(order=1)
        model.fit(windows_from(series, 12))
        # Coefficient layout: rows are lag-1 channel weights.
        np.testing.assert_allclose(model.coefficients, a_true.T, atol=0.05)
        np.testing.assert_allclose(model.intercept, nu_true, atol=0.05)

    def test_forecast_accuracy(self):
        rng = np.random.default_rng(1)
        a_true = np.array([[0.7, 0.1], [0.0, 0.6]])
        series = simulate_var1(a_true, np.zeros(2), 1500, rng)
        model = VARModel(order=1)
        windows = windows_from(series, 10)
        model.fit(windows[:1000])
        errors = [
            np.linalg.norm(model.predict(window) - window[-1])
            for window in windows[1000:1100]
        ]
        assert np.mean(errors) < 0.2

    def test_prediction_window_too_short_rejected(self):
        rng = np.random.default_rng(2)
        model = VARModel(order=3)
        series = simulate_var1(np.eye(2) * 0.5, np.zeros(2), 200, rng)
        model.fit(windows_from(series, 10))
        with pytest.raises(ConfigurationError):
            model.predict(series[:3])

    def test_spectral_radius_stable_process(self):
        rng = np.random.default_rng(3)
        a_true = np.array([[0.5, 0.0], [0.0, 0.5]])
        series = simulate_var1(a_true, np.zeros(2), 1000, rng)
        model = VARModel(order=1)
        model.fit(windows_from(series, 10))
        assert model.companion_spectral_radius() < 1.0

    def test_constant_channel_handled_by_ridge(self):
        # A constant channel makes the design matrix singular without ridge.
        series = np.stack(
            [np.sin(np.arange(100.0) / 5), np.full(100, 2.0)], axis=1
        )
        model = VARModel(order=2, ridge=1e-4)
        loss = model.fit(windows_from(series, 10))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(model.predict(series[:10])))

    def test_higher_order(self):
        rng = np.random.default_rng(4)
        n = 1500
        series = np.zeros((n, 1))
        for t in range(2, n):
            series[t] = (
                0.5 * series[t - 1] + 0.3 * series[t - 2] + rng.normal(scale=0.05)
            )
        model = VARModel(order=2)
        model.fit(windows_from(series, 12))
        # lag-1 and lag-2 coefficients recovered.
        assert model.coefficients[0, 0] == pytest.approx(0.5, abs=0.05)
        assert model.coefficients[1, 0] == pytest.approx(0.3, abs=0.05)
