"""Tests for the RS-Forest density estimator."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.models import RandomizedSpaceTree, RSForest


@pytest.fixture
def cluster_windows(rng):
    """Windows whose newest rows form a tight cluster at the origin."""
    points = rng.normal(scale=0.5, size=(200, 3))
    return np.stack([np.tile(p, (4, 1)) for p in points])


class TestRandomizedSpaceTree:
    def test_invalid_box(self, rng):
        with pytest.raises(ValueError):
            RandomizedSpaceTree(np.ones(2), np.ones(2), depth=3, rng=rng)

    def test_invalid_depth(self, rng):
        with pytest.raises(ValueError):
            RandomizedSpaceTree(np.zeros(2), np.ones(2), depth=0, rng=rng)

    def test_counts_sum_to_population(self, rng):
        tree = RandomizedSpaceTree(np.full(2, -5.0), np.full(2, 5.0), 6, rng)
        data = rng.normal(size=(150, 2))
        tree.populate(data)

        def leaf_sum(node):
            if node.is_leaf:
                return node.count
            return leaf_sum(node.left) + leaf_sum(node.right)

        assert leaf_sum(tree.root) == 150

    def test_repopulate_resets(self, rng):
        tree = RandomizedSpaceTree(np.full(2, -5.0), np.full(2, 5.0), 5, rng)
        tree.populate(rng.normal(size=(100, 2)))
        tree.populate(rng.normal(size=(30, 2)))

        def leaf_sum(node):
            if node.is_leaf:
                return node.count
            return leaf_sum(node.left) + leaf_sum(node.right)

        assert leaf_sum(tree.root) == 30

    def test_density_zero_in_empty_region(self, rng):
        tree = RandomizedSpaceTree(np.full(2, -10.0), np.full(2, 10.0), 6, rng)
        tree.populate(rng.normal(scale=0.3, size=(200, 2)))
        assert tree.density(np.array([9.0, 9.0])) == 0.0

    def test_density_positive_in_dense_region(self, rng):
        tree = RandomizedSpaceTree(np.full(2, -10.0), np.full(2, 10.0), 4, rng)
        tree.populate(rng.normal(scale=0.3, size=(200, 2)))
        assert tree.density(np.zeros(2)) > 0.0


class TestRSForest:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            RSForest(n_trees=0)
        with pytest.raises(ConfigurationError):
            RSForest(depth=0)
        with pytest.raises(ConfigurationError):
            RSForest(margin=-0.1)

    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            RSForest().score(np.zeros(3))
        with pytest.raises(NotFittedError):
            RSForest().finetune(np.zeros((5, 4, 3)))

    def test_scores_bounded(self, cluster_windows):
        model = RSForest(seed=0)
        model.fit(cluster_windows)
        for window in cluster_windows[:20]:
            assert 0.0 <= model.score(window) <= 1.0

    def test_outlier_scores_near_one(self, cluster_windows):
        model = RSForest(seed=0)
        model.fit(cluster_windows)
        inlier = np.mean([model.score(w) for w in cluster_windows[:30]])
        outlier = model.score(np.tile(np.full(3, 4.0), (4, 1)))
        assert outlier > 0.9
        assert outlier > inlier + 0.3

    def test_finetune_keeps_structure(self, cluster_windows):
        model = RSForest(seed=0)
        model.fit(cluster_windows)
        trees_before = list(model.trees)
        model.finetune(cluster_windows + 0.2)
        assert model.trees == trees_before  # same objects, refreshed counts

    def test_finetune_adapts_density(self, cluster_windows, rng):
        model = RSForest(seed=0, margin=3.0)
        model.fit(cluster_windows)
        shifted = cluster_windows + 1.5  # still inside the expanded box
        before = model.score(shifted[0])
        model.finetune(shifted)
        after = model.score(shifted[0])
        assert after < before

    def test_bare_stream_vector_accepted(self, cluster_windows):
        model = RSForest(seed=0)
        model.fit(cluster_windows)
        assert 0.0 <= model.score(np.zeros(3)) <= 1.0
