"""Tests for the algorithm registry and Table I grid."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.exceptions import ConfigurationError, UnknownComponentError
from repro.core.registry import (
    AlgorithmSpec,
    build_algorithm_grid,
    build_detector,
    make_model,
    make_nonconformity,
    make_scorer,
    make_task1,
    make_task2,
)
from repro.learning import (
    KSWIN,
    AnomalyAwareReservoir,
    MuSigmaChange,
    SlidingWindow,
    UniformReservoir,
)
from repro.scoring import AnomalyLikelihood, AverageScore, RawScore


class TestAlgorithmGrid:
    def test_grid_has_26_algorithms(self):
        # The paper's headline: 26 distinct combinations (Table I).
        assert len(build_algorithm_grid()) == 26

    def test_grid_entries_unique(self):
        grid = build_algorithm_grid()
        assert len(set(grid)) == 26

    def test_gradient_models_have_six_combinations(self):
        grid = build_algorithm_grid()
        for model in ("online_arima", "ae", "usad", "nbeats"):
            assert sum(1 for s in grid if s.model == model) == 6

    def test_pcb_iforest_has_two_combinations(self):
        grid = build_algorithm_grid()
        pcb = [s for s in grid if s.model == "pcb_iforest"]
        assert len(pcb) == 2
        assert all(s.task2 == "kswin" for s in pcb)
        assert {s.task1 for s in pcb} == {"sw", "ares"}

    def test_nonconformity_pairing(self):
        for spec in build_algorithm_grid():
            expected = "iforest" if spec.model == "pcb_iforest" else "cosine"
            assert spec.nonconformity == expected

    def test_label(self):
        assert AlgorithmSpec("ae", "sw", "kswin").label == "ae+sw+kswin"


class TestSpecValidation:
    def test_unknown_model(self):
        with pytest.raises(UnknownComponentError):
            AlgorithmSpec("transformer", "sw", "kswin")

    def test_unknown_task1(self):
        with pytest.raises(UnknownComponentError):
            AlgorithmSpec("ae", "fifo", "kswin")

    def test_unknown_task2(self):
        with pytest.raises(UnknownComponentError):
            AlgorithmSpec("ae", "sw", "ddm")


class TestFactories:
    def test_make_task1_types(self):
        config = DetectorConfig()
        rng = np.random.default_rng(0)
        assert isinstance(make_task1("sw", config, rng), SlidingWindow)
        assert isinstance(make_task1("ures", config, rng), UniformReservoir)
        assert isinstance(make_task1("ares", config, rng), AnomalyAwareReservoir)
        with pytest.raises(UnknownComponentError):
            make_task1("lifo", config, rng)

    def test_make_task2_types(self):
        config = DetectorConfig()
        assert isinstance(make_task2("musigma", config), MuSigmaChange)
        assert isinstance(make_task2("kswin", config), KSWIN)
        with pytest.raises(UnknownComponentError):
            make_task2("page-hinkley", config)

    def test_make_scorer_types(self):
        config = DetectorConfig()
        assert isinstance(make_scorer("raw", config), RawScore)
        assert isinstance(make_scorer("avg", config), AverageScore)
        assert isinstance(make_scorer("al", config), AnomalyLikelihood)
        with pytest.raises(UnknownComponentError):
            make_scorer("ewma", config)

    def test_make_model_all_names(self):
        config = DetectorConfig(window=8)
        grid_and_extensions = (
            "online_arima", "ae", "usad", "nbeats", "pcb_iforest",
            "var", "knn", "kmeans", "rs_forest", "rnn", "lstm",
        )
        for name in grid_and_extensions:
            model = make_model(name, config, n_channels=3)
            assert model is not None
        with pytest.raises(UnknownComponentError):
            make_model("transformer", config, n_channels=3)

    def test_make_nonconformity(self):
        make_nonconformity("cosine")
        make_nonconformity("iforest")
        with pytest.raises(UnknownComponentError):
            make_nonconformity("mahalanobis")

    def test_model_kwargs_forwarded(self):
        config = DetectorConfig(window=8, model_kwargs={"hidden": 5})
        model = make_model("ae", config, n_channels=2)
        assert model.hidden == 5

    def test_kswin_config_forwarded(self):
        config = DetectorConfig(kswin_alpha=0.01, kswin_check_every=4)
        detector = make_task2("kswin", config)
        assert detector.alpha == 0.01
        assert detector.check_every == 4


class TestDetectorConfig:
    def test_defaults_valid(self):
        DetectorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 1},
            {"train_capacity": 1},
            {"scorer": "median"},
            {"scorer_k": 5, "scorer_k_short": 5},
            {"fit_epochs": 0},
            {"finetune_epochs": 0},
            {"kswin_check_every": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DetectorConfig(**kwargs)


class TestBuildDetector:
    def test_builds_every_grid_entry(self):
        config = DetectorConfig(window=8, train_capacity=12, fit_epochs=1)
        for spec in build_algorithm_grid():
            detector = build_detector(spec, n_channels=3, config=config)
            assert detector.window == 8

    def test_scorer_override(self):
        spec = AlgorithmSpec("ae", "sw", "musigma")
        detector = build_detector(
            spec, n_channels=2, config=DetectorConfig(scorer="al"), scorer="raw"
        )
        assert isinstance(detector.scorer, RawScore)
