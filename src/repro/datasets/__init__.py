"""Synthetic multivariate streams emulating the paper's benchmark corpora."""

from repro.datasets.anomalies import (
    inject_flatline,
    inject_level_shift,
    inject_noise_burst,
    inject_spike,
    inject_tremor,
    place_windows,
)
from repro.datasets.corpora import (
    CORPUS_BUILDERS,
    make_corpus,
    make_daphnet,
    make_drift_stream,
    make_exathlon,
    make_smd,
)
from repro.datasets.io import load_csv, load_npz, save_csv, save_npz
from repro.datasets.drift import (
    apply_gradual_mean_drift,
    apply_mean_shift,
    apply_variance_scale,
)
from repro.datasets.synthetic import (
    ar1_noise,
    latent_factor_mix,
    linear_trend,
    periodic_channel,
    random_walk,
    sinusoid,
)

__all__ = [
    "CORPUS_BUILDERS",
    "apply_gradual_mean_drift",
    "apply_mean_shift",
    "apply_variance_scale",
    "ar1_noise",
    "inject_flatline",
    "inject_level_shift",
    "inject_noise_burst",
    "inject_spike",
    "inject_tremor",
    "latent_factor_mix",
    "linear_trend",
    "load_csv",
    "load_npz",
    "make_corpus",
    "make_daphnet",
    "make_drift_stream",
    "make_exathlon",
    "make_smd",
    "periodic_channel",
    "place_windows",
    "random_walk",
    "save_csv",
    "save_npz",
    "sinusoid",
]
