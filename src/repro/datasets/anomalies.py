"""Anomaly injectors for synthetic streams.

Each injector mutates a values array in place over a given window and
returns nothing; callers track the windows as labels.  The shapes cover
the anomaly taxonomy the three paper corpora exhibit: short point spikes
(SMD), sustained level shifts / resource saturation (Exathlon) and
collective oscillation changes (Daphnet freezing-of-gait tremor).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import AnomalyWindow, FloatArray
from repro.datasets.synthetic import sinusoid


def place_windows(
    n_steps: int,
    n_windows: int,
    min_length: int,
    max_length: int,
    rng: np.random.Generator,
    forbidden_prefix: int = 0,
    min_gap: int = 10,
    max_tries: int = 1000,
) -> list[AnomalyWindow]:
    """Sample non-overlapping anomaly windows.

    Args:
        n_steps: stream length.
        n_windows: how many windows to place.
        min_length: minimum window length.
        max_length: maximum window length (inclusive).
        rng: random generator.
        forbidden_prefix: keep this initial region anomaly-free (the
            detector's warm-up / initial training range).
        min_gap: minimum separation between windows.
        max_tries: rejection-sampling budget.

    Returns:
        Windows sorted by start.  May return fewer than ``n_windows`` if
        the stream is too crowded (callers should check when exact counts
        matter).
    """
    if min_length < 1 or max_length < min_length:
        raise ValueError(
            f"need 1 <= min_length <= max_length, got {min_length}, {max_length}"
        )
    if forbidden_prefix + max_length >= n_steps:
        raise ValueError("stream too short for the requested windows")
    windows: list[AnomalyWindow] = []
    tries = 0
    while len(windows) < n_windows and tries < max_tries:
        tries += 1
        length = int(rng.integers(min_length, max_length + 1))
        start = int(rng.integers(forbidden_prefix, n_steps - length))
        candidate = AnomalyWindow(start, start + length)
        padded = AnomalyWindow(
            max(candidate.start - min_gap, 0), candidate.end + min_gap
        )
        if not any(padded.overlaps(w) for w in windows):
            windows.append(candidate)
    return sorted(windows, key=lambda w: w.start)


def _channel_subset(
    n_channels: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    count = max(1, int(round(fraction * n_channels)))
    return rng.choice(n_channels, size=min(count, n_channels), replace=False)


def inject_spike(
    values: FloatArray,
    window: AnomalyWindow,
    rng: np.random.Generator,
    magnitude: float = 5.0,
    channel_fraction: float = 0.3,
) -> None:
    """Additive spikes scaled to each channel's standard deviation."""
    channels = _channel_subset(values.shape[1], channel_fraction, rng)
    for channel in channels:
        scale = max(float(values[:, channel].std()), 1e-6)
        signs = rng.choice([-1.0, 1.0])
        values[window.start : window.end, channel] += signs * magnitude * scale


def inject_level_shift(
    values: FloatArray,
    window: AnomalyWindow,
    rng: np.random.Generator,
    magnitude: float = 3.0,
    channel_fraction: float = 0.5,
) -> None:
    """A sustained offset over the window (resource saturation shape)."""
    channels = _channel_subset(values.shape[1], channel_fraction, rng)
    for channel in channels:
        scale = max(float(values[:, channel].std()), 1e-6)
        values[window.start : window.end, channel] += magnitude * scale


def inject_noise_burst(
    values: FloatArray,
    window: AnomalyWindow,
    rng: np.random.Generator,
    magnitude: float = 4.0,
    channel_fraction: float = 0.5,
) -> None:
    """A burst of heavy noise over the window."""
    channels = _channel_subset(values.shape[1], channel_fraction, rng)
    length = len(window)
    for channel in channels:
        scale = max(float(values[:, channel].std()), 1e-6)
        values[window.start : window.end, channel] += rng.normal(
            scale=magnitude * scale, size=length
        )


def inject_flatline(
    values: FloatArray,
    window: AnomalyWindow,
    rng: np.random.Generator,
    channel_fraction: float = 0.5,
) -> None:
    """Freeze channels at their window-start value (sensor dropout shape)."""
    channels = _channel_subset(values.shape[1], channel_fraction, rng)
    for channel in channels:
        values[window.start : window.end, channel] = values[window.start, channel]


def inject_tremor(
    values: FloatArray,
    window: AnomalyWindow,
    rng: np.random.Generator,
    period: float = 8.0,
    damping: float = 0.25,
    channel_fraction: float = 0.7,
) -> None:
    """Daphnet-style freezing episode: gait collapses into a faster tremor.

    Inside the window, the original oscillation is damped to ``damping``
    of its amplitude and a higher-frequency, lower-amplitude trembling
    component is superimposed — the characteristic freezing-of-gait
    signature on shank/thigh accelerometers.
    """
    channels = _channel_subset(values.shape[1], channel_fraction, rng)
    length = len(window)
    for channel in channels:
        segment = values[window.start : window.end, channel]
        baseline = segment.mean()
        scale = max(float(values[:, channel].std()), 1e-6)
        tremor = sinusoid(
            length, period, amplitude=0.8 * scale, phase=rng.uniform(0, 2 * np.pi)
        )
        values[window.start : window.end, channel] = (
            baseline + damping * (segment - baseline) + tremor
        )
