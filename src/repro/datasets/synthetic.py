"""Building blocks for synthetic multivariate streams.

The paper evaluates on Daphnet, Exathlon and SMD — real recordings we do
not ship.  These primitives generate laptop-scale streams with the same
*structural* properties (periodicity, cross-channel correlation, concept
drift, labelled anomaly windows) so every code path the real corpora would
exercise is exercised here.  See DESIGN.md for the substitution table.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray


def sinusoid(
    n_steps: int,
    period: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
) -> FloatArray:
    """A sampled sine wave ``amplitude * sin(2 pi t / period + phase)``."""
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    t = np.arange(n_steps, dtype=np.float64)
    return amplitude * np.sin(2.0 * np.pi * t / period + phase)


def ar1_noise(
    n_steps: int,
    rho: float,
    sigma: float,
    rng: np.random.Generator,
) -> FloatArray:
    """A first-order autoregressive noise process ``z_t = rho z_{t-1} + e_t``."""
    if not -1.0 < rho < 1.0:
        raise ValueError(f"rho must be in (-1, 1) for stationarity, got {rho}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    shocks = rng.normal(scale=sigma, size=n_steps)
    noise = np.empty(n_steps, dtype=np.float64)
    running = 0.0
    for t in range(n_steps):
        running = rho * running + shocks[t]
        noise[t] = running
    return noise


def linear_trend(n_steps: int, slope: float, intercept: float = 0.0) -> FloatArray:
    """A deterministic linear trend."""
    return intercept + slope * np.arange(n_steps, dtype=np.float64)


def random_walk(
    n_steps: int,
    sigma: float,
    rng: np.random.Generator,
    damping: float = 0.999,
) -> FloatArray:
    """A (slightly damped) random walk for slow wandering baselines."""
    return ar1_noise(n_steps, rho=damping, sigma=sigma, rng=rng)


def latent_factor_mix(
    n_steps: int,
    n_channels: int,
    n_factors: int,
    rng: np.random.Generator,
    factor_rho: float = 0.95,
    factor_sigma: float = 1.0,
    noise_sigma: float = 0.1,
) -> FloatArray:
    """Correlated channels driven by shared latent AR(1) factors.

    Channels are linear mixtures of ``n_factors`` latent processes through
    a random loading matrix plus idiosyncratic noise — the standard way
    resource metrics of one cluster co-move (Exathlon-like data).

    Returns:
        Array of shape ``(n_steps, n_channels)``.
    """
    if n_factors < 1 or n_channels < 1:
        raise ValueError("n_factors and n_channels must be >= 1")
    factors = np.stack(
        [ar1_noise(n_steps, factor_rho, factor_sigma, rng) for _ in range(n_factors)],
        axis=1,
    )
    loadings = rng.normal(scale=1.0, size=(n_factors, n_channels))
    idiosyncratic = rng.normal(scale=noise_sigma, size=(n_steps, n_channels))
    return factors @ loadings + idiosyncratic


def periodic_channel(
    n_steps: int,
    period: float,
    rng: np.random.Generator,
    amplitude: float = 1.0,
    harmonics: int = 2,
    noise_sigma: float = 0.05,
) -> FloatArray:
    """A quasi-periodic channel: fundamental plus decaying harmonics + noise."""
    signal = sinusoid(n_steps, period, amplitude, phase=rng.uniform(0, 2 * np.pi))
    for harmonic in range(2, harmonics + 2):
        signal += sinusoid(
            n_steps,
            period / harmonic,
            amplitude / (harmonic**2),
            phase=rng.uniform(0, 2 * np.pi),
        )
    return signal + rng.normal(scale=noise_sigma, size=n_steps)
