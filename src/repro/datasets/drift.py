"""Concept-drift injectors: permanent regime changes from a given step on."""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray


def apply_mean_shift(
    values: FloatArray,
    at: int,
    rng: np.random.Generator,
    magnitude: float = 2.0,
    channel_fraction: float = 1.0,
) -> None:
    """Shift channel baselines from step ``at`` onward (abrupt drift)."""
    _check_at(values, at)
    channels = _subset(values.shape[1], channel_fraction, rng)
    for channel in channels:
        scale = max(float(values[:at, channel].std()), 1e-6)
        direction = rng.choice([-1.0, 1.0])
        values[at:, channel] += direction * magnitude * scale


def apply_variance_scale(
    values: FloatArray,
    at: int,
    rng: np.random.Generator,
    factor: float = 2.5,
    channel_fraction: float = 1.0,
) -> None:
    """Scale deviations around each channel's pre-drift mean by ``factor``."""
    _check_at(values, at)
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    channels = _subset(values.shape[1], channel_fraction, rng)
    for channel in channels:
        baseline = float(values[:at, channel].mean())
        values[at:, channel] = baseline + factor * (values[at:, channel] - baseline)


def apply_gradual_mean_drift(
    values: FloatArray,
    at: int,
    rng: np.random.Generator,
    magnitude: float = 2.0,
    ramp: int = 500,
    channel_fraction: float = 1.0,
) -> None:
    """Linearly ramp channel baselines over ``ramp`` steps (gradual drift)."""
    _check_at(values, at)
    if ramp < 1:
        raise ValueError(f"ramp must be >= 1, got {ramp}")
    n_steps = values.shape[0]
    channels = _subset(values.shape[1], channel_fraction, rng)
    profile = np.minimum(np.arange(n_steps - at, dtype=np.float64) / ramp, 1.0)
    for channel in channels:
        scale = max(float(values[:at, channel].std()), 1e-6)
        direction = rng.choice([-1.0, 1.0])
        values[at:, channel] += direction * magnitude * scale * profile


def _subset(n_channels: int, fraction: float, rng: np.random.Generator) -> np.ndarray:
    count = max(1, int(round(fraction * n_channels)))
    return rng.choice(n_channels, size=min(count, n_channels), replace=False)


def _check_at(values: FloatArray, at: int) -> None:
    if not 0 < at < values.shape[0]:
        raise ValueError(
            f"drift point {at} outside stream of length {values.shape[0]}"
        )
