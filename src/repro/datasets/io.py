"""Loading and saving labelled time series (NPZ and CSV).

The synthetic corpora cover the benchmarks, but adopters will want to run
the framework on their own recordings — including the real Daphnet,
Exathlon and SMD downloads.  These helpers read/write the
:class:`~repro.core.types.TimeSeries` container:

- **NPZ** round-trips everything (values, labels, name, drift points);
- **CSV** follows the common benchmark layout: one row per time step,
  one column per channel, plus an optional binary label column.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.core.types import TimeSeries, windows_from_labels


def save_npz(series: TimeSeries, path: str | Path) -> Path:
    """Serialise a series to a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        values=series.values,
        labels=series.labels,
        name=np.asarray(series.name),
        drift_points=np.asarray(series.drift_points, dtype=np.int64),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_npz(path: str | Path) -> TimeSeries:
    """Load a series saved by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        values = archive["values"]
        labels = archive["labels"]
        name = str(archive["name"])
        drift_points = [int(p) for p in archive["drift_points"]]
    return TimeSeries(
        values=values,
        labels=labels,
        name=name,
        windows=windows_from_labels(labels),
        drift_points=drift_points,
    )


def save_csv(series: TimeSeries, path: str | Path, label_column: str = "label") -> Path:
    """Write a series as CSV with a header row and a trailing label column."""
    path = Path(path)
    header = [f"channel_{i}" for i in range(series.n_channels)] + [label_column]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row, label in zip(series.values, series.labels):
            writer.writerow([f"{v:.10g}" for v in row] + [int(label)])
    return path


def load_csv(
    path: str | Path,
    label_column: str | None = "label",
    name: str | None = None,
    delimiter: str = ",",
) -> TimeSeries:
    """Load a series from CSV.

    Args:
        path: file to read; the first row must be a header.
        label_column: name of the binary label column, or ``None`` if the
            file carries no labels (all steps are treated as normal).
        name: series name; defaults to the file stem.
        delimiter: field separator.

    Raises:
        ValueError: on a missing label column, an empty file, or
            non-numeric channel data.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")

    header = [column.strip() for column in header]
    if label_column is not None:
        if label_column not in header:
            raise ValueError(
                f"label column {label_column!r} not in header {header}"
            )
        label_index = header.index(label_column)
    else:
        label_index = None

    channel_indices = [i for i in range(len(header)) if i != label_index]
    try:
        values = np.array(
            [[float(row[i]) for i in channel_indices] for row in rows]
        )
        if label_index is not None:
            labels = np.array([int(float(row[label_index])) for row in rows])
        else:
            labels = np.zeros(len(rows), dtype=np.int_)
    except (ValueError, IndexError) as error:
        raise ValueError(f"malformed CSV {path}: {error}") from error

    return TimeSeries(
        values=values,
        labels=labels,
        name=name if name is not None else path.stem,
        windows=windows_from_labels(labels),
    )
