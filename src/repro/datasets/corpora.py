"""Synthetic emulators of the paper's three benchmark corpora.

Each generator produces streams whose *structure* matches the real corpus
(channel count, periodicity, anomaly shape and rate, drift profile) at a
configurable, laptop-friendly scale.  The initial ``clean_prefix`` steps
of every stream are anomaly-free so the detector can build its first
training set there, mirroring the paper's use of the first 5000 steps.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import AnomalyWindow, TimeSeries, labels_from_windows
from repro.datasets.anomalies import (
    inject_level_shift,
    inject_noise_burst,
    inject_spike,
    inject_tremor,
    place_windows,
)
from repro.datasets.drift import (
    apply_gradual_mean_drift,
    apply_mean_shift,
    apply_variance_scale,
)
from repro.datasets.synthetic import (
    ar1_noise,
    latent_factor_mix,
    periodic_channel,
    random_walk,
    sinusoid,
)


def make_daphnet(
    n_series: int = 3,
    n_steps: int = 4000,
    clean_prefix: int = 600,
    n_anomalies: int = 5,
    seed: int = 0,
) -> list[TimeSeries]:
    """Daphnet-like wearable accelerometer streams (9 channels).

    The real corpus records three 3-axis accelerometers (ankle, thigh,
    trunk) of Parkinson's patients; anomalies are freezing-of-gait
    episodes where the walking oscillation collapses into a tremor.  The
    emulator superimposes a shared gait rhythm on nine channels with
    per-sensor amplitudes, injects tremor windows, and drifts the gait
    amplitude gradually (fatigue).
    """
    rng = np.random.default_rng(seed)
    series = []
    for index in range(n_series):
        gait_period = rng.uniform(28, 40)  # ~1 Hz walking at ~32 Hz sampling
        # Shared gait phase with jitter: stride timing is not metronomic.
        phase = 2 * np.pi * np.arange(n_steps) / gait_period + np.cumsum(
            rng.normal(scale=0.05, size=n_steps)
        )
        channels = []
        for sensor in range(3):  # ankle, thigh, trunk
            sensor_gain = [1.0, 0.7, 0.4][sensor]
            offset = rng.uniform(0, 2 * np.pi, size=3)
            # The three axes of one accelerometer see structurally
            # different signals: a gait-dominated axis, a harmonic-heavy
            # axis with amplitude modulation, and a posture axis that is
            # mostly slow sway.  This heterogeneity is what defeats a
            # single shared-coefficient linear model (the paper's Online
            # ARIMA treats all channels as one univariate stream).
            amplitude_mod = 1.0 + 0.4 * np.sin(
                2 * np.pi * np.arange(n_steps) / (gait_period * rng.uniform(6, 11))
            )
            gait_axis = sensor_gain * (
                np.sin(phase + offset[0]) + 0.3 * np.sin(2 * phase + offset[0])
            )
            harmonic_axis = (
                sensor_gain
                * amplitude_mod
                * (
                    0.5 * np.sin(2 * phase + offset[1])
                    + 0.35 * np.sin(3 * phase + offset[1])
                    + 0.3 * np.abs(np.sin(phase + offset[1]))
                )
            )
            posture_axis = (
                0.6 * random_walk(n_steps, 0.02, rng)
                + 0.3
                * sinusoid(n_steps, gait_period * 8, amplitude=1.0, phase=offset[2])
                + 0.15 * sensor_gain * np.sin(phase + offset[2])
            )
            for axis_signal in (gait_axis, harmonic_axis, posture_axis):
                channels.append(
                    axis_signal + rng.normal(scale=0.08, size=n_steps)
                )
        values = np.stack(channels, axis=1)

        drift_at = int(n_steps * 0.55)
        apply_gradual_mean_drift(
            values, drift_at, rng, magnitude=1.8, ramp=max(n_steps // 10, 50)
        )

        windows = place_windows(
            n_steps,
            n_anomalies,
            min_length=max(n_steps // 100, 10),
            max_length=max(n_steps // 40, 20),
            rng=rng,
            forbidden_prefix=clean_prefix,
        )
        for window in windows:
            # Vary episode severity: some freezes are subtle (mild damping,
            # few sensors), some are florid — recall should not be trivial.
            inject_tremor(
                values,
                window,
                rng,
                damping=rng.uniform(0.15, 0.5),
                channel_fraction=rng.uniform(0.4, 0.85),
            )
        series.append(
            TimeSeries(
                values=values,
                labels=labels_from_windows(windows, n_steps),
                name=f"daphnet/S{index:02d}R01",
                windows=windows,
                drift_points=[drift_at],
            )
        )
    return series


def make_exathlon(
    n_series: int = 3,
    n_steps: int = 4000,
    clean_prefix: int = 600,
    n_anomalies: int = 4,
    n_channels: int = 19,
    seed: int = 0,
) -> list[TimeSeries]:
    """Exathlon-like Spark-cluster traces: correlated metrics, long anomalies.

    The real corpus traces repeated Spark streaming runs (CPU, memory, IO
    and scheduler counters co-moving through shared load); anomalies such
    as bursty inputs or stalled executors last for extended intervals.
    The emulator mixes latent AR load factors into many channels, injects
    *long* saturation/burst windows and switches regime (trace restart)
    mid-stream — the combination that produces the paper's hallmark
    disparity between range-based precision/recall and the deeply negative
    point-wise NAB scores.
    """
    rng = np.random.default_rng(seed)
    series = []
    for index in range(n_series):
        values = latent_factor_mix(
            n_steps, n_channels, n_factors=4, rng=rng, noise_sigma=0.15
        )
        # Slow daily-like utilisation cycle on top of the factors.
        cycle = np.sin(
            2 * np.pi * np.arange(n_steps) / (n_steps / rng.uniform(2.0, 4.0))
        )
        values += 0.5 * np.outer(cycle, rng.uniform(0.2, 1.0, size=n_channels))

        drift_at = int(n_steps * 0.5)
        apply_mean_shift(values, drift_at, rng, magnitude=1.5, channel_fraction=0.7)

        windows = place_windows(
            n_steps,
            n_anomalies,
            min_length=max(n_steps // 20, 40),
            max_length=max(n_steps // 8, 80),
            rng=rng,
            forbidden_prefix=clean_prefix,
            min_gap=max(n_steps // 40, 20),
        )
        for i, window in enumerate(windows):
            if i % 2 == 0:
                inject_level_shift(
                    values,
                    window,
                    rng,
                    magnitude=rng.uniform(1.0, 3.5),
                    channel_fraction=rng.uniform(0.2, 0.6),
                )
            else:
                inject_noise_burst(
                    values,
                    window,
                    rng,
                    magnitude=rng.uniform(1.0, 3.0),
                    channel_fraction=rng.uniform(0.2, 0.6),
                )
        series.append(
            TimeSeries(
                values=values,
                labels=labels_from_windows(windows, n_steps),
                name=f"exathlon/app{index}",
                windows=windows,
                drift_points=[drift_at],
            )
        )
    return series


def make_smd(
    n_series: int = 3,
    n_steps: int = 4000,
    clean_prefix: int = 600,
    n_anomalies: int = 6,
    n_channels: int = 38,
    seed: int = 0,
) -> list[TimeSeries]:
    """SMD-like server machine metrics: many channels, sparse short anomalies.

    The real Server Machine Dataset has 38 metrics per machine, mostly
    quiet with occasional short spikes or level shifts on small channel
    subsets, and inter-week regime changes.  That sparsity yields the
    paper's SMD pattern: near-perfect precision with low recall.
    """
    rng = np.random.default_rng(seed)
    series = []
    for index in range(n_series):
        channels = []
        for channel in range(n_channels):
            kind = channel % 3
            if kind == 0:  # quiet utilisation metric: near-constant
                channels.append(
                    0.2 * ar1_noise(n_steps, 0.95, 0.01, rng) + rng.uniform(0.1, 0.6)
                )
            elif kind == 1:  # periodic load metric; the clean prefix must
                # cover several cycles so models see every phase in training
                channels.append(
                    periodic_channel(
                        n_steps,
                        period=max(clean_prefix / rng.uniform(3.0, 7.0), 8.0),
                        rng=rng,
                        amplitude=rng.uniform(0.3, 0.8),
                        noise_sigma=0.015,
                    )
                )
            else:  # slowly wandering counter-rate metric
                channels.append(0.4 * random_walk(n_steps, 0.01, rng))
        values = np.stack(channels, axis=1)

        drift_at = int(n_steps * 0.6)
        apply_variance_scale(values, drift_at, rng, factor=1.35, channel_fraction=0.4)

        windows = place_windows(
            n_steps,
            n_anomalies,
            min_length=max(n_steps // 200, 4),
            max_length=max(n_steps // 80, 12),
            rng=rng,
            forbidden_prefix=clean_prefix,
        )
        for i, window in enumerate(windows):
            if i % 2 == 0:
                inject_spike(
                    values,
                    window,
                    rng,
                    magnitude=rng.uniform(4.0, 9.0),
                    channel_fraction=rng.uniform(0.08, 0.25),
                )
            else:
                inject_level_shift(
                    values,
                    window,
                    rng,
                    magnitude=rng.uniform(3.0, 7.0),
                    channel_fraction=rng.uniform(0.1, 0.3),
                )
        series.append(
            TimeSeries(
                values=values,
                labels=labels_from_windows(windows, n_steps),
                name=f"smd/machine-{index + 1}-1",
                windows=windows,
                drift_points=[drift_at],
            )
        )
    return series


CORPUS_BUILDERS = {
    "daphnet": make_daphnet,
    "exathlon": make_exathlon,
    "smd": make_smd,
}


def make_corpus(name: str, **kwargs) -> list[TimeSeries]:
    """Build a named corpus (``daphnet`` / ``exathlon`` / ``smd``)."""
    try:
        builder = CORPUS_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus {name!r}; available: {sorted(CORPUS_BUILDERS)}"
        ) from None
    return builder(**kwargs)


def make_drift_stream(
    n_steps: int = 3000,
    n_channels: int = 4,
    drift_at: int | None = None,
    anomaly_at: int | None = None,
    anomaly_length: int = 20,
    seed: int = 0,
) -> TimeSeries:
    """The Figure 1 scenario: drift followed shortly by an artificial anomaly.

    A correlated stream drifts abruptly at ``drift_at``; an anomaly window
    is inserted ``anomaly_at`` steps later (defaults mirror the paper's
    "anomaly inserted from 90-110 after concept drift").
    """
    rng = np.random.default_rng(seed)
    drift_at = drift_at if drift_at is not None else int(n_steps * 0.6)
    anomaly_start = (
        anomaly_at if anomaly_at is not None else drift_at + 90
    )
    values = latent_factor_mix(n_steps, n_channels, n_factors=2, rng=rng)
    values += np.outer(
        np.sin(2 * np.pi * np.arange(n_steps) / 200.0),
        rng.uniform(0.5, 1.0, size=n_channels),
    )
    apply_mean_shift(values, drift_at, rng, magnitude=2.0)
    window = AnomalyWindow(anomaly_start, anomaly_start + anomaly_length)
    inject_spike(values, window, rng, magnitude=6.0, channel_fraction=0.75)
    return TimeSeries(
        values=values,
        labels=labels_from_windows([window], n_steps),
        name="figure1/drift-then-anomaly",
        windows=[window],
        drift_points=[drift_at],
    )
