"""A small neural-network substrate on numpy with manual backpropagation.

The paper's autoencoder, USAD and N-BEATS models need gradient-based
fine-tuning; since no deep-learning framework is available offline, this
package provides the minimum viable substrate: parameters, fully-connected
layers, common activations, a sequential container, mean-squared-error
losses and SGD/Adam optimizers.

All modules follow the same contract:

- ``forward(x)`` consumes a batch ``(B, in)`` and caches whatever the
  backward pass needs;
- ``backward(grad)`` consumes ``dL/d(output)`` of shape ``(B, out)``,
  accumulates parameter gradients and returns ``dL/d(input)``.

Gradients accumulate across backward calls until ``zero_grad`` is invoked,
matching the usual framework semantics.
"""

from repro.nn.arena import FleetIncompatible, ParameterArena
from repro.nn.init import glorot_uniform, zeros
from repro.nn.layers import (
    Dropout,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import fleet_mse_loss_grad, mse_loss, mse_loss_grad
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, AdamLane, Optimizer

__all__ = [
    "Adam",
    "AdamLane",
    "Dropout",
    "FleetIncompatible",
    "ParameterArena",
    "Identity",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "fleet_mse_loss_grad",
    "glorot_uniform",
    "mse_loss",
    "mse_loss_grad",
    "zeros",
]
