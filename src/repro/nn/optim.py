"""Optimizers for the numpy neural substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: list[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def step(self) -> None:
        """Apply one update using the gradients currently accumulated."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.value += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamLane:
    """Session-axis fused execution of K :class:`Adam` optimizers.

    Stacks the per-session first/second-moment buffers into ``(K, ...)``
    tensors aligned with a :class:`~repro.nn.arena.ParameterArena`'s fused
    Parameters, and replays Adam's exact update order on the stacks.  Every
    operation is elementwise over the session axis, and the bias
    corrections are computed per session with Python-float ``beta**count``
    (sessions may have taken different numbers of steps), so slice ``k``
    of every update is bitwise what session ``k``'s own ``Adam.step``
    would have produced.

    The lane works on stacked *copies* of the moment buffers; the member
    optimizers are only mutated by :meth:`writeback`.

    Args:
        optimizers: one plain :class:`Adam` per session, in arena session
            order, with identical hyperparameters and aligned parameter
            lists.
        arena: the (scratch) arena whose fused Parameters the lane
            updates; each ``optimizers[k].parameters[i]`` must resolve to
            row ``k`` of one fused Parameter.

    Raises:
        ValueError: when the optimizers are not fusable (not plain Adam,
            differing hyperparameters, or misaligned parameter lists).
    """

    def __init__(self, optimizers: list, arena) -> None:
        if not optimizers:
            raise ValueError("lane needs at least one optimizer")
        first = optimizers[0]
        if any(type(opt) is not Adam for opt in optimizers):
            raise ValueError("lane optimizers must be plain Adam instances")
        hyper = (first.lr, first.beta1, first.beta2, first.eps)
        if any(
            (opt.lr, opt.beta1, opt.beta2, opt.eps) != hyper for opt in optimizers
        ):
            raise ValueError("lane optimizers must share hyperparameters")
        n_params = len(first.parameters)
        if any(len(opt.parameters) != n_params for opt in optimizers):
            raise ValueError("lane optimizers must hold equal parameter counts")
        self.optimizers = list(optimizers)
        self.lr, self.beta1, self.beta2, self.eps = hyper
        self.fused = []
        for i in range(n_params):
            fused, row = arena.fused_row(first.parameters[i])
            if row != 0:
                raise ValueError("optimizer order does not match arena rows")
            for k, opt in enumerate(optimizers[1:], start=1):
                other, other_row = arena.fused_row(opt.parameters[i])
                if other is not fused or other_row != k:
                    raise ValueError(
                        "optimizer parameter lists are misaligned across sessions"
                    )
            self.fused.append(fused)
        self._m = [
            np.stack([opt._m[i] for opt in optimizers]) for i in range(n_params)
        ]
        self._v = [
            np.stack([opt._v[i] for opt in optimizers]) for i in range(n_params)
        ]
        self._counts = [opt._step_count for opt in optimizers]

    def zero_grad(self) -> None:
        for fused in self.fused:
            fused.zero_grad()

    def step(self) -> None:
        for k in range(len(self._counts)):
            self._counts[k] += 1
        # Per-session bias corrections via Python-float pow: numpy's
        # vectorized integer pow rounds differently and would break the
        # bitwise contract against per-session Adam.
        bias1 = np.array([1.0 - self.beta1**count for count in self._counts])
        bias2 = np.array([1.0 - self.beta2**count for count in self._counts])
        for fused, m, v in zip(self.fused, self._m, self._v):
            shape = (len(self._counts),) + (1,) * (m.ndim - 1)
            m *= self.beta1
            m += (1.0 - self.beta1) * fused.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * fused.grad**2
            m_hat = m / bias1.reshape(shape)
            v_hat = v / bias2.reshape(shape)
            fused.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def writeback(self) -> None:
        """Copy stacked moments and step counts back into the members."""
        for k, opt in enumerate(self.optimizers):
            opt._step_count = self._counts[k]
            for i in range(len(self.fused)):
                opt._m[i][...] = self._m[i][k]
                opt._v[i][...] = self._v[i][k]
