"""Optimizers for the numpy neural substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: list[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def step(self) -> None:
        """Apply one update using the gradients currently accumulated."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.value += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
