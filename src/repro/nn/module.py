"""Base classes for the numpy neural substrate."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.types import FloatArray


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes:
        value: the current parameter value.
        grad: the accumulated gradient, same shape as ``value``.
        name: optional identifier for debugging.
    """

    def __init__(self, value: FloatArray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "param"
        return f"Parameter({label}, shape={self.value.shape})"


class Module:
    """Base class for all layers and models in the substrate."""

    def parameters(self) -> Iterator[Parameter]:
        """Yield every :class:`Parameter` owned by this module (recursively)."""
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                yield attr
            elif isinstance(attr, Module):
                yield from attr.parameters()
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Parameter):
                        yield item
                    elif isinstance(item, Module):
                        yield from item.parameters()

    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())

    def forward(self, x: FloatArray) -> FloatArray:
        raise NotImplementedError

    def backward(self, grad: FloatArray) -> FloatArray:
        raise NotImplementedError

    def __call__(self, x: FloatArray) -> FloatArray:
        return self.forward(x)

    def __getstate__(self) -> dict:
        """Drop forward/backward scratch from pickles.

        Underscore-prefixed ndarray attributes hold the last forward
        pass's cached activations (the backward inputs).  They are
        overwritten by every forward, so a checkpoint that includes
        them depends on whatever batch shape last flowed through the
        module — dropping them keeps checkpoints a function of logical
        state only (and smaller).  A restored module must run a forward
        before a backward, which training always does.
        """
        state = dict(self.__dict__)
        for name, attr in state.items():
            if name.startswith("_") and isinstance(attr, np.ndarray):
                state[name] = None
        return state

    def state(self) -> list[FloatArray]:
        """Return copies of all parameter values (a checkpoint)."""
        return [param.value.copy() for param in self.parameters()]

    def load_state(self, state: list[FloatArray]) -> None:
        """Restore parameter values from a checkpoint produced by :meth:`state`."""
        params = list(self.parameters())
        if len(params) != len(state):
            raise ValueError(
                f"checkpoint has {len(state)} tensors, module has {len(params)}"
            )
        for param, value in zip(params, state):
            if param.value.shape != value.shape:
                raise ValueError(
                    f"shape mismatch restoring {param!r}: {value.shape}"
                )
            param.value = value.copy()
