"""Loss functions for the numpy neural substrate."""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray


def mse_loss(prediction: FloatArray, target: FloatArray) -> float:
    """Mean squared error over all elements of a batch."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    diff = prediction - target
    return float(np.mean(diff**2))


def mse_loss_grad(prediction: FloatArray, target: FloatArray) -> FloatArray:
    """Gradient of :func:`mse_loss` with respect to ``prediction``."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    return 2.0 * (prediction - target) / prediction.size


def fleet_mse_loss_grad(prediction: FloatArray, target: FloatArray) -> FloatArray:
    """Per-session :func:`mse_loss_grad` over a ``(K, ...)`` session stack.

    Each session slice is normalized by its *own* element count
    ``prediction[0].size``, so slice ``k`` of the result is bitwise
    ``mse_loss_grad(prediction[k], target[k])`` — the contract the fused
    training kernels rely on.
    """
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    if prediction.ndim < 2:
        raise ValueError(
            f"expected a (K, ...) session stack, got shape {prediction.shape}"
        )
    return 2.0 * (prediction - target) / prediction[0].size
