"""Loss functions for the numpy neural substrate."""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray


def mse_loss(prediction: FloatArray, target: FloatArray) -> float:
    """Mean squared error over all elements of a batch."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    diff = prediction - target
    return float(np.mean(diff**2))


def mse_loss_grad(prediction: FloatArray, target: FloatArray) -> FloatArray:
    """Gradient of :func:`mse_loss` with respect to ``prediction``."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    return 2.0 * (prediction - target) / prediction.size
