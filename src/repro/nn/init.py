"""Weight initializers for the neural substrate."""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> FloatArray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix.

    Samples from ``U(-limit, limit)`` with ``limit = sqrt(6 / (fan_in +
    fan_out))``, which keeps activation variance roughly constant across
    sigmoid/tanh layers.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> FloatArray:
    """He uniform initialization, appropriate for ReLU layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> FloatArray:
    """An all-zero tensor, used for biases."""
    return np.zeros(shape, dtype=np.float64)
