"""Create parameter-sharing copies of modules.

USAD applies its encoder (and second decoder) more than once inside a
single training pass.  Since each layer caches exactly one forward
activation, re-invoking the same instance would clobber the cache the
first application's backward pass needs.  :func:`shared_copy` returns a
structurally identical module whose :class:`~repro.nn.module.Parameter`
objects are the *same* instances as the original's — so gradients from
both applications accumulate into one set of weights — while every copy
keeps its own activation cache.
"""

from __future__ import annotations

from repro.nn.layers import Identity, Linear, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.module import Module


def shared_copy(module: Module) -> Module:
    """Return a cache-independent copy of ``module`` sharing its parameters."""
    if isinstance(module, Linear):
        copy = Linear.__new__(Linear)
        copy.in_features = module.in_features
        copy.out_features = module.out_features
        copy.weight = module.weight  # shared Parameter instance
        copy.bias = module.bias
        copy._input = None
        return copy
    if isinstance(module, Sequential):
        return Sequential(*(shared_copy(child) for child in module.modules))
    if isinstance(module, (Sigmoid, ReLU, Tanh, Identity)):
        return type(module)()
    raise TypeError(f"shared_copy does not support {type(module).__name__}")


def unique_parameters(*modules: Module) -> list:
    """Collect parameters from several (possibly sharing) modules, deduplicated.

    Optimizers must see each shared :class:`Parameter` exactly once,
    otherwise a single step would apply the update repeatedly.
    """
    seen: set[int] = set()
    unique = []
    for module in modules:
        for param in module.parameters():
            if id(param) not in seen:
                seen.add(id(param))
                unique.append(param)
    return unique
