"""Session-axis parameter arenas for cross-session fused inference.

A :class:`ParameterArena` takes K structurally identical module trees
(one per streaming session of the same algorithm spec) and re-homes each
aligned :class:`~repro.nn.module.Parameter` into one stacked
``(K, *shape)`` tensor: session ``k``'s parameter value becomes the row
view ``stack[k]``.  Because the optimizers mutate ``param.value`` only
in place, per-session fine-tunes keep writing *through* the views into
the arena — the fused tensors never go stale while a session trains.

The arena also produces a *mirror* of the module trees: structural
copies whose Parameters hold the stacked tensors themselves.  Feeding
the mirror a ``(K, ..., F)`` input runs one session-axis batched forward
(`np.matmul` maps stacked operands to per-slice GEMMs), bitwise
identical per slice to K separate per-session forwards.

Parameters shared across trees (USAD's ``shared_copy`` encoder/decoder)
are detected by object identity and mapped to a single stacked tensor,
preserving the sharing in the mirror.

Detaching (:meth:`detach` / :meth:`detach_row`) rebinds the session's
parameters to standalone copies of their rows.  In-place arithmetic on a
contiguous row view produces the same bits as on a standalone array, so
a detached detector checkpoints bitwise identically to one that never
joined an arena (pinned by ``tests/test_fleet.py``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


class FleetIncompatible(ValueError):
    """The session module trees cannot be fused into one arena."""


class ParameterArena:
    """Stacked weight storage plus a fused mirror for K module trees.

    Args:
        roots_per_session: for each session, the tuple of module roots to
            fuse (``model.fleet_modules()``).  All sessions must have
            structurally identical trees (same classes, shapes and
            non-parameter attributes).
        attach: when True (the default), each session parameter's value is
            rebound to a row view of its stack so in-place updates write
            through.  ``attach=False`` builds a *scratch* arena over
            copies: the members keep their own storage and the stacks only
            flow back through an explicit :meth:`writeback` — the mode the
            fused training kernels use so a failed/aborted fused fine-tune
            leaves every member untouched.

    Raises:
        FleetIncompatible: when the trees differ structurally, contain
            unfusable state (e.g. an RNG-carrying ``Dropout``), or share
            constant arrays whose values diverged between sessions.
    """

    def __init__(self, roots_per_session: list[tuple], attach: bool = True) -> None:
        if not roots_per_session:
            raise FleetIncompatible("arena needs at least one session")
        n_roots = len(roots_per_session[0])
        if any(len(roots) != n_roots for roots in roots_per_session):
            raise FleetIncompatible("sessions expose different root counts")
        self.n_sessions = len(roots_per_session)
        self.attached = attach
        #: aligned (source Parameters, stacked tensor) pairs, one per
        #: distinct Parameter position (shared Parameters appear once).
        self._bindings: list[tuple[list[Parameter], np.ndarray]] = []
        #: fused Parameter per binding (same order as ``_bindings``).
        self._fused: list[Parameter] = []
        #: id(member Parameter) -> (fused Parameter, session row).
        self._by_member: dict[int, tuple[Parameter, int]] = {}
        self._memo: dict[tuple[int, ...], Parameter] = {}
        self.mirror: tuple = tuple(
            self._mirror_module([roots[i] for roots in roots_per_session])
            for i in range(n_roots)
        )
        self._memo.clear()

    # ------------------------------------------------------------------
    def _mirror_module(self, aligned: list[Module]) -> Module:
        first = aligned[0]
        cls = type(first)
        if any(type(m) is not cls for m in aligned):
            raise FleetIncompatible(
                f"module class mismatch: {[type(m).__name__ for m in aligned]}"
            )
        mirror = object.__new__(cls)
        for name, attr in vars(first).items():
            values = [vars(m).get(name, _MISSING) for m in aligned]
            if any(v is _MISSING for v in values):
                raise FleetIncompatible(f"attribute {name!r} missing in a session")
            setattr(mirror, name, self._mirror_attr(name, values))
        return mirror

    def _mirror_attr(self, name: str, values: list):
        first = values[0]
        if isinstance(first, Parameter):
            return self._stack_parameters(values)
        if isinstance(first, Module):
            return self._mirror_module(values)
        if isinstance(first, (list, tuple)):
            if all(isinstance(item, Module) for item in first):
                mirrored = [
                    self._mirror_module([v[i] for v in values])
                    for i in range(len(first))
                ]
                return type(first)(mirrored)
            if not first:
                return type(first)(first)
            raise FleetIncompatible(f"cannot fuse container attribute {name!r}")
        if first is None or (
            name.startswith("_") and isinstance(first, np.ndarray)
        ):
            # Activation caches (``_input``, ``_mask``, ...): reset.
            return None
        if isinstance(first, np.ndarray):
            # Constant tensors (e.g. N-BEATS fixed basis matrices) must
            # agree across sessions; the mirror then shares one array
            # that broadcasts over the session axis.
            for other in values[1:]:
                if not np.array_equal(first, other):
                    raise FleetIncompatible(
                        f"constant array {name!r} differs between sessions"
                    )
            return first
        if isinstance(first, (bool, int, float, str)):
            if any(other != first for other in values[1:]):
                raise FleetIncompatible(
                    f"attribute {name!r} differs between sessions: {values}"
                )
            return first
        raise FleetIncompatible(
            f"attribute {name!r} of type {type(first).__name__} is not fusable"
        )

    def _stack_parameters(self, params: list[Parameter]) -> Parameter:
        key = tuple(id(p) for p in params)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        shape = params[0].value.shape
        if any(p.value.shape != shape for p in params):
            raise FleetIncompatible(
                f"parameter shape mismatch for {params[0].name!r}"
            )
        stack = np.stack([p.value for p in params])
        if self.attached:
            # Attach: each session's value becomes a view of its arena row,
            # so in-place optimizer updates keep the stack current.
            for k, param in enumerate(params):
                param.value = stack[k]
        fused = Parameter(stack, name=f"arena.{params[0].name}")
        self._memo[key] = fused
        self._bindings.append((list(params), stack))
        self._fused.append(fused)
        for k, param in enumerate(params):
            self._by_member[id(param)] = (fused, k)
        return fused

    # ------------------------------------------------------------------
    def synced(self) -> bool:
        """True while every session parameter still aliases its arena row.

        Rebinding ``param.value`` (e.g. ``Module.load_state``) silently
        breaks the aliasing; the fleet engine checks this before every
        fused call and rebuilds the arena when it fails.
        """
        return all(
            param.value.base is stack
            for params, stack in self._bindings
            for param in params
        )

    def detach_row(self, k: int) -> None:
        """Give session ``k`` standalone copies of its weights."""
        for params, stack in self._bindings:
            params[k].value = np.array(stack[k])

    def detach(self) -> None:
        """Detach every session (the arena keeps only stale copies)."""
        for k in range(self.n_sessions):
            self.detach_row(k)

    # ------------------------------------------------------------------
    # training support (scratch arenas)
    # ------------------------------------------------------------------
    def fused_row(self, param: Parameter) -> tuple[Parameter, int]:
        """Map a member Parameter to its ``(fused Parameter, session row)``.

        The fused optimizer lanes use this to align each session
        optimizer's parameter list with the stacked tensors.
        """
        entry = self._by_member.get(id(param))
        if entry is None:
            raise KeyError(f"parameter {param.name!r} is not bound in this arena")
        return entry

    def zero_grad(self) -> None:
        """Reset the gradients of every fused (stacked) Parameter."""
        for fused in self._fused:
            fused.zero_grad()

    def writeback(self) -> None:
        """Copy stacked values *and gradients* back into the members.

        For a scratch arena (``attach=False``) this is the only point at
        which a fused fine-tune mutates the member models; both arrays are
        copied in place (``[...]``), so members whose values are row views
        of a live inference arena keep writing through it.  Gradients are
        copied too: the member's post-training ``param.grad`` is part of
        its checkpoint bytes, and bitwise equality with the per-session
        path requires the final accumulated gradient to match.
        """
        for (params, stack), fused in zip(self._bindings, self._fused):
            for k, param in enumerate(params):
                param.value[...] = stack[k]
                param.grad[...] = fused.grad[k]


_MISSING = object()
