"""Layers for the numpy neural substrate: Linear, activations, Sequential."""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray
from repro.nn.init import glorot_uniform, he_uniform, zeros
from repro.nn.module import Module, Parameter


class Linear(Module):
    """A fully-connected layer ``y = x @ W + b``.

    Args:
        in_features: input dimensionality.
        out_features: output dimensionality.
        rng: random generator for weight initialization.
        init: ``"glorot"`` (default, for sigmoid/tanh stacks) or ``"he"``
            (for ReLU stacks).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "glorot",
    ) -> None:
        if init == "glorot":
            weight = glorot_uniform(in_features, out_features, rng)
        elif init == "he":
            weight = he_uniform(in_features, out_features, rng)
        else:
            raise ValueError(f"unknown init {init!r}, expected 'glorot' or 'he'")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight, name=f"linear{in_features}x{out_features}.W")
        self.bias = Parameter(zeros(out_features), name=f"linear{out_features}.b")
        self._input: FloatArray | None = None

    def forward(self, x: FloatArray) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None]
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {x.shape[-1]}"
            )
        self._input = x
        w = self.weight.value
        if w.ndim == 2:
            # Plain weights broadcast over any leading axes: (B, F),
            # (T, tile, F) stacked tiles, or (K, T, tile, F) fleet stacks
            # all reduce to the same per-slice (rows, F) @ (F, H) GEMM.
            out = np.matmul(x, w)
            out += self.bias.value
            return out
        # Session-axis fused weights: w is (K, F, H), bias (K, H).
        if x.ndim == 3:  # (K, B, F) @ (K, F, H)
            out = np.matmul(x, w)
            out += self.bias.value[:, None, :]
            return out
        if x.ndim == 4:  # (K, T, tile, F) @ broadcast (K, 1, F, H)
            out = np.matmul(x, w[:, None])
            out += self.bias.value[:, None, None, :]
            return out
        raise ValueError(
            f"fused Linear expects (K, B, F) or (K, T, tile, F) input, "
            f"got shape {x.shape}"
        )

    def backward(self, grad: FloatArray) -> FloatArray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad = np.atleast_2d(grad)
        w = self.weight.value
        if w.ndim == 2:
            self.weight.grad += self._input.T @ grad
            self.bias.grad += grad.sum(axis=0)
            return grad @ w.T
        # Session-axis batched backward: grad (K, B, H), input (K, B, F).
        if grad.ndim != 3 or self._input.ndim != 3:
            raise ValueError(
                "fused Linear backward expects (K, B, H) gradients from a "
                f"(K, B, F) forward, got {grad.shape} / {self._input.shape}"
            )
        self.weight.grad += np.matmul(self._input.transpose(0, 2, 1), grad)
        self.bias.grad += grad.sum(axis=1)
        return np.matmul(grad, w.transpose(0, 2, 1))


class Sigmoid(Module):
    """Element-wise logistic activation."""

    def __init__(self) -> None:
        self._output: FloatArray | None = None

    def forward(self, x: FloatArray) -> FloatArray:
        # Numerically stable piecewise formulation.
        out = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, -500, None))), 0.0)
        neg = x < 0
        if np.any(neg):
            ex = np.exp(np.clip(x, None, 500))
            out = np.where(neg, ex / (1.0 + ex), out)
        self._output = out
        return out

    def backward(self, grad: FloatArray) -> FloatArray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad * self._output * (1.0 - self._output)


class ReLU(Module):
    """Element-wise rectified linear activation."""

    def __init__(self) -> None:
        self._mask: FloatArray | None = None

    def forward(self, x: FloatArray) -> FloatArray:
        self._mask = (x > 0).astype(np.float64)
        return x * self._mask

    def backward(self, grad: FloatArray) -> FloatArray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class Tanh(Module):
    """Element-wise hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output: FloatArray | None = None

    def forward(self, x: FloatArray) -> FloatArray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad: FloatArray) -> FloatArray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._output**2)


class Identity(Module):
    """The identity map; useful as a configurable no-op activation."""

    def forward(self, x: FloatArray) -> FloatArray:
        return x

    def backward(self, grad: FloatArray) -> FloatArray:
        return grad


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode.

    The streaming models fine-tune on very small training sets (tens of
    windows), where a little stochastic regularisation measurably reduces
    overfitting between drift events.

    Args:
        rate: probability of zeroing an activation.
        rng: random generator (required so runs stay reproducible).
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.training = True
        self._rng = rng
        self._mask: FloatArray | None = None

    def forward(self, x: FloatArray) -> FloatArray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: FloatArray) -> FloatArray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Sequential(Module):
    """Compose modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: FloatArray) -> FloatArray:
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad: FloatArray) -> FloatArray:
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def set_training(self, training: bool) -> None:
        """Toggle training mode on every Dropout child."""
        for module in self.modules:
            if isinstance(module, Dropout):
                module.training = training
            elif isinstance(module, Sequential):
                module.set_training(training)
