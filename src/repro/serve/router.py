"""Sharded serving: consistent-hash routing over a worker-process fleet.

One :class:`~repro.serve.server.DetectionService` is GIL-bound — sixteen
sessions share one core no matter how many threads the TCP server runs
(``BENCH_serve.json``).  The router scales the *harness* without
touching the detector core: N worker processes
(:mod:`repro.serve.worker`), each running the existing service
unchanged, behind one front door that

- **routes by shard** — stream ids are consistent-hashed
  (:class:`HashRing`) over the workers, so ``create`` / ``ingest`` /
  ``score`` / ``evict`` / ``close`` each touch exactly one worker, and
  placement is deterministic across router restarts;
- **fans out** ``stats`` / ``ping`` / ``shutdown`` and folds the
  per-worker payloads into one fleet view — telemetry rollups via
  :func:`~repro.obs.merge_payloads`, ingest-latency percentiles via
  :func:`~repro.obs.merge_summaries` over the sessions' raw reservoir
  windows (percentiles over the union of samples, not averages of
  per-worker percentiles);
- **migrates live sessions** on the bitwise checkpoint spill files:
  ``evict`` on the source (flush + spill), drain the source's buffered
  results into the router, move the spill bytes with
  :func:`~repro.streaming.checkpoint.transfer_checkpoint`,
  ``create``-with-``resume`` on the target (sequence numbers continue
  from the checkpoint's stream clock), ``close`` the source.  Checkpoint
  round-trips are bitwise-exact, so a migrated stream's scores are
  identical to one that never moved;
- **supervises workers** — a dead connection triggers a respawn and
  re-homes the worker's streams from their spill files (streams that
  never spilled are restarted fresh and counted, not silently rewound).
  With the write-ahead log enabled (``worker.wal_dir``), a respawned
  worker replays its own logs before accepting traffic — in-flight
  points included — so every stream comes back bitwise-identical and
  the router counts ``streams_recovered`` instead of
  ``streams_restarted``;
- **admits fleet-wide** — ``queue_full`` + ``retry_after`` from the
  owning shard passes through to the client verbatim, and
  :meth:`RouterService.check_rebalance` moves streams off a shard whose
  merged latency p99 or ingest-rejection rate crosses the configured
  thresholds.

Everything the router speaks — to clients and to workers — is protocol
v1; the worker leg reuses :class:`~repro.serve.server.SocketServeClient`.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.exceptions import ConfigurationError, ReproError
from repro.obs import LatencyReservoir, Telemetry, merge_payloads, merge_summaries
from repro.serve.protocol import (
    ProtocolError,
    error_reply,
    ok_reply,
    parse_request,
)
from repro.serve.server import ServeConfig, SocketServeClient
from repro.serve.state import spill_filename
from repro.serve.worker import serve_config_to_payload
from repro.streaming.checkpoint import peek_checkpoint, transfer_checkpoint


class WorkerDown(ReproError):
    """A worker could not be reached, even after a respawn attempt."""


class UnknownStreamError(ReproError):
    """The router has no record of this stream id."""


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is hashed ``vnodes`` times onto a 64-bit ring; a key maps
    to the first node position at or after the key's own hash.  Virtual
    nodes smooth the load split (64 vnodes keep the max/min key share
    within a few tens of percent), and consistency bounds churn: adding
    or removing one node remaps only the keys that landed on its arcs
    (~1/N of the keyspace), not everything.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if not nodes:
            raise ConfigurationError("HashRing needs at least one node")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes = list(dict.fromkeys(nodes))
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            for replica in range(self.vnodes):
                points.append((self._hash(f"{node}#{replica}"), node))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [node for _, node in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    def lookup(self, key: str) -> str:
        """The node owning ``key`` (deterministic across processes)."""
        index = bisect.bisect_right(self._positions, self._hash(key))
        if index == len(self._positions):
            index = 0
        return self._owners[index]


# ----------------------------------------------------------------------
# worker supervision
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RouterConfig:
    """Everything a :class:`RouterService` is parameterized by.

    Attributes:
        n_workers: worker-process count (the shard count).
        host: address workers bind on (loopback; the fleet is one host).
        spill_dir: root checkpoint directory; worker ``i`` spills under
            ``<root>/worker-i`` and the router moves bytes between those
            subdirectories during migration (``None``: a fresh temporary
            directory).
        worker: the :class:`ServeConfig` every worker runs (its
            ``spill_dir`` field is overridden per worker).
        vnodes: virtual nodes per worker on the hash ring.
        spawn_timeout_s: bound on a worker printing its ready line.
        connect_timeout_s / request_timeout_s: worker-leg socket bounds.
        hot_p99_s: rebalance trigger — a shard whose merged ingest-
            latency p99 exceeds this many seconds is hot (``None``
            disables the latency trigger).
        hot_rejection_rate: rebalance trigger — a shard rejecting more
            than this fraction of ingest attempts (``queue_full``) since
            the last check is hot (``None`` disables).
        rebalance_max_moves: streams migrated off a hot shard per check.
        maintenance_interval_s: period of the background health loop
            (pings every worker — which respawns dead ones — then runs
            the rebalance check); ``None`` disables the thread, leaving
            death detection to the next routed request and rebalancing
            to explicit :meth:`RouterService.check_rebalance` calls.
    """

    n_workers: int = 2
    host: str = "127.0.0.1"
    spill_dir: str | None = None
    worker: ServeConfig = field(default_factory=ServeConfig)
    vnodes: int = 64
    spawn_timeout_s: float = 60.0
    connect_timeout_s: float = 30.0
    request_timeout_s: float = 120.0
    hot_p99_s: float | None = None
    hot_rejection_rate: float | None = None
    rebalance_max_moves: int = 2
    maintenance_interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.rebalance_max_moves < 1:
            raise ConfigurationError(
                f"rebalance_max_moves must be >= 1, got {self.rebalance_max_moves}"
            )


class WorkerHandle:
    """One supervised worker process + its protocol-v1 connection.

    All requests to a worker serialize on :attr:`lock` (one in-flight
    request per worker; the heavy lifting happens asynchronously in the
    worker's own drain thread).  A connection-level failure inside
    :meth:`request` triggers a respawn, fires ``on_respawn`` (the
    router's re-homing hook) and retries the request once — so the first
    operation that touches a dead worker heals the shard instead of
    failing.
    """

    def __init__(self, index: int, config: RouterConfig, spill_root: Path) -> None:
        self.index = index
        self.name = f"worker-{index}"
        self.config = config
        self.spill_dir = spill_root / self.name
        self.lock = threading.RLock()
        self.proc: subprocess.Popen | None = None
        self.client: SocketServeClient | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.respawns = 0
        #: router hook fired after a respawn, before the retry — re-homes
        #: this worker's streams from their spill files.
        self.on_respawn: Callable[["WorkerHandle"], None] | None = None
        self._recovering = False

    # ------------------------------------------------------------------
    def _command(self) -> list[str]:
        worker_config = {
            key: value
            for key, value in serve_config_to_payload(self.config.worker).items()
            if key != "spill_dir"
        }
        # Per-worker durability paths: any truthy wal_dir in the shared
        # worker config acts as the on-switch; every worker keeps its
        # write-ahead logs (and deterministic run log) under its own
        # spill directory so a respawned process finds exactly its own
        # streams to self-recover.
        if worker_config.get("wal_dir") is not None:
            worker_config["wal_dir"] = str(self.spill_dir / "wal")
        if worker_config.get("run_log") is not None:
            worker_config["run_log"] = str(self.spill_dir / "run_log.jsonl")
        # -c instead of -m: the package __init__ already imports
        # repro.serve.worker, and runpy warns when it re-executes a
        # module that is in sys.modules.
        return [
            sys.executable,
            "-u",
            "-c",
            "import repro.serve.worker as w; raise SystemExit(w.main())",
            "--host",
            self.config.host,
            "--port",
            "0",
            "--spill-dir",
            str(self.spill_dir),
            "--config",
            json.dumps(worker_config),
        ]

    def start(self) -> None:
        """Spawn the process, wait for its ready line, connect."""
        with self.lock:
            if self.proc is not None and self.proc.poll() is None:
                return
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            env = dict(os.environ)
            package_root = str(Path(__file__).resolve().parents[2])
            existing = env.get("PYTHONPATH")
            env["PYTHONPATH"] = (
                package_root if not existing
                else package_root + os.pathsep + existing
            )
            self.proc = subprocess.Popen(
                self._command(), stdout=subprocess.PIPE, env=env
            )
            ready = self._read_ready(self.proc, self.config.spawn_timeout_s)
            self.host, self.port = ready["host"], int(ready["port"])
            self.client = SocketServeClient(
                self.host,
                self.port,
                timeout=self.config.request_timeout_s,
                connect_timeout=self.config.connect_timeout_s,
            )

    def _read_ready(
        self, proc: subprocess.Popen, timeout: float
    ) -> dict[str, Any]:
        box: dict[str, Any] = {}

        def reader() -> None:
            line = proc.stdout.readline()
            box["line"] = line

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        thread.join(timeout=timeout)
        line = box.get("line")
        if not line:
            proc.kill()
            raise WorkerDown(
                f"{self.name} did not report ready within {timeout:.0f}s"
            )
        payload = json.loads(line)
        if not payload.get("ready"):
            raise WorkerDown(f"{self.name} sent a malformed ready line: {line!r}")
        return payload

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One protocol round-trip, healing the worker on failure."""
        with self.lock:
            if self.client is None or not self.alive():
                self._recover()
            try:
                return self.client.request(op, **fields)
            except (OSError, ConnectionError, ValueError) as error:
                if self._recovering:
                    raise WorkerDown(f"{self.name}: {error}") from error
                self._recover()
                try:
                    return self.client.request(op, **fields)
                except (OSError, ConnectionError, ValueError) as retry_error:
                    raise WorkerDown(
                        f"{self.name} failed again after respawn: {retry_error}"
                    ) from retry_error

    def _recover(self) -> None:
        """Respawn the process and fire the re-homing hook."""
        if self._recovering:
            raise WorkerDown(f"{self.name} died during its own recovery")
        self._recovering = True
        try:
            self._teardown(kill=True)
            self.start()
            self.respawns += 1
            if self.on_respawn is not None:
                self.on_respawn(self)
        finally:
            self._recovering = False

    def _teardown(self, kill: bool) -> None:
        if self.client is not None:
            try:
                self.client.disconnect()
            except OSError:
                pass
            self.client = None
        if self.proc is not None:
            if kill and self.proc.poll() is None:
                self.proc.kill()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5.0)
            if self.proc.stdout is not None:
                self.proc.stdout.close()
            self.proc = None

    def stop(self) -> None:
        """Graceful shutdown: the shutdown op, then reap the process."""
        with self.lock:
            if self.client is not None and self.alive():
                try:
                    self.client.request("shutdown")
                except (OSError, ConnectionError, ValueError):
                    pass
            self._teardown(kill=False)

    def kill(self) -> None:
        """Hard-kill the process (tests and chaos drills); the next
        routed request detects the dead connection and heals."""
        with self.lock:
            if self.proc is not None and self.proc.poll() is None:
                self.proc.kill()
                self.proc.wait(timeout=5.0)


# ----------------------------------------------------------------------
# the router service
# ----------------------------------------------------------------------
@dataclass
class StreamRecord:
    """What the router must remember per stream to route and recover."""

    spec: str | None
    n_channels: int
    config: dict[str, Any] | None
    scorer: str | None
    worker: int


class RouterService:
    """Protocol-v1 front door over the worker fleet.

    Drop-in for :class:`~repro.serve.server.DetectionService` wherever
    only :meth:`handle` / :meth:`shutdown` are used — in particular
    behind :class:`~repro.serve.server.DetectionServer` and
    :class:`~repro.serve.server.ServeClient`.

    Args:
        config: fleet parameters; defaults to :class:`RouterConfig`.
        telemetry: router-level sink (migrations, respawns, recoveries).
        autostart: spawn the workers (and the maintenance thread when
            configured).  Tests that drive spawn order themselves pass
            ``False`` and call :meth:`start`.
    """

    def __init__(
        self,
        config: RouterConfig | None = None,
        telemetry: Telemetry | None = None,
        autostart: bool = True,
    ) -> None:
        self.config = config if config is not None else RouterConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry(
            max_events=512
        )
        self.spill_root = Path(
            self.config.spill_dir
            if self.config.spill_dir is not None
            else tempfile.mkdtemp(prefix="repro-serve-fleet-")
        )
        self.workers = [
            WorkerHandle(index, self.config, self.spill_root)
            for index in range(self.config.n_workers)
        ]
        for worker in self.workers:
            worker.on_respawn = self._rehome
        self.ring = HashRing(
            [worker.name for worker in self.workers], vnodes=self.config.vnodes
        )
        self._by_name = {worker.name: worker for worker in self.workers}
        self.started_at = time.monotonic()
        self._registry_lock = threading.RLock()
        self._streams: dict[str, StreamRecord] = {}
        self._stream_locks: dict[str, threading.RLock] = {}
        #: results drained from a migration source, delivered (in order,
        #: ahead of the target's results) by the next ``score``.
        self._buffered: dict[str, list[dict[str, Any]]] = {}
        #: per-worker (ingested, rejected) counter snapshots for the
        #: rejection-rate rebalance trigger.
        self._admission_seen: dict[int, tuple[int, int]] = {}
        self._stop = threading.Event()
        self._maintenance: threading.Thread | None = None
        #: last fleet view, frozen at shutdown (stats after the fleet is
        #: down must not respawn workers just to answer).
        self._final_stats: dict[str, Any] | None = None
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker; start the maintenance loop if configured."""
        for worker in self.workers:
            worker.start()
        if (
            self.config.maintenance_interval_s is not None
            and self._maintenance is None
        ):
            self._maintenance = threading.Thread(
                target=self._maintenance_loop,
                name="repro-serve-router",
                daemon=True,
            )
            self._maintenance.start()

    def shutdown(self) -> None:
        """Stop the maintenance loop and the whole fleet; idempotent.

        The fleet view is snapshotted first, so ``stats`` keeps working
        (read-only) after shutdown instead of respawning dead workers to
        answer.
        """
        if self._stop.is_set():
            return
        if self._final_stats is None:
            try:
                self._final_stats = self.stats_payload()
            except (ReproError, OSError):
                self._final_stats = {"rollup": self.telemetry.as_dict()}
        self._stop.set()
        if self._maintenance is not None:
            self._maintenance.join(timeout=5.0)
            self._maintenance = None
        for worker in self.workers:
            worker.stop()

    def _maintenance_loop(self) -> None:
        interval = self.config.maintenance_interval_s
        while not self._stop.wait(timeout=interval):
            try:
                for worker in self.workers:
                    worker.request("ping")  # heals a dead worker
                self.check_rebalance()
            except (ReproError, OSError):
                # Next tick retries; per-request routing also heals.
                continue

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _lock_for(self, stream: str) -> threading.RLock:
        with self._registry_lock:
            lock = self._stream_locks.get(stream)
            if lock is None:
                lock = self._stream_locks[stream] = threading.RLock()
            return lock

    def _record(self, stream: str) -> StreamRecord:
        with self._registry_lock:
            record = self._streams.get(stream)
        if record is None:
            raise UnknownStreamError(
                f"router has no open session for stream {stream!r}"
            )
        return record

    def owner_of(self, stream: str) -> int:
        """The worker index currently serving ``stream``."""
        return self._record(stream).worker

    def placement_for(self, stream: str) -> int:
        """Ring placement for a new stream id."""
        return self._by_name[self.ring.lookup(stream)].index

    @staticmethod
    def _with_id(
        reply: dict[str, Any], request: dict[str, Any]
    ) -> dict[str, Any]:
        """Re-stamp the client's correlation id onto a worker reply."""
        reply = dict(reply)
        if "id" in request:
            reply["id"] = request["id"]
        else:
            reply.pop("id", None)
        return reply

    # ------------------------------------------------------------------
    # fleet verbs
    # ------------------------------------------------------------------
    def _handle_create(self, request: dict[str, Any]) -> dict[str, Any]:
        stream = request["stream"]
        with self._lock_for(stream):
            with self._registry_lock:
                exists = stream in self._streams
            if exists:
                return error_reply(
                    "create",
                    "duplicate_stream",
                    f"stream {stream!r} already has an open session",
                    request,
                )
            index = self.placement_for(stream)
            fields = {
                key: request[key]
                for key in (
                    "spec",
                    "n_channels",
                    "config",
                    "scorer",
                    "resume",
                    "select",
                )
                if key in request
            }
            reply = self.workers[index].request(
                "create", stream=stream, **fields
            )
            if reply.get("ok"):
                with self._registry_lock:
                    self._streams[stream] = StreamRecord(
                        spec=reply.get("spec", request.get("spec")),
                        n_channels=int(reply.get("n_channels")),
                        config=request.get("config"),
                        scorer=request.get("scorer"),
                        worker=index,
                    )
                reply = dict(reply)
                reply["worker"] = index
            return self._with_id(reply, request)

    def _handle_session_op(
        self, op: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        stream = request["stream"]
        with self._lock_for(stream):
            record = self._record(stream)
            fields = {
                key: value
                for key, value in request.items()
                if key not in ("v", "op", "id")
            }
            reply = self.workers[record.worker].request(op, **fields)
            reply = dict(reply)
            if reply.get("ok"):
                reply["worker"] = record.worker
                if op == "score":
                    buffered = self._buffered.pop(stream, None)
                    if buffered:
                        reply["results"] = buffered + list(
                            reply.get("results", [])
                        )
                elif op == "close":
                    with self._registry_lock:
                        self._streams.pop(stream, None)
                        self._stream_locks.pop(stream, None)
                        self._buffered.pop(stream, None)
            return self._with_id(reply, request)

    def _handle_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        blocks = []
        for worker in self.workers:
            try:
                reply = worker.request("ping")
                blocks.append(
                    {
                        "worker": worker.index,
                        "ok": bool(reply.get("ok")),
                        "uptime_seconds": reply.get("uptime_seconds"),
                    }
                )
            except WorkerDown as error:
                blocks.append(
                    {"worker": worker.index, "ok": False, "error": str(error)}
                )
        return ok_reply(
            "ping",
            request,
            uptime_seconds=round(time.monotonic() - self.started_at, 6),
            workers=blocks,
        )

    def _handle_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self.shutdown()
        return ok_reply("shutdown", request, stopping=True)

    # ------------------------------------------------------------------
    # stats rollup
    # ------------------------------------------------------------------
    @staticmethod
    def _reservoir_from_block(block: dict[str, Any]) -> LatencyReservoir:
        """Rebuild a session's reservoir from its stats block (window
        samples for percentiles, summary fields for lifetime totals)."""
        window = np.asarray(block.get("latency_window") or [], dtype=np.float64)
        reservoir = LatencyReservoir(capacity=max(len(window), 1))
        if len(window):
            reservoir.record_many(window)
        summary = block.get("ingest_latency") or {}
        count = int(summary.get("count", reservoir.count))
        if count:
            reservoir.count = count
            reservoir.total = float(summary.get("mean", 0.0)) * count
            reservoir.max_value = float(summary.get("max", reservoir.max_value))
        return reservoir

    def stats_payload(
        self, stream: str | None = None, latency_windows: bool = False
    ) -> dict[str, Any]:
        """The fleet view: per-worker blocks, merged sessions, rollups."""
        if self._stop.is_set() and self._final_stats is not None:
            return self._final_stats
        worker_blocks: list[dict[str, Any]] = []
        sessions: dict[str, dict[str, Any]] = {}
        payloads: list[dict[str, Any] | None] = [self.telemetry.as_dict()]
        reservoirs: list[LatencyReservoir] = []
        for worker in self.workers:
            fields: dict[str, Any] = {"latency_windows": True}
            if stream is not None:
                record = self._record(stream)
                if record.worker != worker.index:
                    continue
                fields["stream"] = stream
            try:
                reply = worker.request("stats", **fields)
            except WorkerDown as error:
                worker_blocks.append(
                    {
                        "worker": worker.index,
                        "pid": worker.pid,
                        "port": worker.port,
                        "alive": False,
                        "error": str(error),
                    }
                )
                continue
            blocks = reply.get("sessions", {})
            pending = 0
            for stream_id, block in blocks.items():
                block = dict(block)
                block["worker"] = worker.index
                reservoirs.append(self._reservoir_from_block(block))
                pending += int(block.get("pending_points", 0))
                if not latency_windows:
                    block.pop("latency_window", None)
                sessions[stream_id] = block
            payloads.append(reply.get("rollup"))
            worker_blocks.append(
                {
                    "worker": worker.index,
                    "pid": worker.pid,
                    "port": worker.port,
                    "alive": worker.alive(),
                    "respawns": worker.respawns,
                    "n_sessions": reply.get("n_sessions"),
                    "n_hydrated": reply.get("n_hydrated"),
                    "orphaned_spills": reply.get("orphaned_spills", []),
                    "orphaned_wals": reply.get("orphaned_wals", []),
                    "pending_points": pending,
                    "uptime_seconds": reply.get("uptime_seconds"),
                }
            )
        with self._registry_lock:
            n_streams = len(self._streams)
        return {
            "sessions": sessions,
            "workers": worker_blocks,
            "router": self.telemetry.as_dict(),
            "rollup": merge_payloads(payloads),
            "ingest_latency": merge_summaries(reservoirs),
            "n_workers": len(self.workers),
            "n_sessions": n_streams,
            "uptime_seconds": round(time.monotonic() - self.started_at, 6),
        }

    # ------------------------------------------------------------------
    # migration / recovery / rebalancing
    # ------------------------------------------------------------------
    def migrate(self, stream: str, target: int) -> dict[str, Any]:
        """Move one live stream to another shard, bitwise-losslessly.

        evict (flush + spill) on the source → drain its buffered results
        into the router → transfer the spill bytes → resume-``create``
        on the target at the checkpoint's stream clock → ``close`` the
        source.  The per-stream lock holds for the whole dance, so no
        ingest can slip into the source mid-move.
        """
        if not 0 <= target < len(self.workers):
            raise ConfigurationError(
                f"target worker {target} out of range 0..{len(self.workers) - 1}"
            )
        with self._lock_for(stream):
            record = self._record(stream)
            if record.worker == target:
                return {"stream": stream, "from": target, "to": target,
                        "moved": False}
            source = self.workers[record.worker]
            destination = self.workers[target]
            reply = source.request("evict", stream=stream)
            if not reply.get("ok"):
                raise ReproError(
                    f"migration evict failed for {stream!r}: {reply.get('error')}"
                )
            drained: list[dict[str, Any]] = []
            while True:
                reply = source.request("score", stream=stream, flush=False)
                if not reply.get("ok"):
                    raise ReproError(
                        f"migration drain failed for {stream!r}: "
                        f"{reply.get('error')}"
                    )
                drained.extend(reply.get("results", []))
                if not reply.get("pending_results"):
                    break
            name = spill_filename(stream)
            meta = transfer_checkpoint(
                source.spill_dir / name, destination.spill_dir / name
            )
            # meta["t"] is the index of the last processed point (-1 when
            # none); the next sequence number is one past it.
            seq = int(meta.get("t", -1)) + 1
            fields: dict[str, Any] = {
                "stream": stream,
                "n_channels": record.n_channels,
                "resume": {"seq": seq},
            }
            for key, value in (
                ("spec", record.spec),
                ("config", record.config),
                ("scorer", record.scorer),
            ):
                if value is not None:
                    fields[key] = value
            reply = destination.request("create", **fields)
            if not reply.get("ok"):
                (destination.spill_dir / name).unlink(missing_ok=True)
                raise ReproError(
                    f"migration resume failed for {stream!r}: "
                    f"{reply.get('error')} (stream stays on "
                    f"{source.name}, spilled)"
                )
            reply = source.request("close", stream=stream)
            if not reply.get("ok"):
                raise ReproError(
                    f"migration close failed for {stream!r}: {reply.get('error')}"
                )
            with self._registry_lock:
                record.worker = target
                if drained:
                    self._buffered.setdefault(stream, []).extend(drained)
            self.telemetry.count("sessions_migrated")
            self.telemetry.event(
                "migrate", stream=stream, source=source.index,
                target=target, seq=seq,
            )
            return {
                "stream": stream,
                "from": source.index,
                "to": target,
                "seq": seq,
                "buffered_results": len(drained),
                "moved": True,
            }

    def _rehome(self, worker: WorkerHandle) -> None:
        """Re-home a respawned worker's streams from their spill files.

        Called by the worker handle (under its lock) right after a
        respawn: streams with a spill checkpoint resume at the
        checkpoint's stream clock; streams that never spilled restart
        fresh — their in-memory state died with the process, which the
        router counts and logs rather than hiding.
        """
        self.telemetry.count("workers_respawned")
        with self._registry_lock:
            owned = sorted(
                stream
                for stream, record in self._streams.items()
                if record.worker == worker.index
            )
        for stream in owned:
            record = self._record(stream)
            fields: dict[str, Any] = {
                "stream": stream,
                "n_channels": record.n_channels,
            }
            for key, value in (
                ("spec", record.spec),
                ("config", record.config),
                ("scorer", record.scorer),
            ):
                if value is not None:
                    fields[key] = value
            spill = worker.spill_dir / spill_filename(stream)
            recovered = False
            if spill.exists():
                try:
                    meta = peek_checkpoint(spill)
                    # t = last processed index; resume one past it.
                    fields["resume"] = {"seq": int(meta.get("t", -1)) + 1}
                    recovered = True
                except (ValueError, OSError):
                    # Truncated/incompatible spill: fall through to a
                    # fresh restart rather than refusing to serve.
                    fields.pop("resume", None)
            reply = worker.request("create", **fields)
            if reply.get("ok"):
                self.telemetry.count(
                    "streams_recovered" if recovered else "streams_restarted"
                )
                self.telemetry.event(
                    "rehome",
                    stream=stream,
                    worker=worker.index,
                    from_spill=recovered,
                    seq=reply.get("seq", 0),
                )
            elif (
                (reply.get("error") or {}).get("type") == "duplicate_stream"
                and self.config.worker.wal_dir is not None
            ):
                # The respawned worker replayed this stream from its
                # write-ahead log before accepting traffic — in-flight
                # state included, nothing to re-home and nothing lost.
                self.telemetry.count("streams_recovered")
                self.telemetry.event(
                    "rehome", stream=stream, worker=worker.index, from_wal=True
                )
            else:
                self.telemetry.event(
                    "rehome_failed",
                    stream=stream,
                    worker=worker.index,
                    error=reply.get("error"),
                )

    def check_rebalance(self) -> dict[str, Any]:
        """Migrate streams off shards that run hot.

        A shard is hot when its merged ingest-latency p99 exceeds
        ``hot_p99_s``, or when the fraction of ingest attempts it
        rejected (``queue_full``) since the last check exceeds
        ``hot_rejection_rate``.  Up to ``rebalance_max_moves`` streams
        (deepest queues first) move from the hottest shard to the shard
        with the fewest pending points.  With both thresholds ``None``
        this is a no-op.
        """
        if self.config.hot_p99_s is None and self.config.hot_rejection_rate is None:
            return {"moved": [], "hot": []}
        loads: dict[int, dict[str, Any]] = {}
        for worker in self.workers:
            try:
                reply = worker.request("stats", latency_windows=True)
            except WorkerDown:
                continue
            blocks = reply.get("sessions", {})
            reservoirs = [
                self._reservoir_from_block(block) for block in blocks.values()
            ]
            counters = (reply.get("rollup") or {}).get("counters", {})
            ingested = int(counters.get("points_ingested", 0))
            rejected = int(counters.get("ingest_rejected", 0))
            seen_ingested, seen_rejected = self._admission_seen.get(
                worker.index, (0, 0)
            )
            self._admission_seen[worker.index] = (ingested, rejected)
            delta_attempts = (ingested - seen_ingested) + (
                rejected - seen_rejected
            )
            delta_rejected = rejected - seen_rejected
            loads[worker.index] = {
                "p99": merge_summaries(reservoirs)["p99"],
                "rejection_rate": (
                    delta_rejected / delta_attempts if delta_attempts else 0.0
                ),
                "pending": sum(
                    int(block.get("pending_points", 0))
                    for block in blocks.values()
                ),
                "streams": sorted(
                    blocks,
                    key=lambda s: (-int(blocks[s].get("pending_points", 0)), s),
                ),
            }
        hot = [
            index
            for index, load in loads.items()
            if (
                self.config.hot_p99_s is not None
                and load["p99"] > self.config.hot_p99_s
            )
            or (
                self.config.hot_rejection_rate is not None
                and load["rejection_rate"] > self.config.hot_rejection_rate
            )
        ]
        if not hot or len(loads) < 2:
            return {"moved": [], "hot": hot}
        hottest = max(hot, key=lambda index: (loads[index]["p99"], index))
        cold_candidates = [index for index in loads if index not in hot]
        if not cold_candidates:
            return {"moved": [], "hot": hot}
        target = min(
            cold_candidates, key=lambda index: (loads[index]["pending"], index)
        )
        moved = []
        for stream in loads[hottest]["streams"][: self.config.rebalance_max_moves]:
            try:
                outcome = self.migrate(stream, target)
            except ReproError as error:
                self.telemetry.event(
                    "rebalance_failed", stream=stream, error=str(error)
                )
                continue
            if outcome.get("moved"):
                moved.append(stream)
        if moved:
            self.telemetry.count("rebalances")
            self.telemetry.event(
                "rebalance", source=hottest, target=target, streams=moved
            )
        return {"moved": moved, "hot": hot, "target": target}

    # ------------------------------------------------------------------
    # protocol dispatch
    # ------------------------------------------------------------------
    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Map one protocol request to its reply (never raises)."""
        op = request.get("op") if isinstance(request, dict) else None
        try:
            request = parse_request(request)
            op = request["op"]
            if op == "ping":
                return self._handle_ping(request)
            if op == "shutdown":
                return self._handle_shutdown(request)
            if op == "stats":
                return ok_reply(
                    op,
                    request,
                    **self.stats_payload(
                        request.get("stream"),
                        latency_windows=bool(request.get("latency_windows")),
                    ),
                )
            if op == "create":
                return self._handle_create(request)
            if op in ("ingest", "score", "describe", "evict", "close"):
                return self._handle_session_op(op, request)
            raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover
        except ProtocolError as error:
            return error_reply(op, "bad_request", str(error), request)
        except UnknownStreamError as error:
            return error_reply(op, "unknown_stream", str(error), request)
        except WorkerDown as error:
            return error_reply(op, "worker_down", str(error), request)
        except ConfigurationError as error:
            return error_reply(op, "bad_config", str(error), request)
        except ReproError as error:
            return error_reply(op, "internal", str(error), request)
        except Exception as error:  # noqa: BLE001 — the router must not die
            return error_reply(
                op, "internal", f"{type(error).__name__}: {error}", request
            )
