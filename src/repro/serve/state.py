"""Session store: LRU residency with checkpoint-backed eviction.

A long-lived service accumulates sessions faster than memory allows —
every live detector carries model parameters, a training set and scorer
history.  The store keeps at most ``max_live`` detectors hydrated; the
least-recently-active evictable session beyond that is *spilled*:
serialized with :func:`~repro.streaming.checkpoint.save_detector`
(atomic write, ``CHECKPOINT_VERSION`` 3) into the spill directory and
dropped from memory.  The session object itself — sequence numbers,
queues, result buffer, telemetry — stays resident; only the detector is
swapped out.  The next point for an evicted stream rehydrates it
transparently, and because checkpoint round-trips are bitwise-exact
(``tests/test_checkpoint_roundtrip.py``), an evicted/rehydrated session
produces scores identical to one that never left memory.

Spill files are named by a hash of the stream id (ids are caller-chosen
and may not be filesystem-safe) and deleted on rehydrate and on close.

Locking: the store lock guards the session map and residency decisions;
detector state is guarded by each session's own lock.  The eviction scan
acquires session locks non-blocking and skips busy sessions, so the
store never deadlocks against a drain in progress — under pressure it
prefers staying briefly over capacity to stalling the hot path.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path
from threading import RLock
from typing import Callable

from repro.core.exceptions import ConfigurationError, ReproError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.serve.session import DetectorSession
from repro.streaming.checkpoint import load_detector, save_detector


class UnknownSessionError(ReproError):
    """A request addressed a stream id with no session."""


class DuplicateSessionError(ReproError):
    """A ``create`` reused a stream id that is still open."""


def spill_filename(stream_id: str) -> str:
    """Deterministic, filesystem-safe checkpoint name for a stream id."""
    digest = hashlib.blake2b(stream_id.encode("utf-8"), digest_size=10).hexdigest()
    return f"session-{digest}.ckpt"


class SessionStore:
    """All sessions of one service, with bounded detector residency.

    Args:
        spill_dir: directory for eviction checkpoints (created eagerly).
        max_live: hydrated-detector bound; a soft limit — when every
            candidate is busy or non-evictable the store stays over
            capacity rather than blocking.
        telemetry: fleet sink for eviction/rehydration counters.
        clock: monotonic time source shared with the sessions.
    """

    def __init__(
        self,
        spill_dir: str | Path,
        max_live: int = 64,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_live < 1:
            raise ConfigurationError(f"max_live must be >= 1, got {max_live}")
        self.spill_dir = Path(spill_dir)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.max_live = max_live
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._clock = clock
        self._lock = RLock()
        self._sessions: dict[str, DetectorSession] = {}

    # ------------------------------------------------------------------
    def create(
        self,
        stream_id: str,
        detector,
        n_channels: int,
        spec_label: str = "custom",
        telemetry: Telemetry | None = None,
    ) -> DetectorSession:
        """Register a new session and enforce the residency bound."""
        session = DetectorSession(
            stream_id,
            detector,
            n_channels=n_channels,
            spec_label=spec_label,
            telemetry=telemetry,
            clock=self._clock,
        )
        with self._lock:
            if stream_id in self._sessions:
                raise DuplicateSessionError(
                    f"stream {stream_id!r} already has an open session"
                )
            self._sessions[stream_id] = session
        self.telemetry.count("sessions_created")
        self.enforce_capacity(protect=session)
        return session

    def get(self, stream_id: str) -> DetectorSession:
        with self._lock:
            session = self._sessions.get(stream_id)
        if session is None:
            raise UnknownSessionError(f"no open session for stream {stream_id!r}")
        return session

    def sessions(self) -> list[DetectorSession]:
        """Snapshot of the open sessions (insertion order)."""
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def hydrated_count(self) -> int:
        with self._lock:
            return sum(1 for s in self._sessions.values() if s.hydrated)

    # ------------------------------------------------------------------
    # eviction / rehydration
    # ------------------------------------------------------------------
    def spill_path_for(self, stream_id: str) -> Path:
        return self.spill_dir / spill_filename(stream_id)

    def evict(self, session: DetectorSession) -> Path:
        """Spill one session's detector to its checkpoint file.

        The caller must ensure the session's queue is drained first
        (``flush`` before a forced evict); the capacity scan only picks
        empty-queue sessions.  Safe to call with the session lock held.
        """
        with session.lock:
            if not session.hydrated:
                return session.spill_path  # already spilled
            if not session.evictable:
                raise ConfigurationError(
                    f"session {session.stream_id!r} wraps a detector that "
                    "cannot checkpoint; it must stay resident"
                )
            path = self.spill_path_for(session.stream_id)
            save_detector(session.detector, path)
            session.detector = None
            session.spill_path = path
            session.n_evictions += 1
        self.telemetry.count("sessions_evicted")
        return path

    def rehydrate(self, session: DetectorSession) -> None:
        """Load a spilled session's detector back into memory.

        Called by the scheduler (under the session lock) right before a
        flush.  Re-attaches the session's telemetry — checkpoints never
        persist a sink — and frees the spill file, then re-enforces the
        residency bound, which may push out a colder session.
        """
        with session.lock:
            if session.hydrated:
                return
            if session.spill_path is None:
                raise UnknownSessionError(
                    f"session {session.stream_id!r} has no detector and no "
                    "spill checkpoint"
                )
            detector = load_detector(session.spill_path)
            if session.telemetry is not None:
                detector.telemetry = session.telemetry
            session.detector = detector
            session.spill_path.unlink(missing_ok=True)
            session.spill_path = None
            session.n_rehydrations += 1
            session.touch()
        self.telemetry.count("sessions_rehydrated")
        self.enforce_capacity(protect=session)

    def enforce_capacity(self, protect: DetectorSession | None = None) -> int:
        """Evict LRU sessions until at most ``max_live`` are hydrated.

        Candidates must be hydrated, evictable, idle (empty ingest
        queue) and not ``protect`` (the session that just triggered the
        check).  Busy sessions are skipped via a non-blocking lock
        acquire.  Returns the number of evictions performed.
        """
        evicted = 0
        while True:
            with self._lock:
                live = [s for s in self._sessions.values() if s.hydrated]
                if len(live) <= self.max_live:
                    return evicted
                candidates = sorted(
                    (
                        s
                        for s in live
                        if s is not protect and s.evictable and s.queue_depth == 0
                    ),
                    key=lambda s: s.last_active,
                )
            victim = None
            for candidate in candidates:
                if candidate.lock.acquire(blocking=False):
                    try:
                        if (
                            candidate.hydrated
                            and candidate.queue_depth == 0
                            and not candidate.closed
                        ):
                            self.evict(candidate)
                            victim = candidate
                            break
                    finally:
                        candidate.lock.release()
            if victim is None:
                # Everything is busy or pinned; stay over capacity
                # rather than blocking the hot path.
                self.telemetry.count("evictions_skipped")
                return evicted
            evicted += 1

    def evict_idle(self, max_idle_seconds: float) -> int:
        """Spill every evictable session idle longer than the threshold
        (independent of the capacity bound; a memory-release sweep)."""
        now = self._clock()
        evicted = 0
        for session in self.sessions():
            if not (
                session.hydrated
                and session.evictable
                and session.queue_depth == 0
                and session.idle_seconds(now) >= max_idle_seconds
            ):
                continue
            if session.lock.acquire(blocking=False):
                try:
                    if session.hydrated and session.queue_depth == 0:
                        self.evict(session)
                        evicted += 1
                finally:
                    session.lock.release()
        return evicted

    # ------------------------------------------------------------------
    def close(self, stream_id: str) -> DetectorSession:
        """Remove a session and its spill file; return it for a summary."""
        with self._lock:
            session = self._sessions.pop(stream_id, None)
        if session is None:
            raise UnknownSessionError(f"no open session for stream {stream_id!r}")
        with session.lock:
            session.closed = True
            session.detector = None
            if session.spill_path is not None:
                session.spill_path.unlink(missing_ok=True)
                session.spill_path = None
        self.telemetry.count("sessions_closed")
        return session
