"""Session store: LRU residency with checkpoint-backed eviction.

A long-lived service accumulates sessions faster than memory allows —
every live detector carries model parameters, a training set and scorer
history.  The store keeps at most ``max_live`` detectors hydrated; the
least-recently-active evictable session beyond that is *spilled*:
serialized with :func:`~repro.streaming.checkpoint.save_detector`
(atomic write, ``CHECKPOINT_VERSION`` 3) into the spill directory and
dropped from memory.  The session object itself — sequence numbers,
queues, result buffer, telemetry — stays resident; only the detector is
swapped out.  The next point for an evicted stream rehydrates it
transparently, and because checkpoint round-trips are bitwise-exact
(``tests/test_checkpoint_roundtrip.py``), an evicted/rehydrated session
produces scores identical to one that never left memory.

Spill files are named by a hash of the stream id (ids are caller-chosen
and may not be filesystem-safe) and deleted on rehydrate and on close.

Locking: the store lock guards the session map and residency decisions;
detector state is guarded by each session's own lock.  The eviction scan
acquires session locks non-blocking and skips busy sessions, so the
store never deadlocks against a drain in progress — under pressure it
prefers staying briefly over capacity to stalling the hot path.
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path
from threading import RLock
from typing import Callable

from repro.core.exceptions import ConfigurationError, ReproError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.serve.session import DetectorSession
from repro.serve.wal import WalConfig, wal_filename
from repro.streaming.checkpoint import load_detector, save_detector


class UnknownSessionError(ReproError):
    """A request addressed a stream id with no session."""


class DuplicateSessionError(ReproError):
    """A ``create`` reused a stream id that is still open."""


class SpillCollisionError(ReproError):
    """Two distinct stream ids hashed to the same spill filename.

    A 10-byte blake2b digest makes this astronomically unlikely, but a
    silent collision would let one stream's eviction overwrite another's
    checkpoint — cross-stream state corruption that surfaces as bitwise
    divergence much later.  The store refuses the second stream instead.
    """


def spill_filename(stream_id: str) -> str:
    """Deterministic, filesystem-safe checkpoint name for a stream id."""
    digest = hashlib.blake2b(stream_id.encode("utf-8"), digest_size=10).hexdigest()
    return f"session-{digest}.ckpt"


class SessionStore:
    """All sessions of one service, with bounded detector residency.

    Args:
        spill_dir: directory for eviction checkpoints (created eagerly).
        max_live: hydrated-detector bound; a soft limit — when every
            candidate is busy or non-evictable the store stays over
            capacity rather than blocking.
        telemetry: fleet sink for eviction/rehydration counters.
        clock: monotonic time source shared with the sessions.
    """

    def __init__(
        self,
        spill_dir: str | Path,
        max_live: int = 64,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
        wal_config: WalConfig | None = None,
    ) -> None:
        if max_live < 1:
            raise ConfigurationError(f"max_live must be >= 1, got {max_live}")
        self.spill_dir = Path(spill_dir)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.max_live = max_live
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._clock = clock
        #: when set, sessions may carry a write-ahead log; spills become
        #: durable (fsync) so an eviction checkpoint survives power loss
        #: the same way a barrier checkpoint does.
        self.wal_config = wal_config
        self._lock = RLock()
        self._sessions: dict[str, DetectorSession] = {}
        #: spill filename -> owning stream id (the collision guard).
        self._spill_claims: dict[str, str] = {}
        #: write-ahead logs found at startup that no live session owns —
        #: populated by the sweep, consumed by the service's recovery
        #: pass before it accepts traffic.
        self.orphaned_wals: list[Path] = []
        #: spill files found at startup that no live session owns — left
        #: by a crashed process.  Reported, never deleted: a router
        #: re-homing streams after a worker death adopts exactly these.
        self.orphaned_spills: list[Path] = self.startup_sweep()

    def startup_sweep(self) -> list[Path]:
        """Detect spill files no open session owns (crash leftovers).

        Returns the orphaned paths sorted by name and counts them into
        the fleet telemetry (``orphaned_spills``).  Files are *kept*:
        they may be adopted via :meth:`adopt` (crash recovery), and
        deleting state is the operator's call, not the store's.
        """
        with self._lock:
            owned = {
                spill_filename(stream_id) for stream_id in self._sessions
            }
            orphans = sorted(
                path
                for path in self.spill_dir.glob("session-*.ckpt")
                if path.name not in owned
            )
        if orphans:
            self.telemetry.count("orphaned_spills", len(orphans))
            self.telemetry.event(
                "orphaned_spills",
                n=len(orphans),
                files=[path.name for path in orphans[:16]],
            )
        if self.wal_config is not None:
            wal_dir = Path(self.wal_config.dir)
            wal_dir.mkdir(parents=True, exist_ok=True)
            with self._lock:
                owned_wals = {
                    wal_filename(stream_id) for stream_id in self._sessions
                }
                self.orphaned_wals = sorted(
                    path
                    for path in wal_dir.glob("session-*.wal")
                    if path.name not in owned_wals
                )
            if self.orphaned_wals:
                self.telemetry.event(
                    "orphaned_wals",
                    n=len(self.orphaned_wals),
                    files=[path.name for path in self.orphaned_wals[:16]],
                )
        return orphans

    def _claim_spill(self, stream_id: str) -> None:
        """Reserve the stream's spill filename; must hold the lock."""
        name = spill_filename(stream_id)
        owner = self._spill_claims.get(name)
        if owner is not None and owner != stream_id:
            raise SpillCollisionError(
                f"streams {owner!r} and {stream_id!r} both hash to spill "
                f"file {name!r}; refusing to share a checkpoint slot"
            )
        self._spill_claims[name] = stream_id

    # ------------------------------------------------------------------
    def create(
        self,
        stream_id: str,
        detector,
        n_channels: int,
        spec_label: str = "custom",
        telemetry: Telemetry | None = None,
        seq: int = 0,
    ) -> DetectorSession:
        """Register a new session and enforce the residency bound.

        ``seq`` is non-zero only for crash recovery: the session resumes
        a stream mid-sequence with a detector already rebuilt to that
        point (WAL replay), so result sequence numbers stay continuous.
        """
        session = DetectorSession(
            stream_id,
            detector,
            n_channels=n_channels,
            spec_label=spec_label,
            telemetry=telemetry,
            clock=self._clock,
            seq=seq,
        )
        with self._lock:
            if stream_id in self._sessions:
                raise DuplicateSessionError(
                    f"stream {stream_id!r} already has an open session"
                )
            self._claim_spill(stream_id)
            self._sessions[stream_id] = session
        self.telemetry.count("sessions_created")
        self.enforce_capacity(protect=session)
        return session

    def adopt(
        self,
        stream_id: str,
        n_channels: int,
        seq: int,
        spec_label: str = "custom",
        telemetry: Telemetry | None = None,
    ) -> DetectorSession:
        """Register a session resuming from a pre-placed spill file.

        The migration / crash-recovery entry point: the detector is
        *not* built — the session starts evicted, pointing at the spill
        checkpoint already sitting in this store's directory (placed by
        :func:`~repro.streaming.checkpoint.transfer_checkpoint`, or left
        by this worker's previous incarnation), and rehydrates on its
        first flush.  ``seq`` must be one past the checkpoint's last
        processed index (meta ``t + 1``) so result sequence numbers
        continue without a gap.
        """
        path = self.spill_path_for(stream_id)
        if not path.exists():
            raise UnknownSessionError(
                f"no spill checkpoint at {path} to resume stream "
                f"{stream_id!r} from"
            )
        session = DetectorSession(
            stream_id,
            None,
            n_channels=n_channels,
            spec_label=spec_label,
            telemetry=telemetry,
            clock=self._clock,
            seq=seq,
        )
        session.spill_path = path
        with self._lock:
            if stream_id in self._sessions:
                raise DuplicateSessionError(
                    f"stream {stream_id!r} already has an open session"
                )
            self._claim_spill(stream_id)
            self._sessions[stream_id] = session
            self.orphaned_spills = [
                orphan for orphan in self.orphaned_spills if orphan != path
            ]
        self.telemetry.count("sessions_adopted")
        return session

    def get(self, stream_id: str) -> DetectorSession:
        with self._lock:
            session = self._sessions.get(stream_id)
        if session is None:
            raise UnknownSessionError(f"no open session for stream {stream_id!r}")
        return session

    def sessions(self) -> list[DetectorSession]:
        """Snapshot of the open sessions (insertion order)."""
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def hydrated_count(self) -> int:
        with self._lock:
            return sum(1 for s in self._sessions.values() if s.hydrated)

    # ------------------------------------------------------------------
    # eviction / rehydration
    # ------------------------------------------------------------------
    def spill_path_for(self, stream_id: str) -> Path:
        return self.spill_dir / spill_filename(stream_id)

    def evict(self, session: DetectorSession) -> Path:
        """Spill one session's detector to its checkpoint file.

        The caller must ensure the session's queue is drained first
        (``flush`` before a forced evict); the capacity scan only picks
        empty-queue sessions.  Safe to call with the session lock held.
        """
        with session.lock:
            if not session.hydrated:
                return session.spill_path  # already spilled
            if not session.evictable:
                raise ConfigurationError(
                    f"session {session.stream_id!r} wraps a detector that "
                    "cannot checkpoint; it must stay resident"
                )
            path = self.spill_path_for(session.stream_id)
            if session.wal is not None:
                # Barrier first: the log shrinks to the in-flight tail
                # and the barrier checkpoint becomes a durable anchor
                # that outlives the spill file (rehydrate deletes the
                # spill; the barrier stays until the next one).
                session.wal.barrier(session.detector)
            save_detector(session.detector, path, durable=session.wal is not None)
            session.detector = None
            session.spill_path = path
            session.n_evictions += 1
        self.telemetry.count("sessions_evicted")
        return path

    def rehydrate(self, session: DetectorSession) -> None:
        """Load a spilled session's detector back into memory.

        Called by the scheduler (under the session lock) right before a
        flush.  Re-attaches the session's telemetry — checkpoints never
        persist a sink — and frees the spill file, then re-enforces the
        residency bound, which may push out a colder session.
        """
        with session.lock:
            if session.hydrated:
                return
            if session.spill_path is None:
                raise UnknownSessionError(
                    f"session {session.stream_id!r} has no detector and no "
                    "spill checkpoint"
                )
            detector = load_detector(session.spill_path)
            if session.telemetry is not None:
                detector.telemetry = session.telemetry
            session.detector = detector
            session.spill_path.unlink(missing_ok=True)
            session.spill_path = None
            session.n_rehydrations += 1
            session.touch()
        self.telemetry.count("sessions_rehydrated")
        self.enforce_capacity(protect=session)

    def enforce_capacity(self, protect: DetectorSession | None = None) -> int:
        """Evict LRU sessions until at most ``max_live`` are hydrated.

        Candidates must be hydrated, evictable, idle (empty ingest
        queue) and not ``protect`` (the session that just triggered the
        check).  Busy sessions are skipped via a non-blocking lock
        acquire.  Returns the number of evictions performed.
        """
        evicted = 0
        while True:
            with self._lock:
                live = [s for s in self._sessions.values() if s.hydrated]
                if len(live) <= self.max_live:
                    return evicted
                candidates = sorted(
                    (
                        s
                        for s in live
                        if s is not protect and s.evictable and s.queue_depth == 0
                    ),
                    key=lambda s: s.last_active,
                )
            victim = None
            for candidate in candidates:
                if candidate.lock.acquire(blocking=False):
                    try:
                        if (
                            candidate.hydrated
                            and candidate.queue_depth == 0
                            and not candidate.closed
                        ):
                            self.evict(candidate)
                            victim = candidate
                            break
                    finally:
                        candidate.lock.release()
            if victim is None:
                # Everything is busy or pinned; stay over capacity
                # rather than blocking the hot path.
                self.telemetry.count("evictions_skipped")
                return evicted
            evicted += 1

    def evict_idle(self, max_idle_seconds: float) -> int:
        """Spill every evictable session idle longer than the threshold
        (independent of the capacity bound; a memory-release sweep)."""
        now = self._clock()
        evicted = 0
        for session in self.sessions():
            if not (
                session.hydrated
                and session.evictable
                and session.queue_depth == 0
                and session.idle_seconds(now) >= max_idle_seconds
            ):
                continue
            if session.lock.acquire(blocking=False):
                try:
                    if session.hydrated and session.queue_depth == 0:
                        self.evict(session)
                        evicted += 1
                finally:
                    session.lock.release()
        return evicted

    # ------------------------------------------------------------------
    def close(self, stream_id: str) -> DetectorSession:
        """Remove a session and its on-disk state; return it for a summary.

        Ordering matters for crash safety: the caller drains buffered
        results *first* (see ``DetectionService.close_session``), then a
        final WAL barrier persists the detector's last state, and only
        then — as the very last step — are the spill, log and barrier
        checkpoint deleted.  A crash anywhere before the deletions
        leaves a fully recoverable stream on disk; the old order
        (delete, then drain) lost both the files and the undrained
        results in that window.
        """
        with self._lock:
            session = self._sessions.get(stream_id)
        if session is None:
            raise UnknownSessionError(f"no open session for stream {stream_id!r}")
        with session.lock:
            if session.wal is not None and session.hydrated:
                session.wal.barrier(session.detector)
            session.closed = True
            session.detector = None
            with self._lock:
                self._sessions.pop(stream_id, None)
                self._spill_claims.pop(spill_filename(stream_id), None)
            self._delete_session_files(session)
        self.telemetry.count("sessions_closed")
        return session

    def _delete_session_files(self, session: DetectorSession) -> None:
        """Remove a closed session's spill + WAL files (the final step).

        Split out so tests can inject a crash between bookkeeping and
        deletion and assert the stream is still recoverable.
        """
        if session.spill_path is not None:
            session.spill_path.unlink(missing_ok=True)
            session.spill_path = None
        if session.wal is not None:
            session.wal.close(delete=True)
