"""The detection service: protocol dispatch, in-process client, TCP server.

Three layers share one request path:

- :class:`DetectionService` is the transport-free core — session store +
  micro-batch scheduler + fleet telemetry behind a single
  :meth:`~DetectionService.handle` that maps protocol requests to
  replies.  Everything above it is plumbing.
- :class:`ServeClient` drives a service in-process *through the wire
  encoding* (every request and reply round-trips ``encode``/``decode``),
  so tests and examples exercise exactly what a network peer sees
  without a socket.
- :class:`DetectionServer` is a ``socketserver.ThreadingTCPServer``
  speaking the JSON-lines protocol; :class:`SocketServeClient` is its
  blocking client.

The service never computes scores differently from the offline harness:
ingested points flow through the same
:meth:`~repro.core.detector.StreamingAnomalyDetector.step_chunk` engine
:func:`~repro.streaming.runner.run_stream` uses, so served scores are
bitwise identical to an offline run over the same series — across any
micro-batch size and across evict/rehydrate cycles
(``tests/test_serve_e2e.py``).
"""

from __future__ import annotations

import dataclasses
import socket
import socketserver
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.exceptions import (
    ConfigurationError,
    ReproError,
    StreamError,
)
from repro.core.registry import AlgorithmSpec, build_detector
from repro.obs import RunLog, Telemetry, fingerprint_config, merge_payloads
from repro.select.postprocess import make_postprocessor
from repro.select.race import build_race
from repro.select.swap import expected_model_class
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    error_reply,
    ok_reply,
    parse_request,
)
from repro.serve.scheduler import MicroBatchScheduler, QueueFull, SchedulerConfig
from repro.serve.session import DetectorSession
from repro.serve.state import (
    DuplicateSessionError,
    SessionStore,
    SpillCollisionError,
    UnknownSessionError,
)
from repro.serve.wal import (
    SessionWal,
    WalConfig,
    WalCorruption,
    plan_replay,
    read_records,
)
from repro.streaming.checkpoint import (
    load_detector,
    peek_checkpoint,
    transfer_checkpoint,
)


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`DetectionService` is parameterized by.

    Attributes:
        default_spec: registry label used by ``create`` requests that
            omit a spec (``None`` makes the spec mandatory per request).
        scorer: anomaly-scoring override applied to built detectors.
        max_sessions: hydrated-detector bound of the session store; the
            LRU session beyond it spills to ``spill_dir``.
        spill_dir: eviction checkpoint directory (``None``: a fresh
            temporary directory per service).
        max_batch / max_delay_ms / queue_limit / result_limit: micro-
            batching and backpressure knobs (:class:`SchedulerConfig`).
        fused_drain / min_fleet: same-spec fused-drain knobs
            (:class:`SchedulerConfig`); fusion is bitwise neutral, the
            switch exists for A/B benchmarking and incident bisection.
        idle_timeout_s: when set, sessions idle this long are spilled
            even below the capacity bound (a memory-release sweep run by
            the drain loop).
        per_session_telemetry: attach a :class:`~repro.obs.Telemetry` to
            every session's detector (bitwise-neutral; feeds ``stats``).
        detector: hyper-parameters for detectors built from specs;
            ``create`` requests may override with a ``config`` dict.
        wal_dir: when set, every registry-built session carries a
            write-ahead ingest log in this directory and the service
            replays orphaned logs at startup (crash recovery) — see
            :mod:`repro.serve.wal`.  ``None`` disables durability.
        wal_fsync: WAL fsync policy, ``always`` / ``barrier`` /
            ``never`` (the durability/throughput trade).
        wal_barrier_interval: scored points between barrier
            checkpoints — the replay-cost bound.
        run_log: path for the deterministic JSON-lines run log
            (:class:`~repro.obs.RunLog`); ``None`` keeps it in memory
            only (still inspectable via ``service.run_log``) unless the
            WAL is off entirely, in which case no log is kept.
        select: default online-selection config applied to every
            registry-built ``create`` that does not carry its own
            ``select`` field — see
            :func:`repro.select.race.build_race` for the dict shape
            (``challengers`` list, policy name and flapping knobs).
            ``None`` disables selection unless a request asks for it.
    """

    default_spec: str | None = None
    scorer: str | None = None
    max_sessions: int = 64
    spill_dir: str | None = None
    max_batch: int = 64
    max_delay_ms: float = 25.0
    queue_limit: int = 512
    result_limit: int = 8192
    fused_drain: bool = True
    min_fleet: int = 2
    idle_timeout_s: float | None = None
    per_session_telemetry: bool = True
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    wal_dir: str | None = None
    wal_fsync: str = "barrier"
    wal_barrier_interval: int = 256
    run_log: str | None = None
    select: dict[str, Any] | None = None


def _json_safe(obj: Any) -> Any:
    """Replace non-finite floats with ``None`` so replies stay strict
    JSON (telemetry events may carry NaN losses from divergent fits)."""
    if isinstance(obj, dict):
        return {key: _json_safe(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(value) for value in obj]
    if isinstance(obj, float) and not np.isfinite(obj):
        return None
    return obj


class DetectionService:
    """Stateful online scoring over many concurrent streams.

    Args:
        config: service parameters; defaults to :class:`ServeConfig`.
        telemetry: fleet-level sink (sessions carry their own); created
            internally when omitted so ``stats`` always has counters.
        autostart: start the background drain thread.  Tests that want
            deterministic scheduling pass ``False`` and drive
            :meth:`pump` / ``score(flush=True)`` themselves.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        telemetry: Telemetry | None = None,
        autostart: bool = True,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry(
            max_events=512
        )
        self.spill_dir = Path(
            self.config.spill_dir
            if self.config.spill_dir is not None
            else tempfile.mkdtemp(prefix="repro-serve-spill-")
        )
        self.wal_config = (
            WalConfig(
                dir=self.config.wal_dir,
                fsync=self.config.wal_fsync,
                barrier_interval=self.config.wal_barrier_interval,
            )
            if self.config.wal_dir is not None
            else None
        )
        #: deterministic lifecycle audit log (always kept when the WAL
        #: is on — recovery equivalence is audited through it).
        self.run_log: RunLog | None = (
            RunLog(self.config.run_log)
            if self.config.run_log is not None or self.wal_config is not None
            else None
        )
        self.store = SessionStore(
            self.spill_dir,
            max_live=self.config.max_sessions,
            telemetry=self.telemetry,
            wal_config=self.wal_config,
        )
        self.scheduler = MicroBatchScheduler(
            self.store,
            SchedulerConfig(
                max_batch=self.config.max_batch,
                max_delay_ms=self.config.max_delay_ms,
                queue_limit=self.config.queue_limit,
                result_limit=self.config.result_limit,
                fused_drain=self.config.fused_drain,
                min_fleet=self.config.min_fleet,
            ),
            telemetry=self.telemetry,
        )
        self.scheduler.run_log = self.run_log
        if self.config.idle_timeout_s is not None:
            timeout = self.config.idle_timeout_s
            self.scheduler.on_idle = lambda: self.store.evict_idle(timeout)
        self.started_at = time.monotonic()
        self._shutdown = threading.Event()
        if self.wal_config is not None:
            # Recover crash leftovers *before* traffic: every orphaned
            # log becomes a live session again, with its surviving
            # entries replayed through the normal step_chunk path.
            self.recover_sessions()
        if autostart:
            self.scheduler.start()

    # ------------------------------------------------------------------
    # direct (in-process) API
    # ------------------------------------------------------------------
    def create_session(
        self,
        stream: str,
        spec: str | None = None,
        n_channels: int | None = None,
        config: dict[str, Any] | None = None,
        scorer: str | None = None,
        detector: Any = None,
        resume: dict[str, Any] | None = None,
        select: dict[str, Any] | None = None,
    ) -> DetectorSession:
        """Open a session from a registry spec (or a prebuilt detector).

        The ``detector`` escape hatch is in-process only — it is how
        ensembles and custom detectors become servable without a
        registry entry.

        ``resume`` (``{"seq": N}``) opens the session from a spill
        checkpoint already sitting in the spill directory instead of
        building a fresh detector — the receiving end of a live
        migration or a crash recovery.  ``seq`` must be the checkpoint's
        stream clock, so sequence numbers continue where the previous
        process stopped.

        ``select`` arms online algorithm selection: challenger shadow
        lanes racing the champion, with hot-swap on a durable win — see
        :func:`repro.select.race.build_race` for the dict shape.  The
        service-level default (:attr:`ServeConfig.select`) applies when
        the request carries none; ``{"challengers": []}`` is invalid, so
        a request cannot half-enable it.  Selection requires a
        registry-built session (the swap protocol needs the rebuild
        recipe); an optional ``postprocess`` list of stage names adds
        PySAD-style score calibration that survives swaps.
        """
        if detector is None:
            label = spec if spec is not None else self.config.default_spec
            if label is None:
                raise ConfigurationError(
                    "create needs a 'spec' (the server has no default)"
                )
            if n_channels is None or int(n_channels) < 1:
                raise ConfigurationError(
                    f"create needs 'n_channels' >= 1, got {n_channels!r}"
                )
            parts = label.split("+")
            if len(parts) != 3:
                raise ConfigurationError(
                    f"spec must look like 'model+task1+task2', got {label!r}"
                )
            try:
                detector_config = (
                    DetectorConfig(**config)
                    if config is not None
                    else self.config.detector
                )
            except TypeError as error:
                raise ConfigurationError(f"bad detector config: {error}") from None
            spec_label = label
            # Same label + channel count + hyper-parameters + scorer ⇒
            # same-shaped detectors, safe to group for fused drains
            # (the fleet engine re-verifies member uniformity anyway).
            fleet_key = (
                label,
                int(n_channels),
                fingerprint_config(
                    {
                        "detector": detector_config,
                        "scorer": scorer
                        if scorer is not None
                        else self.config.scorer,
                    }
                ),
            )
            if resume is None:
                detector = build_detector(
                    AlgorithmSpec(*parts),
                    n_channels=int(n_channels),
                    config=detector_config,
                    scorer=scorer if scorer is not None else self.config.scorer,
                )
        else:
            if n_channels is None:
                raise ConfigurationError(
                    "custom-detector sessions need an explicit n_channels"
                )
            if resume is not None:
                raise ConfigurationError(
                    "resume and a prebuilt detector are mutually exclusive"
                )
            spec_label = spec if spec is not None else "custom"
            fleet_key = None  # custom detectors stay on the per-session path
            detector_config = None  # not rebuildable: no WAL for this session
        session_telemetry = (
            Telemetry(max_events=64) if self.config.per_session_telemetry else None
        )
        if resume is not None:
            if not isinstance(resume, dict) or "seq" not in resume:
                raise ConfigurationError(
                    f"resume must be a dict with a 'seq' field, got {resume!r}"
                )
            seq = int(resume["seq"])
            if seq < 0:
                raise ConfigurationError(f"resume seq must be >= 0, got {seq}")
            session = self.store.adopt(
                stream,
                n_channels=int(n_channels),
                seq=seq,
                spec_label=spec_label,
                telemetry=session_telemetry,
            )
        else:
            session = self.store.create(
                stream,
                detector,
                n_channels=int(n_channels),
                spec_label=spec_label,
                telemetry=session_telemetry,
            )
        session.fleet_key = fleet_key
        if self.wal_config is not None and detector_config is not None:
            wal = SessionWal(self.wal_config, stream, telemetry=self.telemetry)
            meta = {
                "spec": spec_label,
                "n_channels": int(n_channels),
                "config": dataclasses.asdict(detector_config),
                "scorer": scorer if scorer is not None else self.config.scorer,
            }
            if resume is not None:
                meta["resume_seq"] = seq
            try:
                wal.open(meta)
                if resume is not None:
                    # Rehydration deletes the adopted spill file; copy it
                    # to the barrier slot first so recovery always has a
                    # durable anchor for the log's starting clock.
                    transfer_checkpoint(
                        session.spill_path, wal.barrier_path, durable=True
                    )
                    wal.barrier_t = seq - 1
            except ReproError:
                session.spill_path = None  # keep an adopted checkpoint on disk
                self.store.close(stream)
                raise
            session.wal = wal
        if select is None:
            select = self.config.select
        if select:
            try:
                if detector_config is None:
                    raise ConfigurationError(
                        "online selection requires a registry-built "
                        "session (custom detectors have no rebuild recipe)"
                    )
                session.race = build_race(
                    select,
                    champion_spec=spec_label,
                    n_channels=int(n_channels),
                    detector_config=detector_config,
                    scorer=scorer if scorer is not None else self.config.scorer,
                    fleet_key=fleet_key,
                    at=session.seq,
                )
                session.postprocess = [
                    make_postprocessor(name)
                    for name in select.get("postprocess", ())
                ]
            except ReproError:
                session.spill_path = None  # keep an adopted checkpoint on disk
                self.store.close(stream)
                raise
        if self.run_log is not None:
            entry: dict[str, Any] = {
                "stream": stream,
                "spec": spec_label,
                "seq": session.seq,
                "resumed": resume is not None,
            }
            if session.race is not None:
                entry["challengers"] = [
                    lane.spec_label for lane in session.race.lanes
                ]
                entry["policy"] = session.race.policy.name
            self.run_log.log("session_created", **entry)
        return session

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover_sessions(self) -> list[str]:
        """Replay every orphaned write-ahead log into a live session.

        Runs at construction (before the drain thread starts) when the
        WAL is enabled.  Each orphaned log left by a crashed incarnation
        becomes a live session again: the newest durable checkpoint
        (barrier or eviction spill) is adopted, the log entries past its
        stream clock are replayed through the ordinary ``step_chunk``
        engine, and the results land in the session's buffer exactly as
        if the crash never happened — unacknowledged ``score`` replies
        are re-emitted, and clients dedup by sequence number.

        A log the service cannot recover honestly (corruption, a missing
        acknowledged record) is left on disk for the operator and
        reported via telemetry; the service still starts.

        Returns the recovered stream ids.
        """
        recovered: list[str] = []
        for path in list(self.store.orphaned_wals):
            try:
                stream = self._recover_stream(path)
            except (ReproError, ValueError) as error:
                self.telemetry.count("wal_recovery_failed")
                self.telemetry.event(
                    "wal_recovery_failed", file=path.name, error=str(error)
                )
                if self.run_log is not None:
                    self.run_log.log(
                        "wal_recovery_failed", file=path.name, error=str(error)
                    )
                continue
            self.store.orphaned_wals.remove(path)
            recovered.append(stream)
        return recovered

    def _recover_stream(self, path: Path) -> str:
        """Recover one orphaned log; returns its stream id."""
        records, good_bytes, torn = read_records(path)
        if torn:
            # A crash mid-append tore the tail record.  It was never
            # acknowledged (append happens before the ack), so dropping
            # it is correct — the client still holds the data.
            with open(path, "rb+") as handle:
                handle.truncate(good_bytes)
            self.telemetry.count("wal_torn_tails")
        if not records:
            raise WalCorruption(f"log {path.name} has no complete records")
        stream = records[0].get("stream")
        if not isinstance(stream, str):
            raise WalCorruption(f"log {path.name} names no stream id")
        wal = SessionWal(self.wal_config, stream, telemetry=self.telemetry)
        if wal.path != path:
            raise WalCorruption(
                f"log {path.name} claims stream {stream!r}, which hashes "
                f"to {wal.path.name}"
            )
        # Newest durable checkpoint wins: a barrier checkpoint and an
        # eviction spill can both exist (e.g. a crash right after an
        # evict); their stream clocks decide, and replay resumes at the
        # winner's ``t + 1``.
        ckpt_t, ckpt_path = -1, None
        for candidate in (wal.barrier_path, self.store.spill_path_for(stream)):
            if not candidate.exists():
                continue
            meta = peek_checkpoint(candidate)
            if int(meta["t"]) > ckpt_t:
                ckpt_t, ckpt_path = int(meta["t"]), candidate
        open_meta, blocks, dropped = plan_replay(records, ckpt_t)
        if blocks and blocks[0][0] != ckpt_t + 1:
            raise WalCorruption(
                f"log {path.name} resumes at seq {blocks[0][0]} but the "
                f"newest checkpoint stops at t={ckpt_t}; acknowledged "
                "entries between them are gone"
            )
        n_channels = int(open_meta["n_channels"])
        spec_label = str(open_meta.get("spec", "custom"))
        scorer = open_meta.get("scorer")
        try:
            detector_config = DetectorConfig(**(open_meta.get("config") or {}))
        except TypeError as error:
            raise WalCorruption(
                f"log {path.name} carries an unbuildable detector config: "
                f"{error}"
            ) from None
        stale_label = False
        if ckpt_path is not None:
            detector = load_detector(ckpt_path)
            expected = expected_model_class(spec_label)
            actual = type(detector.model).__name__
            if expected is not None and actual != expected:
                # The checkpoint's model does not match the recipe the
                # log promises.  The swap protocol orders its record
                # before its checkpoint, so this cannot happen under a
                # durable fsync policy — but ``fsync="never"`` (or disk
                # reordering) can persist a swap checkpoint whose record
                # never landed.  The checkpoint is still the state that
                # scored the stream: serve it, but on the per-session
                # path, because fusing under the stale label would group
                # mismatched models into one fleet.
                stale_label = True
                self.telemetry.count("wal_stale_labels")
                self.telemetry.event(
                    "wal_stale_label",
                    stream=stream,
                    label=spec_label,
                    model=actual,
                )
        else:
            # No checkpoint yet (crash before the first barrier): the
            # open record carries everything needed to rebuild the
            # detector from scratch, and the log holds the full history.
            parts = spec_label.split("+")
            if len(parts) != 3:
                raise WalCorruption(
                    f"log {path.name} has no checkpoint and an "
                    f"unbuildable spec {spec_label!r}"
                )
            detector = build_detector(
                AlgorithmSpec(*parts),
                n_channels=n_channels,
                config=detector_config,
                scorer=scorer,
            )
        session = self.store.create(
            stream,
            detector,
            n_channels=n_channels,
            spec_label=spec_label,
            telemetry=(
                Telemetry(max_events=64)
                if self.config.per_session_telemetry
                else None
            ),
            seq=ckpt_t + 1,
        )
        # The eviction spill (if any) is adopted, not orphaned — keep the
        # file (a stale checkpoint is harmless and never deleted here)
        # but stop reporting it.
        spill = self.store.spill_path_for(stream)
        self.store.orphaned_spills = [
            orphan for orphan in self.store.orphaned_spills if orphan != spill
        ]
        session.fleet_key = (
            (
                spec_label,
                n_channels,
                fingerprint_config(
                    {"detector": detector_config, "scorer": scorer}
                ),
            )
            if not stale_label
            else None
        )
        # A crash right at a committed hot-swap boundary strands the
        # results of the block that triggered the swap (the swap
        # checkpoint trims it from replay) — the swap record carried
        # them, so re-emit into the result buffer ahead of any replay.
        reemitted = 0
        if int(open_meta.get("swap_t", -2)) == ckpt_t:
            for entry in open_meta.get("swap_results") or ():
                session.results.append(dict(entry))
                reemitted += 1
        # Replay through the normal scoring path: the chunked engine's
        # bitwise invariance to block boundaries makes the recovered
        # sequence identical to the uninterrupted run.
        replayed = 0
        for seq_from, rows in blocks:
            if seq_from != session.seq:
                raise WalCorruption(
                    f"replay for {stream!r} expected seq {session.seq}, "
                    f"log provides {seq_from}"
                )
            session.enqueue(rows)
            replayed += len(rows)
        while session.flush_once(self.config.max_batch):
            pass
        # Aborted swap intents (record durable, commit checkpoint not)
        # must leave the log before any future compaction could mistake
        # them for committed ones.
        wal.scrub_aborted_swaps(ckpt_t)
        wal.resume_at(ckpt_t)
        session.wal = wal
        if wal.due_for_barrier(session.scored):
            wal.barrier(session.detector)
        self.telemetry.count("wal_recovered")
        if replayed:
            self.telemetry.count("wal_replayed", replayed)
        if self.run_log is not None:
            self.run_log.log(
                "session_recovered",
                stream=stream,
                spec=spec_label,
                barrier_t=ckpt_t,
                replayed=replayed,
                dropped=dropped,
                torn=torn,
                swapped=bool(open_meta.get("swapped")),
                stale_label=stale_label,
                reemitted=reemitted,
            )
        return stream

    def ingest(
        self, stream: str, points: Any, expect: int | None = None
    ) -> dict[str, Any]:
        """Validate + enqueue one batch; the reply payload of ``ingest``.

        ``expect`` (the client's next expected sequence number) makes
        the verb idempotent: an exact replay of an already-accepted
        block — a retry after a lost reply — is re-acknowledged with
        ``duplicate: true`` instead of scored twice.
        """
        session = self.store.get(stream)
        block = session.validate_points(points)
        if len(block) == 0:
            return {
                "accepted": 0,
                "seq_from": None,
                "seq_to": None,
                "pending": session.queue_depth,
            }
        seq_from, seq_to, duplicate = self.scheduler.submit(
            session, block, expect=expect
        )
        reply = {
            "accepted": len(block),
            "seq_from": seq_from,
            "seq_to": seq_to,
            "pending": session.queue_depth,
        }
        if duplicate:
            reply["duplicate"] = True
        return reply

    def collect(
        self, stream: str, max_results: int | None = None, flush: bool = True
    ) -> dict[str, Any]:
        """Flush (optionally) and drain scored results; the ``score`` payload."""
        session = self.store.get(stream)
        if flush:
            self.scheduler.flush_session(session)
        results = session.collect(max_results)
        return {
            "results": results,
            "pending_points": session.queue_depth,
            "pending_results": session.n_results,
        }

    def evict(self, stream: str) -> dict[str, Any]:
        """Flush then spill one session (the operational ``evict`` verb)."""
        session = self.store.get(stream)
        self.scheduler.flush_session(session)
        path = self.store.evict(session)
        return {"stream": stream, "spilled": str(path), "hydrated": session.hydrated}

    def close_session(self, stream: str) -> dict[str, Any]:
        """Flush and drain, then remove the session and its files.

        The drain happens *before* anything is deleted and the drained
        results ride back in the close reply — closing a session can no
        longer lose scored-but-uncollected results, and the store's
        final-barrier-then-delete ordering keeps the stream recoverable
        up to the last instant (see :meth:`SessionStore.close`).
        """
        session = self.store.get(stream)
        if session.hydrated or session.spill_path is not None:
            self.scheduler.flush_session(session)
        results = session.collect()
        session = self.store.close(stream)
        if self.run_log is not None:
            self.run_log.log(
                "session_closed",
                stream=stream,
                n_points=session.seq,
                scored=session.scored,
            )
        return {
            "stream": stream,
            "n_points": session.seq,
            "scored": session.scored,
            "uncollected_results": len(results),
            "results": results,
        }

    def stats_payload(
        self, stream: str | None = None, latency_windows: bool = False
    ) -> dict[str, Any]:
        """Per-session blocks + fleet counters + the merged rollup.

        ``latency_windows=True`` includes each session's raw retained
        latency samples so a router can merge reservoirs fleet-wide.
        """
        now = time.monotonic()
        sessions = (
            [self.store.get(stream)] if stream is not None else self.store.sessions()
        )
        blocks = {
            session.stream_id: session.describe(
                now, latency_window=latency_windows
            )
            for session in sessions
        }
        fleet = self.telemetry.as_dict()
        rollup = merge_payloads(
            [fleet]
            + [block.get("telemetry") for block in blocks.values()]
        )
        return _json_safe(
            {
                "sessions": blocks,
                "fleet": fleet,
                "fleets": self.scheduler.fleet_manifests(),
                "rollup": rollup,
                "n_sessions": len(self.store),
                "n_hydrated": self.store.hydrated_count(),
                "orphaned_spills": [
                    path.name for path in self.store.orphaned_spills
                ],
                "orphaned_wals": [
                    path.name for path in self.store.orphaned_wals
                ],
                "wal": (
                    {
                        "dir": str(self.wal_config.dir),
                        "fsync": self.wal_config.fsync,
                        "barrier_interval": self.wal_config.barrier_interval,
                    }
                    if self.wal_config is not None
                    else None
                ),
                "run_log": (
                    self.run_log.summary() if self.run_log is not None else None
                ),
                "max_sessions": self.config.max_sessions,
                "uptime_seconds": round(now - self.started_at, 6),
            }
        )

    def describe_session(self, stream: str) -> dict[str, Any]:
        """Full introspection payload for one stream (the ``describe`` verb).

        Extends the per-session ``stats`` block with the selection-race
        state (when armed — champion and challenger lane statistics,
        promotion history) and the metadata of every on-disk checkpoint
        the stream could recover from, so an operator can audit a
        champion/challenger race or a durability story without reading
        the WAL directory by hand.
        """
        session = self.store.get(stream)
        info = session.describe(time.monotonic())
        info["stream"] = stream
        wal = session.wal
        checkpoints: dict[str, Any] = {}
        for name, path in (
            ("barrier", wal.barrier_path if wal is not None else None),
            ("spill", self.store.spill_path_for(stream)),
        ):
            if path is None or not path.exists():
                continue
            meta = peek_checkpoint(path)
            checkpoints[name] = {
                "path": str(path),
                "t": int(meta["t"]),
                "model": meta.get("model"),
            }
        info["checkpoints"] = checkpoints
        return _json_safe(info)

    def pump(self) -> int:
        """One manual drain pass (for ``autostart=False`` tests)."""
        return self.scheduler.pump()

    def shutdown(self) -> None:
        """Stop the drain thread; idempotent."""
        self._shutdown.set()
        self.scheduler.stop()

    # ------------------------------------------------------------------
    # protocol dispatch
    # ------------------------------------------------------------------
    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Map one protocol request to its reply (never raises)."""
        op = request.get("op") if isinstance(request, dict) else None
        try:
            request = parse_request(request)
            op = request["op"]
            stream = request.get("stream")
            if op == "ping":
                return ok_reply(op, request, uptime_seconds=round(
                    time.monotonic() - self.started_at, 6
                ))
            if op == "create":
                session = self.create_session(
                    stream,
                    spec=request.get("spec"),
                    n_channels=request.get("n_channels"),
                    config=request.get("config"),
                    scorer=request.get("scorer"),
                    resume=request.get("resume"),
                    select=request.get("select"),
                )
                return ok_reply(
                    op, request, stream=stream, spec=session.spec_label,
                    n_channels=session.n_channels, seq=session.seq,
                )
            if op == "ingest":
                if "points" not in request:
                    raise ProtocolError("ingest requires 'points'")
                return ok_reply(
                    op, request, stream=stream,
                    **self.ingest(
                        stream, request["points"], expect=request.get("expect")
                    ),
                )
            if op == "score":
                return ok_reply(
                    op, request, stream=stream,
                    **self.collect(
                        stream,
                        max_results=request.get("max"),
                        flush=bool(request.get("flush", True)),
                    ),
                )
            if op == "stats":
                return ok_reply(
                    op,
                    request,
                    **self.stats_payload(
                        stream,
                        latency_windows=bool(request.get("latency_windows")),
                    ),
                )
            if op == "describe":
                return ok_reply(op, request, **self.describe_session(stream))
            if op == "evict":
                return ok_reply(op, request, **self.evict(stream))
            if op == "close":
                return ok_reply(op, request, **self.close_session(stream))
            if op == "shutdown":
                self.shutdown()
                return ok_reply(op, request, stopping=True)
            raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover
        except QueueFull as error:
            return error_reply(
                op, "queue_full", str(error), request,
                retry_after=error.retry_after,
                depth=error.depth,
                limit=error.limit,
            )
        except ProtocolError as error:
            return error_reply(op, "bad_request", str(error), request)
        except UnknownSessionError as error:
            return error_reply(op, "unknown_stream", str(error), request)
        except DuplicateSessionError as error:
            return error_reply(op, "duplicate_stream", str(error), request)
        except SpillCollisionError as error:
            return error_reply(op, "spill_collision", str(error), request)
        except StreamError as error:
            return error_reply(op, "bad_points", str(error), request)
        except ConfigurationError as error:
            return error_reply(op, "bad_config", str(error), request)
        except ReproError as error:
            return error_reply(op, "internal", str(error), request)
        except Exception as error:  # noqa: BLE001 — the server must not die
            return error_reply(
                op, "internal", f"{type(error).__name__}: {error}", request
            )


# ----------------------------------------------------------------------
# clients
# ----------------------------------------------------------------------
class BaseServeClient:
    """Shared convenience verbs over an abstract ``request`` transport."""

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        raise NotImplementedError

    def _request(self, op: str, **fields: Any) -> dict[str, Any]:
        return self.request(op, **{k: v for k, v in fields.items() if v is not None})

    def create(
        self,
        stream: str,
        spec: str | None = None,
        n_channels: int | None = None,
        config: dict[str, Any] | None = None,
        scorer: str | None = None,
        select: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        return self._request(
            "create", stream=stream, spec=spec, n_channels=n_channels,
            config=config, scorer=scorer, select=select,
        )

    def ingest(
        self, stream: str, points: Any, expect: int | None = None
    ) -> dict[str, Any]:
        if isinstance(points, np.ndarray):
            points = points.tolist()
        return self._request(
            "ingest", stream=stream, points=points, expect=expect
        )

    def reconnect(self) -> bool:
        """Re-establish the transport after an I/O failure.

        Transport-less clients have nothing to do; the socket client
        overrides this.  Returns whether a retry is worth attempting.
        """
        return False

    def score(
        self, stream: str, max_results: int | None = None, flush: bool = True
    ) -> dict[str, Any]:
        return self._request("score", stream=stream, max=max_results, flush=flush)

    def stats(self, stream: str | None = None) -> dict[str, Any]:
        return self._request("stats", stream=stream)

    def describe(self, stream: str) -> dict[str, Any]:
        return self._request("describe", stream=stream)

    def evict(self, stream: str) -> dict[str, Any]:
        return self._request("evict", stream=stream)

    def close(self, stream: str) -> dict[str, Any]:
        return self._request("close", stream=stream)

    def ping(self) -> dict[str, Any]:
        return self._request("ping")

    def shutdown(self) -> dict[str, Any]:
        return self._request("shutdown")

    # ------------------------------------------------------------------
    def score_series(
        self,
        stream: str,
        values: np.ndarray,
        ingest_size: int = 100,
        evict_at: int | None = None,
        sleep: bool = False,
        max_queue_retries: int = 1000,
        max_io_retries: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stream a whole ``(T, N)`` array and gather every score.

        The canonical client loop: ingest in slices, honor ``queue_full``
        backpressure by collecting, backing off ``retry_after`` seconds
        (when ``sleep`` is set) and retrying — bounded by
        ``max_queue_retries`` *consecutive* rejections, so a server that
        stops draining fails the loop with a clear error instead of
        spinning forever.  ``evict_at`` forces a spill once that many
        points have been sent — the evict/rehydrate path the equivalence
        tests pin.

        Every ingest carries ``expect`` (the client's send cursor), so a
        request replayed after a lost reply — a timeout, a reconnect, a
        router retry — is deduplicated server-side instead of scored
        twice.  That idempotence is what makes the ``max_io_retries``
        transport-failure retry (via :meth:`reconnect`) safe.

        Returns ``(scores, nonconformities)`` aligned with ``values``.
        """
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        n = len(values)
        by_seq: dict[int, dict[str, Any]] = {}
        sent = 0
        evicted = False
        rejections = 0
        io_failures = 0
        while len(by_seq) < n:
            if evict_at is not None and not evicted and sent >= evict_at:
                reply = self.evict(stream)
                if not reply.get("ok"):
                    raise ReproError(f"evict failed: {reply.get('error')}")
                evicted = True
            if sent < n:
                try:
                    reply = self.ingest(
                        stream, values[sent : sent + ingest_size], expect=sent
                    )
                except (OSError, ConnectionError):
                    # The server may or may not have accepted the block;
                    # resend with the same ``expect`` — the server drops
                    # it as a duplicate if the first attempt landed.
                    io_failures += 1
                    if io_failures > max_io_retries or not self.reconnect():
                        raise
                    continue
                io_failures = 0
                if reply.get("ok"):
                    sent += reply["accepted"]
                    rejections = 0
                    continue
                error = reply.get("error", {})
                if error.get("type") != "queue_full":
                    raise ReproError(f"ingest failed: {error}")
                rejections += 1
                if rejections > max_queue_retries:
                    raise ReproError(
                        f"stream {stream!r}: ingest rejected queue_full "
                        f"{rejections} times in a row (retry_after "
                        f"{error.get('retry_after')!r}s); the server has "
                        "stopped draining"
                    )
                if sleep:
                    time.sleep(float(error.get("retry_after", 0.01)))
            reply = self.score(stream, flush=True)
            if not reply.get("ok"):
                raise ReproError(f"score failed: {reply.get('error')}")
            for result in reply["results"]:
                by_seq[result["seq"]] = result
        scores = np.array([by_seq[seq]["score"] for seq in range(n)])
        nonconformities = np.array(
            [by_seq[seq]["nonconformity"] for seq in range(n)]
        )
        return scores, nonconformities


class ServeClient(BaseServeClient):
    """In-process client: full wire encoding, no socket.

    Every request and reply passes through ``encode``/``decode_line``,
    so JSON round-trip fidelity (including float exactness) is part of
    what in-process tests cover.
    """

    def __init__(self, service: DetectionService) -> None:
        self.service = service

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        message = {"v": PROTOCOL_VERSION, "op": op, **fields}
        reply = self.service.handle(decode_line(encode(message)))
        return decode_line(encode(reply))


# ----------------------------------------------------------------------
# TCP layer
# ----------------------------------------------------------------------
class _ServeHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = decode_line(line)
            except ProtocolError as error:
                reply = error_reply(None, "bad_request", str(error))
            else:
                reply = self.server.service.handle(request)
            try:
                self.wfile.write(encode(reply))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if reply.get("op") == "shutdown" and reply.get("ok"):
                # shutdown() joins the serve_forever loop, which runs in
                # another thread — safe to trigger from a handler, but
                # done on a side thread so this handler can finish.
                threading.Thread(target=self.server.shutdown, daemon=True).start()
                return


class DetectionServer(socketserver.ThreadingTCPServer):
    """JSON-lines TCP front end over one :class:`DetectionService`.

    Bind to port 0 to let the OS pick a free port (tests do); the bound
    address is ``server_address``.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], service: DetectionService
    ) -> None:
        super().__init__(address, _ServeHandler)
        self.service = service


class SocketServeClient(BaseServeClient):
    """Blocking JSON-lines client for a :class:`DetectionServer`.

    Args:
        host / port: server address.
        timeout: per-request read timeout (seconds); a server that goes
            silent mid-request raises ``socket.timeout`` (an
            ``OSError``) instead of hanging the caller forever.  ``None``
            blocks indefinitely.
        connect_timeout: bound on establishing the connection; defaults
            to ``timeout``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        connect_timeout: float | None = None,
    ) -> None:
        self._address = (host, port)
        self._timeout = timeout
        self._connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            self._address, timeout=self._connect_timeout
        )
        self._sock.settimeout(self._timeout)
        self._rfile = self._sock.makefile("rb")

    def reconnect(self) -> bool:
        """Drop the (possibly poisoned) connection and dial again.

        After a timeout the old socket may still deliver the stale
        reply; a fresh connection guarantees request/reply alignment.
        Combined with idempotent ingest (``expect``), this makes
        :meth:`score_series` safe to resume over a flaky transport.
        """
        self.disconnect()
        self._connect()
        return True

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        self._sock.sendall(encode({"v": PROTOCOL_VERSION, "op": op, **fields}))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def disconnect(self) -> None:
        try:
            self._rfile.close()
        except OSError:  # already broken — closing is best-effort
            pass
        self._sock.close()

    def __enter__(self) -> "SocketServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.disconnect()
