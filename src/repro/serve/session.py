"""One live detector behind the service: queue, results, idle tracking.

A :class:`DetectorSession` wraps one detector (usually a
:class:`~repro.core.detector.StreamingAnomalyDetector` built from a
registry spec, but any object exposing the ``step_chunk`` contract works
— score-fusion ensembles included) with the state the service needs
around it:

- a **monotonic sequence number** per ingested point, so every scored
  result can be matched to the exact stream position it came from even
  though scoring happens asynchronously in micro-batches;
- a bounded **ingest queue** (filled by the scheduler's backpressure
  gate) and a bounded **result buffer** (drained by ``score`` requests);
- a per-session :class:`~repro.obs.Telemetry` attached to the detector,
  so ``stats`` can report per-stream counters and stage timers — and a
  fleet rollup, since telemetry payloads merge;
- **idle-time tracking** (``last_active``) that orders LRU eviction in
  the session store.

Sessions own no locks on the store; their own ``lock`` serializes
detector stepping, queue mutation and spill/rehydrate transitions.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.detector import StreamingAnomalyDetector
from repro.core.exceptions import StreamError
from repro.core.types import count_finetunes
from repro.obs import LatencyReservoir, Telemetry


class DetectorSession:
    """State of one live stream inside the detection service.

    Args:
        stream_id: the caller-chosen session key.
        detector: the live detector; anything with ``step_chunk``.
        n_channels: expected stream-vector width, validated at ingest
            time so a malformed point is rejected at the protocol edge
            instead of corrupting the detector mid-drain.
        spec_label: registry label for ``stats`` (e.g. ``"ae+sw+kswin"``).
        telemetry: per-session sink; attached to the detector when it
            carries a telemetry slot (duck-typed detectors run untraced).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        stream_id: str,
        detector: Any,
        n_channels: int,
        spec_label: str = "custom",
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
        seq: int = 0,
    ) -> None:
        self.stream_id = stream_id
        self.detector = detector
        self.n_channels = int(n_channels)
        self.spec_label = spec_label
        self.telemetry = telemetry
        if telemetry is not None and isinstance(detector, StreamingAnomalyDetector):
            detector.telemetry = telemetry
        self._clock = clock
        self.lock = threading.RLock()

        #: next sequence number to assign (== points ingested so far).
        #: Non-zero when the session resumes a stream another process
        #: already served (migration / crash recovery): the checkpoint's
        #: ``t`` carries over so result sequence numbers stay continuous.
        self.seq = int(seq)
        #: points scored and moved to the result buffer so far.
        self.scored = int(seq)
        self.queue: deque[tuple[int, np.ndarray]] = deque()
        self.enqueued_at: deque[float] = deque()
        self.results: deque[dict[str, Any]] = deque()
        self.created_at = clock()
        self.last_active = self.created_at
        self.closed = False
        #: ingest→scored wait time per point, for p50/p99 in ``stats``.
        self.latency = LatencyReservoir()
        #: same-spec grouping key for the fused drain path; ``None``
        #: keeps the session on the per-session path (custom detectors,
        #: or specs the service could not fingerprint).
        self.fleet_key: tuple | None = None

        #: spill bookkeeping, maintained by the session store.
        self.spill_path: Path | None = None
        self.n_evictions = 0
        self.n_rehydrations = 0

        #: per-session write-ahead ingest log
        #: (:class:`~repro.serve.wal.SessionWal`); ``None`` runs the
        #: session without durability.  Appended under this session's
        #: lock by the scheduler *before* an ingest is acknowledged;
        #: barriered after flushes and on evict/close.
        self.wal = None

        #: online algorithm selection
        #: (:class:`~repro.select.race.SelectionRace`); ``None`` runs
        #: the session without challenger lanes.  A session carrying a
        #: race is pinned in memory (never evicted) — its lanes are live
        #: state the spill checkpoint does not capture.
        self.race = None
        #: composable score postprocessors
        #: (:mod:`repro.select.postprocess`), applied in order to every
        #: champion score into the ``calibrated`` result field.  Held at
        #: session level so calibration state survives a hot-swap.
        self.postprocess: list = []
        #: shadow-lane cost accounting, kept out of the user-facing
        #: scoring counters and the ingest-latency reservoir so p50/p99
        #: stay comparable with selection off.
        self.points_shadow = 0
        self.shadow_ns = 0

    # ------------------------------------------------------------------
    @property
    def hydrated(self) -> bool:
        """Whether the detector is live in memory (vs spilled to disk)."""
        return self.detector is not None

    @property
    def evictable(self) -> bool:
        """Only full framework detectors checkpoint; duck-typed ones
        (e.g. ensembles) stay resident, and so do sessions racing
        challenger lanes (lane state is not in the spill checkpoint)."""
        if self.race is not None:
            return False
        return isinstance(self.detector, StreamingAnomalyDetector) or (
            self.detector is None and self.spill_path is not None
        )

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def n_results(self) -> int:
        return len(self.results)

    def idle_seconds(self, now: float | None = None) -> float:
        return (now if now is not None else self._clock()) - self.last_active

    def touch(self) -> None:
        self.last_active = self._clock()

    # ------------------------------------------------------------------
    def validate_points(self, points: Any) -> np.ndarray:
        """Coerce an ingest payload to a finite ``(B, N)`` float block.

        Raises:
            StreamError: on a shape mismatch or non-finite values — the
                batch is rejected whole, before anything is enqueued, so
                detector state is never exposed to malformed input.
        """
        block = np.asarray(points, dtype=np.float64)
        if block.ndim == 1:
            block = block[:, None] if self.n_channels == 1 else block[None, :]
        if block.ndim != 2 or block.shape[1] != self.n_channels:
            raise StreamError(
                f"stream {self.stream_id!r} expects (B, {self.n_channels}) "
                f"points, got shape {block.shape}"
            )
        if not np.all(np.isfinite(block)):
            raise StreamError(
                f"stream {self.stream_id!r} ingest contains non-finite values"
            )
        return block

    def enqueue(self, block: np.ndarray) -> tuple[int, int]:
        """Append validated points; return their ``(seq_from, seq_to)``.

        Capacity is the scheduler's concern — it gates every call with
        the backpressure check before touching the queue.
        """
        with self.lock:
            now = self._clock()
            seq_from = self.seq
            for row in block:
                self.queue.append((self.seq, row))
                self.enqueued_at.append(now)
                self.seq += 1
            self.last_active = now
            return seq_from, self.seq - 1

    def oldest_wait(self, now: float | None = None) -> float:
        """Seconds the oldest queued point has been waiting (0 if none)."""
        if not self.enqueued_at:
            return 0.0
        return (now if now is not None else self._clock()) - self.enqueued_at[0]

    # ------------------------------------------------------------------
    def flush_prepare(
        self, max_batch: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Pop up to ``max_batch`` queued points for scoring.

        Returns ``(seqs, enqueued_at, block)`` or ``None`` on an empty
        queue.  Caller must hold the session lock and follow up with
        :meth:`flush_finish` — the points are already off the queue.
        """
        k = min(len(self.queue), max_batch)
        if k == 0:
            return None
        if self.detector is None:
            raise RuntimeError(
                f"session {self.stream_id!r} flushed while evicted; "
                "the store must rehydrate first"
            )
        seqs = np.empty(k, dtype=np.int64)
        waits = np.empty(k, dtype=np.float64)
        rows = []
        for j in range(k):
            seq, row = self.queue.popleft()
            waits[j] = self.enqueued_at.popleft()
            seqs[j] = seq
            rows.append(row)
        return seqs, waits, np.stack(rows)

    def flush_finish(
        self,
        seqs: np.ndarray,
        enqueued_at: np.ndarray,
        result: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> int:
        """Append one scored block's results and record ingest latency."""
        a, f, drift, fine = result
        k = len(seqs)
        now = self._clock()
        for j in range(k):
            entry = {
                "seq": int(seqs[j]),
                "score": float(f[j]),
                "nonconformity": float(a[j]),
                "drift": bool(drift[j]),
                "finetuned": bool(fine[j]),
            }
            if self.postprocess:
                calibrated = entry["score"]
                for stage in self.postprocess:
                    calibrated = stage.update(calibrated)
                entry["calibrated"] = calibrated
            self.results.append(entry)
            self.latency.record(now - enqueued_at[j])
        self.scored += k
        self.last_active = now
        return k

    def flush_once(self, max_batch: int) -> int:
        """Step up to ``max_batch`` queued points through the detector.

        The coalesced block goes through one ``step_chunk`` call — the
        chunked engine's bitwise invariance to block boundaries is what
        makes the micro-batch size a pure throughput knob, invisible in
        the scores.  Returns the number of points scored.
        """
        with self.lock:
            prepared = self.flush_prepare(max_batch)
            if prepared is None:
                return 0
            seqs, waits, block = prepared
            result = self.detector.step_chunk(block)
            return self.flush_finish(seqs, waits, result)

    def run_selection(
        self,
        block: np.ndarray,
        result: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        telemetry: Telemetry | None = None,
    ) -> dict[str, Any] | None:
        """Shadow-score one just-flushed block and maybe hot-swap.

        Called by the scheduler *after* :meth:`flush_finish` — the
        champion's results and their ingest-latency samples are already
        recorded, so shadow-lane work never shows up in the user-facing
        percentiles.  It is timed into the separate ``shadow_ns`` /
        ``points_shadow`` accounting instead.  Returns the promotion
        event dict when the policy fired a hot-swap, else ``None``.
        Caller holds the session lock.
        """
        race = self.race
        if race is None:
            return None
        t0 = time.perf_counter_ns()
        lane = race.observe(block, result, self.detector)
        shadow_ns = time.perf_counter_ns() - t0
        shadow_points = len(block) * len(race.lanes)
        self.points_shadow += shadow_points
        self.shadow_ns += shadow_ns
        if telemetry is not None:
            telemetry.count("points_shadow", shadow_points)
            telemetry.count("shadow_ns", shadow_ns)
        if lane is None:
            return None
        from repro.select.swap import hot_swap

        # The triggering block's entries are the newest len(block)
        # results (flush_finish just appended them, same lock) — the
        # swap record carries them so a mid-swap crash can re-deliver.
        n = len(block)
        recent = list(self.results)[-n:] if n else []
        return hot_swap(self, lane, telemetry=telemetry, results=recent)

    def collect(self, max_results: int | None = None) -> list[dict[str, Any]]:
        """Drain up to ``max_results`` scored results, in sequence order."""
        with self.lock:
            k = len(self.results)
            if max_results is not None:
                k = min(k, max_results)
            out = [self.results.popleft() for _ in range(k)]
            if out:
                self.last_active = self._clock()
            return out

    # ------------------------------------------------------------------
    def describe(
        self, now: float | None = None, latency_window: bool = False
    ) -> dict[str, Any]:
        """JSON-safe session block for the ``stats`` verb.

        ``latency_window=True`` additionally includes the raw retained
        latency samples (``latency_window``), so a router can rebuild the
        reservoir and compute *fleet-level* percentiles with
        :func:`~repro.obs.merge_summaries` instead of averaging
        per-worker percentiles.
        """
        with self.lock:
            detector = self.detector
            info: dict[str, Any] = {
                "spec": self.spec_label,
                "n_channels": self.n_channels,
                "seq": self.seq,
                "scored": self.scored,
                "pending_points": len(self.queue),
                "pending_results": len(self.results),
                "hydrated": self.hydrated,
                "evictable": self.evictable,
                "n_evictions": self.n_evictions,
                "n_rehydrations": self.n_rehydrations,
                "idle_seconds": round(self.idle_seconds(now), 6),
                "ingest_latency": self.latency.summary(),
            }
            if latency_window:
                info["latency_window"] = self.latency.values().tolist()
            if self.wal is not None:
                info["wal"] = {
                    "appends": self.wal.n_appends,
                    "barrier_t": self.wal.barrier_t,
                    "fsync": self.wal.config.fsync,
                }
            if self.race is not None:
                info["selection"] = self.race.describe()
                info["shadow"] = {
                    "points_shadow": self.points_shadow,
                    "shadow_ns": self.shadow_ns,
                }
            if self.postprocess:
                info["postprocess"] = [
                    stage.describe() for stage in self.postprocess
                ]
            if detector is not None and hasattr(detector, "events"):
                info["n_finetunes"] = count_finetunes(detector.events)
            if self.telemetry is not None:
                info["telemetry"] = self.telemetry.as_dict()
            return info
