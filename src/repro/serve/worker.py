"""Shard worker: one :class:`DetectionService` behind its own process.

The sharded fleet (:mod:`repro.serve.router`) runs N of these, each a
separate OS process with its own GIL, scheduler, session store and spill
directory — the existing single-process service, unchanged, just
multiplied.  The router spawns workers with ``python -m
repro.serve.worker`` and learns the bound port from a single JSON
"ready" line on stdout (workers bind port 0, so N workers never fight
over addresses).

The worker is also a plain standalone server: everything it speaks is
protocol v1, so ``SocketServeClient`` (and the router, which uses it for
the worker leg) needs nothing worker-specific.

Configuration crosses the process boundary as JSON
(:func:`serve_config_to_payload` / :func:`serve_config_from_payload`) —
the same :class:`~repro.serve.server.ServeConfig` the in-process service
takes, with the nested :class:`~repro.core.config.DetectorConfig`
flattened to a dict.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any

from repro.core.config import DetectorConfig
from repro.serve.server import DetectionServer, DetectionService, ServeConfig


def serve_config_to_payload(config: ServeConfig) -> dict[str, Any]:
    """Flatten a :class:`ServeConfig` to a JSON-safe dict."""
    return dataclasses.asdict(config)


def serve_config_from_payload(payload: dict[str, Any]) -> ServeConfig:
    """Rebuild a :class:`ServeConfig` from its JSON form."""
    fields = dict(payload)
    detector = fields.get("detector")
    if isinstance(detector, dict):
        fields["detector"] = DetectorConfig(**detector)
    return ServeConfig(**fields)


def ready_line(host: str, port: int) -> str:
    """The single stdout line a worker prints once it is accepting."""
    return json.dumps(
        {"ready": True, "host": host, "port": int(port), "pid": os.getpid()}
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="One detection-service shard (spawned by the router).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = OS-assigned, reported on stdout)")
    parser.add_argument("--spill-dir", required=True, dest="spill_dir",
                        help="this shard's eviction-checkpoint directory "
                             "(the router reads/writes it for migration "
                             "and crash recovery)")
    parser.add_argument("--config", default=None,
                        help="ServeConfig as a JSON object (detector "
                             "hyper-parameters nested as a dict)")
    args = parser.parse_args(argv)

    payload = json.loads(args.config) if args.config else {}
    payload["spill_dir"] = args.spill_dir
    config = serve_config_from_payload(payload)
    service = DetectionService(config)
    server = DetectionServer((args.host, args.port), service)
    host, port = server.server_address[:2]
    print(ready_line(host, port), flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
