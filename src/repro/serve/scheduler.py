"""Micro-batch scheduling: coalesce, bound, drain fairly.

Per-point scoring wastes the chunked engine — one ``step_chunk`` call
over ``B`` buffered points costs far less than ``B`` calls over one (see
``BENCH_stream.json``).  The scheduler buys that batching without
unbounded latency or memory:

- **Coalescing.**  Ingested points sit in the session's queue until the
  batch fills (``max_batch``) or the oldest point has waited
  ``max_delay_ms`` — the classic micro-batch trade of a bounded delay
  for a bigger block.  A ``score`` request flushes synchronously, so an
  interactive client never waits for the timer.
- **Backpressure.**  Queues are bounded (``queue_limit``).  An ingest
  that does not fit is rejected whole with :class:`QueueFull`, carrying
  a ``retry_after`` hint — the caller holds the data, the server's
  memory stays bounded.  Result buffers are bounded too
  (``result_limit``); a session whose client stops collecting stops
  being drained (``drain_blocked``), which propagates the pressure back
  to its ingest queue without stalling other sessions.
- **Fairness.**  The drain pass visits sessions round-robin, at most one
  micro-batch per session per pass, so a firehose stream cannot starve a
  trickle stream.

All scheduling decisions change only *when* points are scored, never
*what* is computed — the chunked engine's bitwise invariance to block
boundaries means any drain order and any batch size yield scores
identical to the offline :func:`~repro.streaming.runner.run_stream`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.exceptions import ConfigurationError, ReproError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.serve.session import DetectorSession


class QueueFull(ReproError):
    """An ingest batch did not fit in the session's bounded queue.

    Attributes:
        stream_id: the session whose queue is full.
        depth: current queue depth.
        limit: the configured bound.
        retry_after: seconds after which a retry is likely to succeed
            (one micro-batch delay — by then the drain loop has run).
    """

    def __init__(
        self, stream_id: str, depth: int, limit: int, retry_after: float
    ) -> None:
        super().__init__(
            f"ingest queue for stream {stream_id!r} is full "
            f"({depth}/{limit} points); retry after {retry_after:.3f}s"
        )
        self.stream_id = stream_id
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after


@dataclass(frozen=True)
class SchedulerConfig:
    """Micro-batch and backpressure knobs.

    Attributes:
        max_batch: largest block coalesced into one ``step_chunk`` call;
            also the flush trigger on depth.
        max_delay_ms: bound on how long a buffered point may wait before
            the drain loop flushes its session anyway.
        queue_limit: per-session ingest-queue bound (backpressure).
        result_limit: per-session scored-result bound; a full buffer
            pauses draining for that session until the client collects.
    """

    max_batch: int = 64
    max_delay_ms: float = 25.0
    queue_limit: int = 512
    result_limit: int = 8192

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms < 0:
            raise ConfigurationError(
                f"max_delay_ms must be >= 0, got {self.max_delay_ms}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.result_limit < self.max_batch:
            raise ConfigurationError(
                f"result_limit ({self.result_limit}) must be >= max_batch "
                f"({self.max_batch})"
            )


class MicroBatchScheduler:
    """Admission control + fair micro-batch draining over a session store.

    Args:
        store: the :class:`~repro.serve.state.SessionStore` holding the
            sessions (the scheduler rehydrates through it before
            flushing an evicted session).
        config: batching and backpressure bounds.
        telemetry: fleet-level sink for the admission/drain counters.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        store,
        config: SchedulerConfig | None = None,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.config = config if config is not None else SchedulerConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._clock = clock
        self._work = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: round-robin cursor: the stream id drained last, so the next
        #: pass starts just after it.
        self._rr_last: str | None = None
        #: optional hook run by the drain loop whenever it goes idle
        #: (the service wires the idle-session eviction sweep here).
        self.on_idle: Callable[[], Any] | None = None

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, session: DetectorSession, block: np.ndarray) -> tuple[int, int]:
        """Enqueue a validated block, or raise :class:`QueueFull`.

        All-or-nothing: partial accepts would force clients to track
        split batches; rejecting whole keeps the retry loop trivial.
        """
        with session.lock:
            depth = session.queue_depth
            if depth + len(block) > self.config.queue_limit:
                self.telemetry.count("ingest_rejected")
                raise QueueFull(
                    session.stream_id,
                    depth,
                    self.config.queue_limit,
                    retry_after=self.retry_after(),
                )
            span = session.enqueue(block)
        self.telemetry.count("points_ingested", len(block))
        self._work.set()
        return span

    def retry_after(self) -> float:
        """Backoff hint for rejected ingests: one micro-batch delay."""
        return max(self.config.max_delay_ms / 1000.0, 0.001)

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def _due(self, session: DetectorSession, now: float) -> bool:
        return session.queue_depth >= self.config.max_batch or (
            session.queue_depth > 0
            and session.oldest_wait(now) * 1000.0 >= self.config.max_delay_ms
        )

    def _flush_batch(self, session: DetectorSession) -> int:
        """One micro-batch for one session, respecting the result bound."""
        with session.lock:
            if session.queue_depth == 0:
                return 0
            room = self.config.result_limit - session.n_results
            if room <= 0:
                self.telemetry.count("drain_blocked")
                return 0
            if not session.hydrated:
                self.store.rehydrate(session)
            scored = session.flush_once(min(self.config.max_batch, room))
        if scored:
            self.telemetry.count("points_scored", scored)
            self.telemetry.count("batches_flushed")
        return scored

    def flush_session(self, session: DetectorSession) -> int:
        """Synchronously drain one session's whole queue (the ``score``
        verb's flush), stopping early only if its result buffer fills."""
        total = 0
        while True:
            scored = self._flush_batch(session)
            if scored == 0:
                return total
            total += scored

    def pump(self, now: float | None = None) -> int:
        """One fair drain pass: each due session gets one micro-batch.

        Returns the number of points scored; callers loop while it makes
        progress.  Visiting order rotates so the pass after a long batch
        resumes with the *next* session, not the same one.
        """
        now = now if now is not None else self._clock()
        sessions = self.store.sessions()
        if not sessions:
            return 0
        ids = [s.stream_id for s in sessions]
        start = 0
        if self._rr_last in ids:
            start = (ids.index(self._rr_last) + 1) % len(sessions)
        scored = 0
        for offset in range(len(sessions)):
            session = sessions[(start + offset) % len(sessions)]
            if not self._due(session, now):
                continue
            n = self._flush_batch(session)
            if n:
                self._rr_last = session.stream_id
                scored += n
        return scored

    def next_deadline_in(self, now: float | None = None) -> float | None:
        """Seconds until the oldest buffered point hits ``max_delay_ms``
        (``None`` when every queue is empty)."""
        now = now if now is not None else self._clock()
        waits = [
            session.oldest_wait(now)
            for session in self.store.sessions()
            if session.queue_depth > 0
        ]
        if not waits:
            return None
        return max(self.config.max_delay_ms / 1000.0 - max(waits), 0.0)

    # ------------------------------------------------------------------
    # drain thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background drain loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-serve-drain", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the drain loop and wait for it to exit."""
        self._stop.set()
        self._work.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            if self.pump() == 0:
                if self.on_idle is not None:
                    self.on_idle()
                deadline = self.next_deadline_in()
                # No queued work: sleep until woken; queued but not due:
                # sleep until the oldest point's deadline.
                timeout = deadline if deadline is not None else 0.25
                self._work.clear()
                self._work.wait(timeout=max(timeout, 0.001))
