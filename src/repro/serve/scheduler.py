"""Micro-batch scheduling: coalesce, bound, drain fairly.

Per-point scoring wastes the chunked engine — one ``step_chunk`` call
over ``B`` buffered points costs far less than ``B`` calls over one (see
``BENCH_stream.json``).  The scheduler buys that batching without
unbounded latency or memory:

- **Coalescing.**  Ingested points sit in the session's queue until the
  batch fills (``max_batch``) or the oldest point has waited
  ``max_delay_ms`` — the classic micro-batch trade of a bounded delay
  for a bigger block.  A ``score`` request flushes synchronously, so an
  interactive client never waits for the timer.
- **Backpressure.**  Queues are bounded (``queue_limit``).  An ingest
  that does not fit is rejected whole with :class:`QueueFull`, carrying
  a ``retry_after`` hint — the caller holds the data, the server's
  memory stays bounded.  Result buffers are bounded too
  (``result_limit``); a session whose client stops collecting stops
  being drained (``drain_blocked``), which propagates the pressure back
  to its ingest queue without stalling other sessions.
- **Fairness.**  The drain pass visits sessions round-robin, at most one
  micro-batch per session per pass, so a firehose stream cannot starve a
  trickle stream.
- **Fusion.**  Due sessions sharing a spec fingerprint
  (:attr:`~repro.serve.session.DetectorSession.fleet_key`) are drained
  together through one :class:`~repro.streaming.fleet.FleetEngine`
  call — K same-spec micro-batches become a handful of session-axis
  batched kernels instead of K small ones.  The engine (and its weight
  arena) is cached per group and reused while the membership is stable,
  so steady-state drains pay no re-stacking cost.  Sessions whose
  drift strategy fires mid-drain stay grouped: the engine runs their
  fine-tunes fused (session-axis training kernels) and resumes fused
  scoring, so drift-heavy fleets keep a high ``fused_fraction``.

All scheduling decisions change only *when* points are scored, never
*what* is computed — the chunked engine's bitwise invariance to block
boundaries, and the fleet engine's bitwise equivalence to per-session
``step_chunk``, mean any drain order, any batch size and any grouping
yield scores identical to the offline
:func:`~repro.streaming.runner.run_stream`.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.exceptions import ConfigurationError, ReproError, StreamError
from repro.obs import NULL_TELEMETRY, Telemetry, merge_summaries
from repro.serve.session import DetectorSession
from repro.streaming.fleet import FleetEngine


class QueueFull(ReproError):
    """An ingest batch did not fit in the session's bounded queue.

    Attributes:
        stream_id: the session whose queue is full.
        depth: current queue depth.
        limit: the configured bound.
        retry_after: seconds after which a retry is likely to succeed
            (one micro-batch delay — by then the drain loop has run).
    """

    def __init__(
        self, stream_id: str, depth: int, limit: int, retry_after: float
    ) -> None:
        super().__init__(
            f"ingest queue for stream {stream_id!r} is full "
            f"({depth}/{limit} points); retry after {retry_after:.3f}s"
        )
        self.stream_id = stream_id
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after


@dataclass(frozen=True)
class SchedulerConfig:
    """Micro-batch and backpressure knobs.

    Attributes:
        max_batch: largest block coalesced into one ``step_chunk`` call;
            also the flush trigger on depth.
        max_delay_ms: bound on how long a buffered point may wait before
            the drain loop flushes its session anyway.
        queue_limit: per-session ingest-queue bound (backpressure).
        result_limit: per-session scored-result bound; a full buffer
            pauses draining for that session until the client collects.
        fused_drain: drain same-spec session groups through one
            :class:`~repro.streaming.fleet.FleetEngine` call (bitwise
            neutral; disable to force the per-session path).
        min_fleet: smallest due group worth a fused call; below it the
            per-session path is used.
    """

    max_batch: int = 64
    max_delay_ms: float = 25.0
    queue_limit: int = 512
    result_limit: int = 8192
    fused_drain: bool = True
    min_fleet: int = 2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms < 0:
            raise ConfigurationError(
                f"max_delay_ms must be >= 0, got {self.max_delay_ms}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.min_fleet < 2:
            raise ConfigurationError(
                f"min_fleet must be >= 2, got {self.min_fleet}"
            )
        if self.result_limit < self.max_batch:
            raise ConfigurationError(
                f"result_limit ({self.result_limit}) must be >= max_batch "
                f"({self.max_batch})"
            )


class MicroBatchScheduler:
    """Admission control + fair micro-batch draining over a session store.

    Args:
        store: the :class:`~repro.serve.state.SessionStore` holding the
            sessions (the scheduler rehydrates through it before
            flushing an evicted session).
        config: batching and backpressure bounds.
        telemetry: fleet-level sink for the admission/drain counters.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        store,
        config: SchedulerConfig | None = None,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.config = config if config is not None else SchedulerConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._clock = clock
        self._work = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: round-robin cursor: the stream id drained last, so the next
        #: pass starts just after it.
        self._rr_last: str | None = None
        #: fused-drain engine cache: fleet_key -> (detector id tuple,
        #: engine, member sessions).  The id tuple detects membership or
        #: rehydration changes (the engine holds the detectors, so the
        #: ids stay valid while the entry lives); a mismatch rebuilds
        #: the engine and its weight arena.
        self._fleets: dict[tuple, tuple[tuple, FleetEngine, list]] = {}
        #: optional hook run by the drain loop whenever it goes idle
        #: (the service wires the idle-session eviction sweep here).
        self.on_idle: Callable[[], Any] | None = None
        #: optional :class:`~repro.obs.RunLog` the service wires in so
        #: hot-swap promotions land in the deterministic audit log.
        self.run_log = None

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self,
        session: DetectorSession,
        block: np.ndarray,
        expect: int | None = None,
    ) -> tuple[int, int, bool]:
        """Enqueue a validated block; returns ``(seq_from, seq_to, dup)``.

        All-or-nothing: partial accepts would force clients to track
        split batches; rejecting whole keeps the retry loop trivial.
        Raises :class:`QueueFull` when the block does not fit.

        ``expect`` is the client's claimed next sequence number, making
        ingest **idempotent**: a block whose span the session has already
        assigned (``expect + len < seq``) is an exact replay of an
        acknowledged request whose reply was lost — it is dropped and
        re-acknowledged with ``dup=True`` instead of double-scored.  An
        ``expect`` *ahead* of the session is a protocol violation (the
        client skipped data) and is rejected.

        When the session carries a WAL, the block is appended to the log
        *before* it enters the queue — an exception from the append
        (disk full, torn directory) means nothing was accepted and the
        client is never acknowledged for data that could not be made
        durable.
        """
        with session.lock:
            if expect is not None:
                expect = int(expect)
                if expect != session.seq:
                    if expect >= 0 and expect + len(block) <= session.seq:
                        self.telemetry.count("ingest_deduped")
                        return expect, expect + len(block) - 1, True
                    raise StreamError(
                        f"stream {session.stream_id!r} is at seq "
                        f"{session.seq} but the ingest expected "
                        f"{expect}; refusing a gapped or partially "
                        "overlapping replay"
                    )
            depth = session.queue_depth
            if depth + len(block) > self.config.queue_limit:
                self.telemetry.count("ingest_rejected")
                raise QueueFull(
                    session.stream_id,
                    depth,
                    self.config.queue_limit,
                    retry_after=self.retry_after(),
                )
            if session.wal is not None:
                session.wal.append(session.seq, block)
            span = session.enqueue(block)
        self.telemetry.count("points_ingested", len(block))
        self._work.set()
        return span[0], span[1], False

    def retry_after(self) -> float:
        """Backoff hint for rejected ingests: one micro-batch delay."""
        return max(self.config.max_delay_ms / 1000.0, 0.001)

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def _due(self, session: DetectorSession, now: float) -> bool:
        return session.queue_depth >= self.config.max_batch or (
            session.queue_depth > 0
            and session.oldest_wait(now) * 1000.0 >= self.config.max_delay_ms
        )

    def _flush_batch(self, session: DetectorSession) -> int:
        """One micro-batch for one session, respecting the result bound."""
        with session.lock:
            if session.queue_depth == 0:
                return 0
            room = self.config.result_limit - session.n_results
            if room <= 0:
                self.telemetry.count("drain_blocked")
                return 0
            if not session.hydrated:
                self.store.rehydrate(session)
            prepared = session.flush_prepare(min(self.config.max_batch, room))
            if prepared is None:
                return 0
            seqs, waits, block = prepared
            result = session.detector.step_chunk(block)
            scored = session.flush_finish(seqs, waits, result)
            self._run_selection(session, block, result)
            self._maybe_barrier(session)
        if scored:
            self.telemetry.count("points_scored", scored)
            self.telemetry.count("batches_flushed")
        return scored

    def _run_selection(self, session: DetectorSession, block, result) -> None:
        """Shadow-score the block and apply a promotion if one fired.

        Runs after the champion's ``flush_finish`` (latency samples are
        already recorded) and before the barrier check (a swap resets
        the barrier clock to the swap offset, so the barrier it just
        took is never immediately redone).  Caller holds the session
        lock.
        """
        if session.race is None:
            return
        old_key = session.fleet_key
        promotion = session.run_selection(block, result, telemetry=self.telemetry)
        if promotion is None:
            return
        # The promoted detector changes identity (and usually spec), so
        # any cached fused engine for the old group is stale — drop it
        # rather than letting its weight arena pin the old detector.
        if old_key is not None:
            self._fleets.pop(old_key, None)
        if self.run_log is not None:
            self.run_log.log("session_promoted", **promotion)

    # ------------------------------------------------------------------
    # fused draining
    # ------------------------------------------------------------------
    def _fleet_engine(self, key: tuple, sessions: list[DetectorSession]) -> FleetEngine:
        """Cached :class:`FleetEngine` for a stable same-spec group."""
        ids = tuple(id(session.detector) for session in sessions)
        cached = self._fleets.get(key)
        if cached is not None and cached[0] == ids:
            return cached[1]
        engine = FleetEngine(
            [session.detector for session in sessions],
            min_fleet=self.config.min_fleet,
            telemetry=self.telemetry,
        )
        self._fleets[key] = (ids, engine, list(sessions))
        return engine

    def _flush_group(self, key: tuple, members: list[DetectorSession]) -> int:
        """One micro-batch for a same-spec group, through the fleet engine.

        Bitwise neutral versus draining each member with
        :meth:`_flush_batch`: the fleet engine is pinned to per-session
        ``step_chunk`` (``tests/test_fleet.py``), and sessions it cannot
        fuse fall through to their own engine inside the call.
        """
        # Sorted lock order keeps concurrent group flushes deadlock-free.
        members = sorted(members, key=lambda s: s.stream_id)
        scored = 0
        with contextlib.ExitStack() as stack:
            for session in members:
                stack.enter_context(session.lock)
            # Rehydrate before popping any queue: a session with queued
            # points is never an eviction candidate, so the capacity
            # enforcement a rehydrate triggers cannot spill a groupmate.
            ready: list[DetectorSession] = []
            for session in members:
                if session.queue_depth == 0:
                    continue
                if self.config.result_limit - session.n_results <= 0:
                    self.telemetry.count("drain_blocked")
                    continue
                if not session.hydrated:
                    self.store.rehydrate(session)
                ready.append(session)
            prepared = []
            for session in ready:
                room = self.config.result_limit - session.n_results
                batch = session.flush_prepare(min(self.config.max_batch, room))
                if batch is not None:
                    prepared.append((session, batch))
            if not prepared:
                return 0
            if len(prepared) < self.config.min_fleet:
                for session, (seqs, waits, block) in prepared:
                    result = session.detector.step_chunk(block)
                    scored += session.flush_finish(seqs, waits, result)
                    self._run_selection(session, block, result)
                    self.telemetry.count("batches_flushed")
            else:
                engine = self._fleet_engine(key, [s for s, _ in prepared])
                fused_before = engine.fused_steps
                finetunes_before = engine.finetunes_fused
                points_training_before = engine.points_fused_training
                results = engine.step_chunk(
                    [batch[2] for _, batch in prepared]
                )
                for (session, (seqs, waits, block)), result in zip(
                    prepared, results
                ):
                    scored += session.flush_finish(seqs, waits, result)
                    self._run_selection(session, block, result)
                    self.telemetry.count("batches_flushed")
                self.telemetry.count("fused_drains")
                self.telemetry.count(
                    "points_fused", engine.fused_steps - fused_before
                )
                finetunes = engine.finetunes_fused - finetunes_before
                if finetunes:
                    self.telemetry.count("finetunes_fused", finetunes)
                    self.telemetry.count(
                        "points_fused_training",
                        engine.points_fused_training - points_training_before,
                    )
            for session, _ in prepared:
                self._maybe_barrier(session)
        if scored:
            self.telemetry.count("points_scored", scored)
        return scored

    def _maybe_barrier(self, session: DetectorSession) -> None:
        """Barrier the session's WAL once a full interval has been scored.

        Caller holds the session lock with the detector hydrated (it
        just flushed through it), so the checkpoint captures exactly the
        state the next replay must resume from.
        """
        wal = session.wal
        if wal is None or not session.hydrated:
            return
        if wal.due_for_barrier(session.scored):
            wal.barrier(session.detector)

    def fleet_manifests(self) -> dict[str, dict]:
        """Per-group fleet summaries for the ``stats`` verb.

        Each block is the group's :meth:`FleetEngine.manifest` plus an
        ingest-latency rollup over the member sessions' reservoirs.
        """
        out: dict[str, dict] = {}
        for key, (_, engine, sessions) in self._fleets.items():
            manifest = engine.manifest()
            manifest["ingest_latency"] = merge_summaries(
                [session.latency for session in sessions]
            )
            manifest["streams"] = [session.stream_id for session in sessions]
            label = f"{key[0]}@{key[1]}ch#{key[2][:8]}"
            out[label] = manifest
        return out

    def flush_session(self, session: DetectorSession) -> int:
        """Synchronously drain one session's whole queue (the ``score``
        verb's flush), stopping early only if its result buffer fills."""
        total = 0
        while True:
            scored = self._flush_batch(session)
            if scored == 0:
                return total
            total += scored

    def pump(self, now: float | None = None) -> int:
        """One fair drain pass: each due session gets one micro-batch.

        Due sessions sharing a :attr:`fleet_key` are drained together
        through the fused group path (when ``fused_drain`` is on and the
        group reaches ``min_fleet``); the rest get the per-session path.
        Returns the number of points scored; callers loop while it makes
        progress.  Visiting order rotates so the pass after a long batch
        resumes with the *next* session, not the same one.
        """
        now = now if now is not None else self._clock()
        sessions = self.store.sessions()
        if not sessions:
            return 0
        ids = [s.stream_id for s in sessions]
        start = 0
        if self._rr_last in ids:
            start = (ids.index(self._rr_last) + 1) % len(sessions)
        due = [
            sessions[(start + offset) % len(sessions)]
            for offset in range(len(sessions))
            if self._due(sessions[(start + offset) % len(sessions)], now)
        ]
        scored = 0
        grouped: set[str] = set()
        if self.config.fused_drain:
            groups: dict[tuple, list[DetectorSession]] = {}
            for session in due:
                # Racing sessions are pinned (non-evictable) but their
                # champions still join fused drains — the fleet key is
                # the champion's, and shadow lanes run per-session after
                # the fused flush.
                if session.fleet_key is not None and (
                    session.evictable or session.race is not None
                ):
                    groups.setdefault(session.fleet_key, []).append(session)
            for key, members in groups.items():
                if len(members) < self.config.min_fleet:
                    continue
                grouped.update(member.stream_id for member in members)
                scored += self._flush_group(key, members)
        for session in due:
            if session.stream_id in grouped:
                continue
            n = self._flush_batch(session)
            if n:
                self._rr_last = session.stream_id
                scored += n
        return scored

    def next_deadline_in(self, now: float | None = None) -> float | None:
        """Seconds until the oldest buffered point hits ``max_delay_ms``
        (``None`` when every queue is empty)."""
        now = now if now is not None else self._clock()
        waits = [
            session.oldest_wait(now)
            for session in self.store.sessions()
            if session.queue_depth > 0
        ]
        if not waits:
            return None
        return max(self.config.max_delay_ms / 1000.0 - max(waits), 0.0)

    # ------------------------------------------------------------------
    # drain thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background drain loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-serve-drain", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the drain loop and wait for it to exit."""
        self._stop.set()
        self._work.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            if self.pump() == 0:
                if self.on_idle is not None:
                    self.on_idle()
                deadline = self.next_deadline_in()
                if deadline is None:
                    # Fully idle: drop cached fleet engines so their
                    # weight arenas stop pinning evicted detectors.
                    self._fleets.clear()
                # No queued work: sleep until woken; queued but not due:
                # sleep until the oldest point's deadline.
                timeout = deadline if deadline is not None else 0.25
                self._work.clear()
                self._work.wait(timeout=max(timeout, 0.001))
