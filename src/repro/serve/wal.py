"""Per-session write-ahead ingest log: crash-safe durability and replay.

A SIGKILL (or power loss) between an ``ingest`` acknowledgement and the
drain that scores the point silently violates the streaming contract —
the paper's protocol scores every point exactly once, in order, and the
serve layer promised the client the point was accepted.  The WAL closes
that gap:

- **Append before acknowledge.**  Every accepted ingest block is
  appended to the session's log *before* the ``ingest`` reply is sent.
  A crash after the ack can therefore always be replayed; a crash before
  the append leaves the client holding the data (the request was never
  acknowledged), which is the client's retry case, not data loss.
- **Checkpoint barriers bound replay.**  Every ``barrier_interval``
  scored points the session's detector is spilled to a *barrier
  checkpoint* (the existing atomic
  :func:`~repro.streaming.checkpoint.save_detector`, with
  ``durable=True`` fsync) and the log is compacted down to the entries
  past the barrier's stream clock ``t`` — recovery never replays more
  than one barrier interval plus whatever was in flight.
- **Replay is the normal path.**  Recovery loads the barrier checkpoint
  and feeds the surviving log entries through the detector's ordinary
  ``step_chunk`` engine; the chunked engine's bitwise invariance to
  block boundaries makes the recovered score sequence identical to an
  uninterrupted run (``tests/test_wal.py``).

File format: one log per stream (named like spill files, by a hash of
the stream id), a sequence of length-prefixed CRC-framed pickle records

.. code-block:: text

    <u32 payload length> <u32 crc32(payload)> <payload bytes>

starting with one ``open`` record (stream id, spec, channel count,
detector config — everything recovery needs to rebuild the session
without an external registry) followed by ``ingest`` records
(``seq_from`` + the raw float64 rows) and, when online algorithm
selection promotes a challenger, ``swap`` records (``t`` + the new
spec/config/scorer) that re-parameterize the session from that clock on
(compaction folds them back into the open record).  Torn tails — a crash mid-append
— are detected by the length/CRC frame and truncated back to the last
complete record; everything before the tear is intact by construction
(records are appended, never rewritten in place).  Compaction rewrites
the whole file via tempfile + ``os.replace``, the same atomicity
contract as checkpoints.

fsync policy (the durability/throughput trade, per
``BENCH_serve.json``):

- ``always`` — fsync after every append: no acknowledged point is ever
  lost, even to power loss.
- ``barrier`` (default) — appends are flushed to the OS (surviving a
  process crash, the common failure) but only barriers fsync; a power
  loss can lose points acknowledged since the last OS write-back.
- ``never`` — no fsync anywhere; durability against process crashes
  only, minimal overhead.

Replay dedup policy: entries are validated in log order — each record
must continue exactly where the previous ended; records that fall
entirely before the replay cursor are duplicate replays (a retried
append whose first attempt did land) and are dropped; records that
*overlap* the cursor are trimmed to the unseen rows; a record that
jumps *past* the cursor means an acknowledged record was lost and is a
hard :class:`WalCorruption` error — recovery must not silently skip
points the client believes were scored.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.exceptions import ConfigurationError, ReproError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.streaming.checkpoint import fsync_dir, save_detector

#: valid values of :attr:`WalConfig.fsync`.
FSYNC_POLICIES = ("always", "barrier", "never")

#: Log size below which a barrier skips compaction.  The stale prefix
#: costs only disk and a little replay-time reading — never replay
#: *work* (``plan_replay`` drops entries at or before the barrier's
#: clock) — so rewriting the log on every barrier buys nothing.
COMPACT_MIN_BYTES = 256 * 1024

#: record frame: little-endian payload length + crc32 of the payload.
_FRAME = struct.Struct("<II")


class WalError(ReproError):
    """A write-ahead-log operation failed."""


class WalCorruption(WalError):
    """The log's entries are inconsistent (gap / reordered records).

    Raised only for damage replay cannot repair honestly: a missing
    acknowledged record.  Torn tails and duplicate replays are expected
    crash artifacts and are repaired/dropped silently.
    """


@dataclass(frozen=True)
class WalConfig:
    """Write-ahead-log knobs.

    Attributes:
        dir: directory holding the per-session logs and their barrier
            checkpoints (created eagerly).
        fsync: ``always`` / ``barrier`` / ``never`` — see the module
            docstring for the durability trade.
        barrier_interval: scored points between barrier checkpoints;
            the replay-cost bound.
    """

    dir: str | Path
    fsync: str = "barrier"
    barrier_interval: int = 256

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"wal fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.barrier_interval < 1:
            raise ConfigurationError(
                f"wal barrier_interval must be >= 1, got {self.barrier_interval}"
            )


def _digest(stream_id: str) -> str:
    return hashlib.blake2b(stream_id.encode("utf-8"), digest_size=10).hexdigest()


def wal_filename(stream_id: str) -> str:
    """Deterministic, filesystem-safe log name for a stream id."""
    return f"session-{_digest(stream_id)}.wal"


def barrier_filename(stream_id: str) -> str:
    """The stream's barrier-checkpoint name (lives next to its log)."""
    return f"session-{_digest(stream_id)}.barrier.ckpt"


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def read_records(path: str | Path) -> tuple[list[dict[str, Any]], int, bool]:
    """Read every complete record of a log file.

    Returns ``(records, good_bytes, torn)``: the decoded records, the
    byte offset of the last complete record's end, and whether a torn
    tail (incomplete or CRC-failing trailing record) was found after it.
    A torn tail is the expected artifact of a crash mid-append — the
    caller truncates to ``good_bytes`` and loses only the unacknowledged
    write.
    """
    data = Path(path).read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    torn = False
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            torn = True
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            torn = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            record = pickle.loads(payload)
        except Exception:  # noqa: BLE001 — a mangled payload is a torn tail
            torn = True
            break
        if not isinstance(record, dict) or "kind" not in record:
            torn = True
            break
        records.append(record)
        offset = end
    return records, offset, torn


def _fold_swap(open_meta: dict[str, Any], record: dict[str, Any]) -> None:
    """Fold one *committed* hot-swap record into an open record's recipe.

    A swap record (written by :func:`repro.select.swap.hot_swap` as the
    intent step of the swap protocol) re-parameterizes the session from
    its clock ``t`` on: later records must be recovered under the *new*
    spec/config/scorer.  The record also carries the champion's result
    entries for the block that triggered the swap (``swap_results``) —
    recovery re-emits them, since the swap barrier trims that block from
    replay.  Folding mutates ``open_meta`` in place — applied in log
    order, the final recipe matches the live session at crash time.
    """
    if record.get("spec") is not None:
        open_meta["spec"] = record["spec"]
    if record.get("config") is not None:
        open_meta["config"] = record["config"]
    if "scorer" in record:
        open_meta["scorer"] = record["scorer"]
    open_meta["swapped"] = True
    open_meta["swap_t"] = int(record["t"])
    open_meta["swap_results"] = list(record.get("results") or ())


def plan_replay(
    records: list[dict[str, Any]], barrier_t: int
) -> tuple[dict[str, Any], list[tuple[int, np.ndarray]], int]:
    """Validate a log's records and compute what replay must score.

    Returns ``(open_meta, blocks, dropped)`` where ``blocks`` is the
    ordered list of ``(seq_from, rows)`` to feed through ``step_chunk``
    (already trimmed past ``barrier_t`` — the checkpoint's stream clock,
    i.e. the last *already scored* index) and ``dropped`` counts rows
    discarded as duplicates or already-scored.

    Raises:
        WalCorruption: on a missing ``open`` record or a sequence gap
            (an acknowledged record that is simply absent).
    """
    if not records or records[0].get("kind") != "open":
        raise WalCorruption("log does not start with an 'open' record")
    open_meta = dict(records[0])
    expected: int | None = None
    dropped = 0
    blocks: list[tuple[int, np.ndarray]] = []
    for record in records[1:]:
        if record.get("kind") == "swap":
            # A swap commits at its checkpoint save, not at this record
            # (the record is written first, as intent).  A surviving
            # checkpoint covering the swap clock proves the commit; a
            # record past the checkpoint is an aborted swap — ignore it
            # and replay through the pre-swap recipe.
            if int(record["t"]) <= barrier_t:
                _fold_swap(open_meta, record)
            continue
        if record.get("kind") != "ingest":
            raise WalCorruption(
                f"unexpected record kind {record.get('kind')!r} in log body"
            )
        seq_from = int(record["seq_from"])
        rows = np.asarray(record["rows"], dtype=np.float64)
        seq_to = seq_from + len(rows) - 1
        if expected is not None:
            if seq_to < expected:
                dropped += len(rows)  # duplicate replay of an acked block
                continue
            if seq_from > expected:
                raise WalCorruption(
                    f"log gap: expected seq {expected}, found record "
                    f"starting at {seq_from} — an acknowledged record "
                    "is missing"
                )
            if seq_from < expected:  # overlap: trim the already-seen rows
                dropped += expected - seq_from
                rows = rows[expected - seq_from :]
                seq_from = expected
        expected = seq_to + 1
        if seq_to <= barrier_t:
            dropped += len(rows)  # fully behind the checkpoint
            continue
        if seq_from <= barrier_t:  # straddles the checkpoint: trim
            dropped += barrier_t + 1 - seq_from
            rows = rows[barrier_t + 1 - seq_from :]
            seq_from = barrier_t + 1
        blocks.append((seq_from, rows))
    return open_meta, blocks, dropped


class SessionWal:
    """One stream's write-ahead log + barrier checkpoint.

    All mutation happens under the owning session's lock (the scheduler
    and store already serialize on it), so the log needs no lock of its
    own.

    Args:
        config: directory / fsync / barrier-interval knobs.
        stream_id: the session key (hashed into the filenames).
        telemetry: sink for the ``wal_appends`` / ``wal_barriers`` /
            ``wal_truncated`` counters.
    """

    def __init__(
        self,
        config: WalConfig,
        stream_id: str,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        self.stream_id = stream_id
        self.dir = Path(config.dir)
        self.path = self.dir / wal_filename(stream_id)
        self.barrier_path = self.dir / barrier_filename(stream_id)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._handle = None
        #: stream clock of the newest barrier checkpoint (-1: none yet).
        self.barrier_t = -1
        self.n_appends = 0

    # ------------------------------------------------------------------
    def open(self, meta: dict[str, Any]) -> None:
        """Start a fresh log with one ``open`` record.

        ``meta`` must carry everything recovery needs to rebuild the
        session without this process's memory: the stream id, spec
        label, channel count, detector config dict and scorer.  An
        existing log at this path is an error — the store's recovery
        pass must adopt or discard it first.
        """
        if self.path.exists():
            raise WalError(
                f"log {self.path} already exists; recover or remove it "
                "before opening a new session on this stream id"
            )
        self.dir.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        record = {"kind": "open", "stream": self.stream_id, **meta}
        self._handle.write(_frame(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)))
        self._handle.flush()
        if self.config.fsync != "never":
            os.fsync(self._handle.fileno())
            fsync_dir(self.dir)

    def resume_at(self, barrier_t: int) -> None:
        """Re-attach to an existing log after recovery replayed it."""
        self._handle = open(self.path, "ab")
        self.barrier_t = int(barrier_t)

    def scrub_aborted_swaps(self, barrier_t: int) -> int:
        """Remove swap records past ``barrier_t`` from the log file.

        A swap record whose clock outruns every durable checkpoint is an
        aborted intent: the crash hit between the record and its commit
        checkpoint.  Replay planning already ignores it, but it must not
        survive on disk — a *later* barrier compaction folds swap
        records by clock alone and would resurrect the aborted recipe.
        Called during recovery, before the log is re-attached.  Returns
        the number of records scrubbed.
        """
        records, _, _ = read_records(self.path)
        keep = [
            record
            for record in records
            if not (
                record.get("kind") == "swap"
                and int(record["t"]) > int(barrier_t)
            )
        ]
        scrubbed = len(records) - len(keep)
        if not scrubbed:
            return 0
        durable = self.config.fsync != "never"
        fd, tmp_name = tempfile.mkstemp(
            dir=self.dir, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for record in keep:
                    handle.write(
                        _frame(
                            pickle.dumps(
                                record, protocol=pickle.HIGHEST_PROTOCOL
                            )
                        )
                    )
                handle.flush()
                if durable:
                    os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
            if durable:
                fsync_dir(self.dir)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return scrubbed

    # ------------------------------------------------------------------
    def append(self, seq_from: int, block: np.ndarray) -> None:
        """Log one accepted ingest block (call *before* acknowledging)."""
        if self._handle is None:
            raise WalError(f"log for stream {self.stream_id!r} is not open")
        record = {
            "kind": "ingest",
            "seq_from": int(seq_from),
            "rows": np.ascontiguousarray(block, dtype=np.float64),
        }
        self._handle.write(
            _frame(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        )
        self._handle.flush()
        if self.config.fsync == "always":
            os.fsync(self._handle.fileno())
        self.n_appends += 1
        self.telemetry.count("wal_appends")

    def log_swap(self, meta: dict[str, Any]) -> None:
        """Log a hot-swap intent (``meta``: ``t`` / ``spec`` / ``config``
        / ``scorer`` / ``results``) — step one of the swap protocol.

        Fsynced under every policy but ``never``: the record must be
        durable *before* the swap's checkpoint save (the commit point),
        so recovery can always tell a committed swap (checkpoint covers
        the record's ``t``) from an aborted one (it does not).  Swaps
        are rare; the extra fsync is off the steady-state hot path.
        """
        if self._handle is None:
            raise WalError(f"log for stream {self.stream_id!r} is not open")
        record = {"kind": "swap", "stream": self.stream_id, **meta}
        self._handle.write(
            _frame(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        )
        self._handle.flush()
        if self.config.fsync != "never":
            os.fsync(self._handle.fileno())
        self.telemetry.count("wal_swaps")

    # ------------------------------------------------------------------
    def barrier(self, detector, compact: bool | None = None) -> int:
        """Checkpoint the detector and compact the log past its clock.

        Two steps, each individually crash-safe, in an order that never
        loses data: (1) spill the detector to the barrier checkpoint
        (atomic + durable fsync), (2) rewrite the log keeping only the
        entries past the checkpoint's ``t``.  A crash between them
        leaves a new checkpoint and an over-long log — replay dedups the
        already-scored entries, so the only cost is wasted replay work.

        Step (2) is disk-space hygiene, not correctness — replay cost is
        bounded by the checkpoint's clock whether or not the stale
        prefix is still on disk — so by default it only runs once the
        log has accumulated :data:`COMPACT_MIN_BYTES` (barriers are on
        the scoring hot path; a full log rewrite per barrier is not).
        Pass ``compact=True``/``False`` to force either way.

        Returns the number of rows truncated from the log.
        """
        if self._handle is None:
            raise WalError(f"log for stream {self.stream_id!r} is not open")
        durable = self.config.fsync != "never"
        save_detector(detector, self.barrier_path, durable=durable)
        t = int(detector.t)
        self._handle.flush()
        if compact is None:
            compact = self._handle.tell() >= COMPACT_MIN_BYTES
        if not compact:
            self.barrier_t = t
            self.telemetry.count("wal_barriers")
            return 0
        records, good, _ = read_records(self.path)
        if not records or records[0].get("kind") != "open":
            raise WalError(f"log {self.path} lost its open record")
        open_record = dict(records[0])
        open_record["barrier_t"] = t
        keep = []
        truncated = 0
        for record in records[1:]:
            if record.get("kind") == "swap":
                # A swap at or before the barrier clock is part of the
                # recipe the checkpoint already embodies — fold it into
                # the rewritten open record instead of keeping the body
                # record (swaps happen at scored offsets, so ``> t`` is
                # unreachable, kept only as a safety net).
                if int(record["t"]) <= t:
                    _fold_swap(open_record, record)
                    if int(record["t"]) < t:
                        # A later barrier superseded the swap boundary:
                        # the carried results are stale (delivered, or
                        # lost under ordinary barrier semantics) — keep
                        # the recipe, drop the payload.
                        open_record["swap_results"] = []
                else:  # pragma: no cover — swaps never outrun the clock
                    keep.append(record)
                continue
            rows = record["rows"]
            if int(record["seq_from"]) + len(rows) - 1 > t:
                keep.append(record)
            else:
                truncated += len(rows)
        self._handle.close()
        fd, tmp_name = tempfile.mkstemp(
            dir=self.dir, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for record in [open_record, *keep]:
                    handle.write(
                        _frame(
                            pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
                        )
                    )
                handle.flush()
                if durable:
                    os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
            if durable:
                fsync_dir(self.dir)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            self._handle = open(self.path, "ab")
            raise
        self._handle = open(self.path, "ab")
        self.barrier_t = t
        self.telemetry.count("wal_barriers")
        if truncated:
            self.telemetry.count("wal_truncated", truncated)
        return truncated

    def due_for_barrier(self, scored: int) -> bool:
        """Whether ``scored`` points (stream clock + 1) warrant a barrier."""
        return scored - (self.barrier_t + 1) >= self.config.barrier_interval

    # ------------------------------------------------------------------
    def close(self, delete: bool = True) -> None:
        """Close the handle; ``delete=True`` removes log + checkpoint.

        Deletion is the *last* step of a session close — the caller must
        have drained buffered results first, so a crash any earlier
        still leaves a recoverable log on disk.
        """
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if delete:
            self.path.unlink(missing_ok=True)
            self.barrier_path.unlink(missing_ok=True)
            if self.config.fsync != "never":
                fsync_dir(self.dir)
