"""The JSON-lines wire protocol of the online detection service.

Every message — request and reply — is one JSON object per line
(``\\n``-terminated UTF-8), wrapped in a versioned envelope:

.. code-block:: text

    request:  {"v": 1, "op": "ingest", "stream": "machine-1",
               "points": [[0.1, 0.2], [0.3, 0.4]], "id": 7}
    reply:    {"v": 1, "ok": true,  "op": "ingest", "id": 7,
               "accepted": 2, "seq_from": 10, "seq_to": 11, "pending": 2}
    error:    {"v": 1, "ok": false, "op": "ingest", "id": 7,
               "error": {"type": "queue_full", "message": "...",
                         "retry_after": 0.025}}

The optional ``id`` field is an opaque client correlation token, echoed
verbatim in the reply.  Verbs:

``create``
    Open a session: ``stream`` (new id), ``spec`` (a registry label such
    as ``"ae+sw+kswin"``; optional when the server has a default),
    ``n_channels`` (required), optional ``config`` (a dict of
    :class:`~repro.core.config.DetectorConfig` fields) and ``scorer``.
    Optional ``resume`` (``{"seq": N}``) opens the session from a spill
    checkpoint already placed in the server's spill directory instead of
    building a fresh detector — the receiving end of a live migration or
    crash recovery; ``seq`` continues the source's sequence numbering.
    Optional ``select`` arms online algorithm selection
    (:mod:`repro.select`): ``{"challengers": ["spec", ...], "policy":
    "ewma"|"ucb", ...}`` races shadow challenger detectors over the same
    points and hot-swaps the champion when a challenger sustainably wins
    (see :func:`repro.select.race.build_race` for every knob).  A
    ``postprocess`` list inside ``select`` (e.g. ``["zscore", "ewma:0.3"]``)
    chains score calibration stages; each result then carries a
    ``calibrated`` field alongside the untouched raw ``score``.
``ingest``
    Append ``points`` (a ``[B][N]`` nested list) to the session's ingest
    queue.  All-or-nothing: if the bounded queue cannot take the whole
    batch, the reply is a ``queue_full`` error carrying ``retry_after``
    seconds and nothing is enqueued.  Optional ``expect`` (the client's
    next expected sequence number) makes the verb **idempotent**: a
    block the session already assigned — a retry of an acknowledged
    request whose reply was lost — is re-acknowledged with
    ``duplicate: true`` instead of scored twice, and an ``expect``
    ahead of the session is rejected (``bad_points``).  When the server
    runs a write-ahead log, the block is logged durably *before* the
    acknowledgement.
``score``
    Collect scored results: ``max`` bounds the reply size, ``flush``
    (default true) synchronously drains the session's queue first so a
    client that just ingested can read every score without waiting for
    the micro-batch delay.  Results are ``{seq, score, nonconformity,
    drift, finetuned}`` dicts in sequence order.
``stats``
    Per-session state + telemetry and the fleet-wide merged rollup;
    ``stream`` restricts the reply to one session, and
    ``latency_windows: true`` includes each session's raw retained
    latency samples (so a router can merge reservoirs fleet-wide).
``describe``
    Deep introspection of one session (``stream`` required): the
    ``stats`` block plus the selection-race state when armed (champion
    and challenger lane statistics, promotion events) and the metadata
    of every on-disk checkpoint the stream could recover from
    (``checkpoints.barrier`` / ``checkpoints.spill`` with path, stream
    clock ``t`` and model class).
``evict``
    Operational verb: flush then spill one session to the checkpoint
    directory (the store also evicts idle sessions on its own when over
    capacity).  The next ``ingest``/``score`` rehydrates transparently.
``close``
    Finalize a session: flush, drain — the reply carries any results
    the client had not collected yet (``results``) — then remove its
    on-disk state (spill, write-ahead log, barrier checkpoint) as the
    very last step, so a crash mid-close never loses scored data.
``ping`` / ``shutdown``
    Liveness probe / stop the server loop (the reply is sent first).

Scores cross the wire as JSON numbers; Python's ``json`` emits the
shortest round-tripping decimal for a float, so a finite ``float64``
survives encode→decode bit-for-bit — the service's end-to-end
bitwise-equivalence guarantee holds through the protocol layer.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.exceptions import ReproError

#: bump when the envelope or a verb's fields change incompatibly.
PROTOCOL_VERSION = 1

OPS = (
    "create",
    "ingest",
    "score",
    "stats",
    "describe",
    "evict",
    "close",
    "ping",
    "shutdown",
)

#: verbs that do not address a single session.
_STREAMLESS_OPS = ("stats", "ping", "shutdown")

#: ``error.type`` values a client can dispatch on.
ERROR_TYPES = (
    "bad_request",
    "bad_config",
    "bad_points",
    "duplicate_stream",
    "unknown_stream",
    "spill_collision",
    "queue_full",
    "worker_down",
    "internal",
)


class ProtocolError(ReproError):
    """A message violated the wire protocol (shape, version or fields)."""


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one message as a JSON line (UTF-8, ``\\n``-terminated).

    ``allow_nan=False`` keeps the wire format strict JSON: anything
    carrying a NaN/Inf is a programming error on the sending side, not
    something to smuggle past a standards-compliant peer.
    """
    return (json.dumps(message, allow_nan=False) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one received line into a message dict.

    Raises:
        ProtocolError: if the line is not a JSON object.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_request(message: dict[str, Any]) -> dict[str, Any]:
    """Validate a request envelope; return it with defaults normalized.

    Raises:
        ProtocolError: on a missing/unsupported version, unknown verb, or
            a session verb without a ``stream`` id.
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (valid: {', '.join(OPS)})")
    stream = message.get("stream")
    if op not in _STREAMLESS_OPS:
        if not isinstance(stream, str) or not stream:
            raise ProtocolError(f"op {op!r} requires a non-empty 'stream' id")
    elif stream is not None and not isinstance(stream, str):
        raise ProtocolError("'stream' must be a string when present")
    return message


def ok_reply(op: str, request: dict[str, Any] | None = None, **payload: Any) -> dict:
    """Build a success envelope, echoing the request's correlation id."""
    reply: dict[str, Any] = {"v": PROTOCOL_VERSION, "ok": True, "op": op}
    if request is not None and "id" in request:
        reply["id"] = request["id"]
    reply.update(payload)
    return reply


def error_reply(
    op: str | None,
    kind: str,
    message: str,
    request: dict[str, Any] | None = None,
    **extra: Any,
) -> dict:
    """Build an error envelope (``kind`` is one of :data:`ERROR_TYPES`)."""
    reply: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "op": op,
        "error": {"type": kind, "message": message, **extra},
    }
    if request is not None and "id" in request:
        reply["id"] = request["id"]
    return reply
