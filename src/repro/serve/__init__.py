"""Online detection service: live streams in, anomaly scores out.

The offline harness consumes finished labelled series; ``repro.serve``
turns the same bitwise-pinned streaming engine into a long-lived scorer
for many concurrent streams — the deployment setting the paper's
streaming premise implies (points arrive one at a time, the detector
adapts online).

Layers (zero new dependencies — stdlib + numpy):

- :mod:`repro.serve.session` — one live detector per stream id, with
  monotonic sequence numbers, per-session telemetry and idle tracking;
- :mod:`repro.serve.scheduler` — micro-batch coalescing with bounded
  queues, :class:`~repro.serve.scheduler.QueueFull` backpressure and
  round-robin fairness;
- :mod:`repro.serve.state` — LRU session store with checkpoint-backed
  eviction (spill to ``CHECKPOINT_VERSION`` 3 files, transparent
  rehydration, bitwise-identical resume);
- :mod:`repro.serve.wal` — per-session write-ahead ingest logs with
  checkpoint barriers: crash-safe durability, bounded replay, and
  bitwise-identical recovery of in-flight state;
- :mod:`repro.serve.protocol` / :mod:`repro.serve.server` — the
  JSON-lines wire protocol, the threading TCP server, and in-process /
  socket clients;
- :mod:`repro.serve.router` / :mod:`repro.serve.worker` — the sharded
  fleet: N worker processes (one service each) behind a consistent-hash
  router with live session migration, worker supervision and fleet-wide
  stats rollups;
- :mod:`repro.select` (a sibling package) — online algorithm selection:
  champion/challenger shadow lanes raced over the same ingested points,
  a bandit/EWMA promotion policy, and point-lossless hot-swap of the
  serving detector with a WAL ``swap`` record at the commit boundary.

CLI: ``python -m repro.experiments.cli serve --port 8765 --spec
ae+sw+kswin`` (add ``--workers 4`` for the sharded fleet).  See
``docs/architecture.md`` ("Serving" / "Sharded serving") and
``examples/live_service.py``.
"""

from repro.serve.protocol import (
    ERROR_TYPES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    error_reply,
    ok_reply,
    parse_request,
)
from repro.serve.router import (
    HashRing,
    RouterConfig,
    RouterService,
    WorkerDown,
    WorkerHandle,
)
from repro.serve.scheduler import MicroBatchScheduler, QueueFull, SchedulerConfig
from repro.serve.server import (
    BaseServeClient,
    DetectionServer,
    DetectionService,
    ServeClient,
    ServeConfig,
    SocketServeClient,
)
from repro.serve.session import DetectorSession
from repro.serve.state import (
    DuplicateSessionError,
    SessionStore,
    SpillCollisionError,
    UnknownSessionError,
    spill_filename,
)
from repro.serve.wal import (
    COMPACT_MIN_BYTES,
    FSYNC_POLICIES,
    SessionWal,
    WalConfig,
    WalCorruption,
    WalError,
    barrier_filename,
    plan_replay,
    read_records,
    wal_filename,
)
from repro.serve.worker import serve_config_from_payload, serve_config_to_payload

__all__ = [
    "COMPACT_MIN_BYTES",
    "ERROR_TYPES",
    "FSYNC_POLICIES",
    "OPS",
    "PROTOCOL_VERSION",
    "BaseServeClient",
    "DetectionServer",
    "DetectionService",
    "DetectorSession",
    "DuplicateSessionError",
    "HashRing",
    "MicroBatchScheduler",
    "ProtocolError",
    "QueueFull",
    "RouterConfig",
    "RouterService",
    "SchedulerConfig",
    "ServeClient",
    "ServeConfig",
    "SessionStore",
    "SessionWal",
    "SocketServeClient",
    "SpillCollisionError",
    "UnknownSessionError",
    "WalConfig",
    "WalCorruption",
    "WalError",
    "WorkerDown",
    "WorkerHandle",
    "barrier_filename",
    "decode_line",
    "encode",
    "error_reply",
    "ok_reply",
    "parse_request",
    "plan_replay",
    "read_records",
    "serve_config_from_payload",
    "serve_config_to_payload",
    "spill_filename",
    "wal_filename",
]
