"""Selection signals and policies: when has a challenger durably won?

Every lane (the champion and each challenger) carries a
:class:`LaneStats` fed from its own scored blocks.  The learner-based
signal (arXiv:2606.20216) is prequential: an exponentially-weighted
moving average of the lane's *model loss* (the nonconformity the
framework already computes for every point — no labels needed) plus an
EWMA of its drift-detector fire rate.  A lane whose loss trend sits
durably below the champion's is a better fit for the stream's current
regime.

Two concrete policies turn those signals into promote decisions:

- :class:`EwmaLossPolicy` — promote the challenger with the lowest
  combined signal once it has beaten the champion's signal by the
  hysteresis ``margin`` for ``dwell`` consecutive points;
- :class:`UcbBanditPolicy` — treat each micro-batch as a bandit round
  (the lane with the lowest batch-mean loss collects the reward) and
  promote a challenger whose UCB value and mean reward both clear the
  champion's, again held for ``dwell`` consecutive decisions.

Flapping guards, shared by both policies:

- **warm-up** — a lane is ineligible until it has scored ``warmup``
  real points (fresh challengers and freshly-promoted champions start
  cold);
- **hysteresis** (``margin``) — a challenger must win by a margin, not
  a hair, so signal noise near parity cannot trigger a swap;
- **dwell** — the win must persist for ``dwell`` consecutive points
  (EWMA) or decision rounds (UCB);
- **min-dwell** — after a promotion, no further swap for ``min_dwell``
  points, whatever the signals say.

Everything here is deterministic — no RNG, no wall clock — so a served
stream's promotion sequence is a pure function of its points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.exceptions import ConfigurationError

POLICY_NAMES = ("ewma", "ucb")


@dataclass(frozen=True)
class SelectionConfig:
    """Knobs shared by the selection policies.

    Attributes:
        policy: ``"ewma"`` or ``"ucb"``.
        warmup: real scored points a lane needs before it is eligible
            (and before the champion can be challenged at all).
        margin: hysteresis.  EWMA: a challenger's signal must undercut
            the champion's by this *relative* fraction.  UCB: the
            challenger's mean reward must exceed the champion's by this
            *absolute* amount (rewards live in ``[0, 1]``).
        dwell: how long the win must persist — consecutive points
            (EWMA) or consecutive decision rounds (UCB).
        min_dwell: points after a promotion before the next one may
            happen.
        ewma_alpha: smoothing factor of the per-point loss / fire-rate
            averages.
        fire_weight: how strongly a lane's drift-fire rate inflates its
            signal (``signal = loss_ewma * (1 + fire_weight *
            fire_ewma)``) — a lane that only stays accurate by firing
            constantly is penalized.
        ucb_c: exploration constant of the UCB value.
    """

    policy: str = "ewma"
    warmup: int = 64
    margin: float = 0.05
    dwell: int = 32
    min_dwell: int = 256
    ewma_alpha: float = 0.05
    fire_weight: float = 0.25
    ucb_c: float = 1.0

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"selection policy must be one of {POLICY_NAMES}, "
                f"got {self.policy!r}"
            )
        if self.warmup < 1:
            raise ConfigurationError(f"warmup must be >= 1, got {self.warmup}")
        if not 0.0 <= self.margin < 1.0:
            raise ConfigurationError(
                f"margin must be in [0, 1), got {self.margin}"
            )
        if self.dwell < 1:
            raise ConfigurationError(f"dwell must be >= 1, got {self.dwell}")
        if self.min_dwell < 0:
            raise ConfigurationError(
                f"min_dwell must be >= 0, got {self.min_dwell}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.fire_weight < 0.0:
            raise ConfigurationError(
                f"fire_weight must be >= 0, got {self.fire_weight}"
            )
        if self.ucb_c < 0.0:
            raise ConfigurationError(f"ucb_c must be >= 0, got {self.ucb_c}")


class LaneStats:
    """Prequential signal state of one lane (champion or challenger)."""

    def __init__(self) -> None:
        #: points the lane has observed (including warm-up zeros).
        self.n_points = 0
        #: points folded into the signal (the lane's model was fitted).
        self.n_scored = 0
        self.loss_ewma: float | None = None
        self.fire_ewma = 0.0
        #: mean loss of the most recent scored block (the UCB round).
        self.last_batch_loss: float | None = None
        #: consecutive points the lane has beaten the margin (EWMA dwell).
        self.win_points = 0
        #: consecutive decision rounds the lane has won (UCB dwell).
        self.win_rounds = 0
        #: bandit bookkeeping: rounds participated / rounds won.
        self.rounds = 0
        self.reward = 0

    def update(self, losses: np.ndarray, fires: np.ndarray, alpha: float) -> None:
        """Fold one scored block into the EWMAs (point order preserved)."""
        self.n_points += len(losses)
        self.n_scored += len(losses)
        for loss, fire in zip(losses, fires):
            loss = float(loss)
            if self.loss_ewma is None:
                self.loss_ewma = loss
            else:
                self.loss_ewma += alpha * (loss - self.loss_ewma)
            self.fire_ewma += alpha * (float(bool(fire)) - self.fire_ewma)
        self.last_batch_loss = float(np.mean(losses)) if len(losses) else None

    def skip(self, n: int) -> None:
        """Record points the lane saw but could not score (warm-up)."""
        self.n_points += int(n)
        self.last_batch_loss = None

    def signal(self, fire_weight: float) -> float:
        """Combined loss/drift signal; ``inf`` while the lane is cold."""
        if self.loss_ewma is None:
            return math.inf
        return self.loss_ewma * (1.0 + fire_weight * self.fire_ewma)

    def reset(self) -> None:
        """Restart the signal (after a swap every lane re-warms)."""
        self.__init__()

    def as_dict(self, fire_weight: float) -> dict[str, Any]:
        signal = self.signal(fire_weight)
        return {
            "n_points": self.n_points,
            "n_scored": self.n_scored,
            "loss_ewma": self.loss_ewma,
            "fire_ewma": self.fire_ewma,
            "signal": signal if math.isfinite(signal) else None,
            "win_points": self.win_points,
            "win_rounds": self.win_rounds,
            "rounds": self.rounds,
            "reward": self.reward,
        }


class SelectionPolicy:
    """Decide, once per observed micro-batch, whether to promote.

    :meth:`step` is called after the block's losses have been folded
    into every lane's :class:`LaneStats`.  It returns the index of the
    challenger to promote, or ``None``.
    """

    name = "?"

    def __init__(self, config: SelectionConfig) -> None:
        self.config = config

    def step(
        self,
        champion: LaneStats,
        lanes: list[LaneStats],
        batch_size: int,
        points_since_swap: int,
    ) -> int | None:
        raise NotImplementedError


class EwmaLossPolicy(SelectionPolicy):
    """Promote the lowest-signal challenger after a sustained margin win."""

    name = "ewma"

    def step(
        self,
        champion: LaneStats,
        lanes: list[LaneStats],
        batch_size: int,
        points_since_swap: int,
    ) -> int | None:
        cfg = self.config
        if champion.n_scored < cfg.warmup:
            for lane in lanes:
                lane.win_points = 0
            return None
        champ_signal = champion.signal(cfg.fire_weight)
        eligible: list[int] = []
        for index, lane in enumerate(lanes):
            if (
                lane.n_scored >= cfg.warmup
                and lane.signal(cfg.fire_weight)
                < champ_signal * (1.0 - cfg.margin)
            ):
                lane.win_points += batch_size
                eligible.append(index)
            else:
                lane.win_points = 0
        if points_since_swap < cfg.min_dwell:
            return None
        winners = [
            index for index in eligible if lanes[index].win_points >= cfg.dwell
        ]
        if not winners:
            return None
        return min(winners, key=lambda index: lanes[index].signal(cfg.fire_weight))


class UcbBanditPolicy(SelectionPolicy):
    """UCB bandit over lanes: each micro-batch is a round, the lane with
    the lowest batch-mean loss collects the reward.

    The UCB value (mean reward + exploration bonus) ranks lanes; a
    challenger is promoted only when *both* its UCB value and its mean
    reward clear the champion's (the latter by ``margin``), held for
    ``dwell`` consecutive rounds — the optimism bonus alone must never
    trigger a swap.
    """

    name = "ucb"

    def _value(self, stats: LaneStats, total_rounds: int) -> float:
        if stats.rounds == 0:
            return math.inf
        mean = stats.reward / stats.rounds
        if total_rounds <= 1:
            return mean
        return mean + self.config.ucb_c * math.sqrt(
            math.log(total_rounds) / stats.rounds
        )

    def step(
        self,
        champion: LaneStats,
        lanes: list[LaneStats],
        batch_size: int,
        points_since_swap: int,
    ) -> int | None:
        cfg = self.config
        players = [
            stats
            for stats in [champion, *lanes]
            if stats.n_scored >= cfg.warmup and stats.last_batch_loss is not None
        ]
        if champion not in players or len(players) < 2:
            for lane in lanes:
                lane.win_rounds = 0
            return None
        winner = min(players, key=lambda stats: stats.last_batch_loss)
        for stats in players:
            stats.rounds += 1
        winner.reward += 1
        total_rounds = champion.rounds
        champ_value = self._value(champion, total_rounds)
        champ_mean = champion.reward / champion.rounds
        best: int | None = None
        for index, lane in enumerate(lanes):
            if lane not in players:
                lane.win_rounds = 0
                continue
            mean = lane.reward / lane.rounds
            if (
                self._value(lane, total_rounds) > champ_value
                and mean > champ_mean + cfg.margin
            ):
                lane.win_rounds += 1
                if best is None or mean > lanes[best].reward / lanes[best].rounds:
                    best = index
            else:
                lane.win_rounds = 0
        if best is None or points_since_swap < cfg.min_dwell:
            return None
        if lanes[best].win_rounds < cfg.dwell:
            return None
        return best


def make_policy(config: SelectionConfig) -> SelectionPolicy:
    """Instantiate the policy named by ``config.policy``."""
    if config.policy == "ewma":
        return EwmaLossPolicy(config)
    if config.policy == "ucb":
        return UcbBanditPolicy(config)
    raise ConfigurationError(f"unknown selection policy {config.policy!r}")
