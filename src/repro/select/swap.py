"""Hot-swap: promote a challenger without dropping or re-scoring a point.

The swap runs under the session lock, at a micro-batch boundary: every
point up to the swap offset ``swap_t`` was just scored by the champion,
every queued point is still unscored.  The protocol, in commit order:

1. **WAL swap record (intent)** — a ``{"kind": "swap", "t", "spec",
   "config", "scorer", "results"}`` record is appended and fsynced
   (unless the policy is ``never``).  ``results`` are the champion's
   scored-but-possibly-uncollected results for the block that triggered
   the swap — the one block whose delivery the swap barrier would
   otherwise strand.  The record alone commits nothing.
2. **Checkpoint save (the commit point)** — the challenger detector is
   saved to the session's WAL barrier slot with the same atomic
   tempfile-plus-``os.replace`` contract as every checkpoint.  The
   ``os.replace`` is the commit: from here on, recovery finds a
   checkpoint whose clock reaches ``swap_t``, folds the swap record
   into the session's open metadata (replay planning folds a swap
   record only when the surviving checkpoint covers its ``t`` —
   otherwise the record is an aborted intent and is ignored), re-emits
   the record's carried results, and replays queued points through the
   challenger — exactly the post-swap behavior.
3. **In-memory install** — the checkpoint is loaded back and becomes
   the session's detector (the promoted champion is the *round-tripped*
   detector, so a swap and a crash-plus-recovery produce bitwise the
   same continuation), the session's spec label and fleet key flip to
   the lane's, and — when demotion is on — the old champion becomes a
   challenger lane, enabling a swap back on recurring drift.

Crash anywhere and no point is lost, doubled or reordered:

- between (1) and (2): the swap record is durable but the checkpoint is
  not — the swap **aborted**.  Recovery ignores the record, loads the
  last pre-swap checkpoint and replays the log through the *old*
  champion; the triggering block is re-scored bitwise (same state, same
  engine) and re-emitted.  The promotion simply never happened — it was
  never acknowledged anywhere user-visible.
- between (2) and (3): the swap **committed**.  Recovery installs the
  challenger at ``swap_t`` and re-emits the triggering block's results
  from the swap record, so even the block scored in the same breath as
  the swap is delivered exactly once.

Without a WAL the swap still round-trips the challenger through
checkpoint bytes (in memory), so "promotion" always means "what a
restart would have produced".
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from typing import Any

from repro.core.config import DetectorConfig
from repro.core.detector import StreamingAnomalyDetector
from repro.core.exceptions import ConfigurationError
from repro.core.registry import MODEL_CLASSES, AlgorithmSpec, build_detector
from repro.obs import NULL_TELEMETRY
from repro.select.race import ChallengerLane
from repro.streaming.checkpoint import (
    load_detector,
    peek_checkpoint,
    save_detector,
)

#: crash-injection hook for the mid-swap recovery tests: set the
#: ``REPRO_SELECT_CRASH`` environment variable to ``after_checkpoint``
#: or ``after_record`` and the process dies (``os._exit``) at that
#: point of the swap protocol — the on-disk state SIGKILL would leave.
_CRASH_ENV = "REPRO_SELECT_CRASH"


def _maybe_crash(point: str) -> None:
    if os.environ.get(_CRASH_ENV) == point:
        os._exit(42)


def expected_model_class(spec_label: str) -> str | None:
    """Model class name a spec label should checkpoint as (``None`` if
    the label is not a registry spec)."""
    model = str(spec_label).split("+", 1)[0]
    cls = MODEL_CLASSES.get(model)
    return cls.__name__ if cls is not None else None


# ----------------------------------------------------------------------
# warm-start
# ----------------------------------------------------------------------
def warm_start_detector(
    spec_label: str,
    n_channels: int,
    config: DetectorConfig | None = None,
    scorer: str | None = None,
    at: int = 0,
) -> StreamingAnomalyDetector:
    """Fresh detector whose stream clock is preset to offset ``at``.

    The detector's next point is stream index ``at`` (its ``t`` is
    ``at - 1``), so sequence numbers, checkpoint metadata and WAL replay
    cursors all stay continuous when it takes over a live stream — the
    cross-spec resume primitive under both challenger lanes and the
    ``resume``-with-a-new-spec path.  The model itself starts cold (it
    re-warms on the stream); only the clock carries over.
    """
    parts = str(spec_label).split("+")
    if len(parts) != 3:
        raise ConfigurationError(
            f"spec must look like 'model+task1+task2', got {spec_label!r}"
        )
    if int(at) < 0:
        raise ConfigurationError(f"warm-start offset must be >= 0, got {at}")
    detector = build_detector(
        AlgorithmSpec(*parts),
        n_channels=int(n_channels),
        config=config if config is not None else DetectorConfig(),
        scorer=scorer,
    )
    detector.t = int(at) - 1
    return detector


def warm_start_from_checkpoint(
    path: Any,
    spec_label: str,
    n_channels: int,
    config: DetectorConfig | None = None,
    scorer: str | None = None,
) -> StreamingAnomalyDetector:
    """Continue a checkpointed stream under a *different* spec.

    Reads the checkpoint's stream clock ``t`` and warm-starts a
    ``spec_label`` detector at ``t + 1`` — the next point the old spec
    would have scored is the first point the new spec scores, no point
    skipped or doubled (``tests/test_checkpoint_roundtrip.py``).
    """
    meta = peek_checkpoint(path)
    return warm_start_detector(
        spec_label,
        n_channels,
        config=config,
        scorer=scorer,
        at=int(meta["t"]) + 1,
    )


# ----------------------------------------------------------------------
# the swap itself
# ----------------------------------------------------------------------
def _roundtrip(detector: StreamingAnomalyDetector) -> StreamingAnomalyDetector:
    """Checkpoint round-trip in memory (the WAL-less swap path): the
    promoted detector always passes through the same ``__getstate__`` /
    ``__setstate__`` contract a durable checkpoint exercises, so a swap
    is indistinguishable from a save-restart-load."""
    return pickle.loads(pickle.dumps(detector, protocol=pickle.HIGHEST_PROTOCOL))


def hot_swap(
    session: Any,
    lane: ChallengerLane,
    telemetry=None,
    results: list[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """Promote ``lane`` to be ``session``'s champion.  Caller holds the
    session lock; the session's queue may be non-empty (queued points
    will be scored by the new champion, exactly as a restart would).

    ``results`` are the champion's result entries for the block that
    triggered the swap — carried in the WAL swap record so a crash at
    the swap boundary can still deliver them (see the module docstring).

    Returns the promotion event dict (``stream`` / ``t`` / ``from`` /
    ``to``).
    """
    race = session.race
    swap_t = int(lane.detector.t)
    old_spec = session.spec_label
    wal = session.wal
    if wal is not None:
        wal.log_swap(
            {
                "t": swap_t,
                "spec": lane.spec_label,
                "config": dataclasses.asdict(lane.detector_config),
                "scorer": lane.scorer,
                "results": [dict(entry) for entry in results or ()],
            }
        )
        _maybe_crash("after_record")
        durable = wal.config.fsync != "never"
        save_detector(lane.detector, wal.barrier_path, durable=durable)
        _maybe_crash("after_checkpoint")
        promoted = load_detector(wal.barrier_path)
        wal.barrier_t = swap_t
    else:
        promoted = _roundtrip(lane.detector)
    old_detector = session.detector
    old_meta = race.champion_meta
    session.detector = promoted
    if session.telemetry is not None and isinstance(
        promoted, StreamingAnomalyDetector
    ):
        promoted.telemetry = session.telemetry
    session.spec_label = lane.spec_label
    session.fleet_key = lane.fleet_key
    race.champion_meta = (
        lane.spec_label,
        lane.detector_config,
        lane.scorer,
        lane.fleet_key,
    )
    race.lanes.remove(lane)
    if (
        race.demote
        and old_meta is not None
        and isinstance(old_detector, StreamingAnomalyDetector)
    ):
        # The per-session telemetry follows the champion role: the
        # demoted detector's shadow steps must not count as champion
        # work.
        old_detector.telemetry = NULL_TELEMETRY
        race.lanes.append(
            ChallengerLane(old_meta[0], old_detector, old_meta[1], old_meta[2], old_meta[3])
        )
    # Every lane (and the new champion) re-warms: post-swap signals
    # compare behavior under the *new* regime, not stale averages.
    race.champion_stats.reset()
    for other in race.lanes:
        other.stats.reset()
    race.points_since_swap = 0
    race.promotions += 1
    event = {
        "stream": session.stream_id,
        "t": swap_t,
        "from": old_spec,
        "to": lane.spec_label,
    }
    race.events.append(event)
    # Fleet-level counter only: the per-session view already carries
    # ``race.promotions`` (via ``describe``), and counting both sides
    # would double the stats rollup.
    if telemetry is not None:
        telemetry.count("promotions")
        telemetry.event("promotion", **event)
    elif session.telemetry is not None:
        session.telemetry.count("promotions")
        session.telemetry.event("promotion", **event)
    return event
