"""Composable score postprocessors (PySAD-style calibration stages).

PySAD (arXiv:2009.02572) decomposes a streaming pipeline into model →
postprocessors, where each postprocessor is a small online transform of
the score sequence (running z-score, running min-max, smoothing).  Here
the stages serve one extra purpose the hot-swap subsystem needs: they
are held at the *session* level, not inside the detector, so a
promotion that replaces the detector keeps the calibration state — the
calibrated score sequence stays continuous across a swap even though
the raw score scale may jump with the new spec.

Stages are chained in order; each consumes one raw value and returns
one calibrated value.  They never feed back into the detector, so raw
scores (and every bitwise-equivalence guarantee over them) are
untouched — the serve layer reports calibrated values in a separate
``calibrated`` result field.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.exceptions import ConfigurationError

POSTPROCESSOR_NAMES = ("zscore", "minmax", "ewma")


class Postprocessor:
    """One online score transform: ``update(x)`` folds and returns."""

    name = "?"

    def update(self, value: float) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"name": self.name}


class ZScorePostprocessor(Postprocessor):
    """Running standardization via Welford's online mean/variance.

    The current value is folded *before* normalizing (PySAD's
    fit-then-transform convention), so the very first value maps to 0.
    """

    name = "zscore"

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> float:
        value = float(value)
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)
        if self.n < 2:
            return 0.0
        std = math.sqrt(self.m2 / (self.n - 1))
        if std == 0.0:
            return 0.0
        return (value - self.mean) / std

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "n": self.n, "mean": self.mean}


class MinMaxPostprocessor(Postprocessor):
    """Running min-max normalization into ``[0, 1]``."""

    name = "minmax"

    def __init__(self) -> None:
        self.low = math.inf
        self.high = -math.inf

    def reset(self) -> None:
        self.low = math.inf
        self.high = -math.inf

    def update(self, value: float) -> float:
        value = float(value)
        self.low = min(self.low, value)
        self.high = max(self.high, value)
        if self.high == self.low:
            return 0.0
        return (value - self.low) / (self.high - self.low)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "low": self.low if math.isfinite(self.low) else None,
            "high": self.high if math.isfinite(self.high) else None,
        }


class EwmaPostprocessor(Postprocessor):
    """Exponential smoothing of the score sequence."""

    name = "ewma"

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"postprocess ewma alpha must be in (0, 1], got {alpha}"
            )
        self.alpha = float(alpha)
        self.value: float | None = None

    def reset(self) -> None:
        self.value = None

    def update(self, value: float) -> float:
        value = float(value)
        if self.value is None:
            self.value = value
        else:
            self.value += self.alpha * (value - self.value)
        return self.value

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "alpha": self.alpha}


def make_postprocessor(name: str) -> Postprocessor:
    """Instantiate a postprocessor by registry name.

    ``"ewma:0.3"`` overrides the smoothing factor.
    """
    base, _, arg = str(name).partition(":")
    if base == "zscore":
        stage: Postprocessor = ZScorePostprocessor()
    elif base == "minmax":
        stage = MinMaxPostprocessor()
    elif base == "ewma":
        stage = EwmaPostprocessor(alpha=float(arg)) if arg else EwmaPostprocessor()
    else:
        raise ConfigurationError(
            f"unknown postprocessor {name!r} "
            f"(valid: {', '.join(POSTPROCESSOR_NAMES)})"
        )
    if arg and base != "ewma":
        raise ConfigurationError(f"postprocessor {base!r} takes no argument")
    return stage
