"""Online algorithm selection: champion/challenger racing and hot-swap.

No single streaming detector wins everywhere — SAFARI / "No Free Lunch"
(PAPERS.md, arXiv:1909.06927) frames streaming anomaly detection as a
*per-stream selection problem*, and learner-based drift detection
(arXiv:2606.20216) shows the model's own loss trend is the right signal
for deciding when the current choice has gone stale.  This package acts
on both, online, inside the serve layer:

- :mod:`repro.select.policy` — per-lane prequential signals (EWMA of
  model loss + drift-fire rate) and the selection policies that decide
  *when* a challenger has durably beaten the champion: an EWMA loss
  scorer and a UCB-style bandit, both with warm-up, hysteresis margin
  and min-dwell guards against flapping;
- :mod:`repro.select.race` — challenger *shadow lanes*: N extra
  detectors riding a champion session, scoring the same micro-batched
  points without emitting user-visible results;
- :mod:`repro.select.swap` — the hot-swap protocol: checkpoint save →
  warm-start under the new spec at the same stream offset, with a WAL
  swap record so a crash mid-swap recovers deterministically;
- :mod:`repro.select.postprocess` — PySAD-style (arXiv:2009.02572)
  composable score postprocessors held at the *session* level, so
  calibration state survives a swap.

Selection never changes what the champion computes: shadow lanes run
*after* the champion's results (and their ingest-latency samples) are
recorded, and a session with selection disabled is bitwise identical to
one without the subsystem (``tests/test_select.py``).
"""

from repro.select.policy import (
    POLICY_NAMES,
    EwmaLossPolicy,
    LaneStats,
    SelectionConfig,
    SelectionPolicy,
    UcbBanditPolicy,
    make_policy,
)
from repro.select.postprocess import (
    POSTPROCESSOR_NAMES,
    EwmaPostprocessor,
    MinMaxPostprocessor,
    Postprocessor,
    ZScorePostprocessor,
    make_postprocessor,
)
from repro.select.race import ChallengerLane, SelectionRace, build_race
from repro.select.swap import (
    expected_model_class,
    hot_swap,
    warm_start_detector,
    warm_start_from_checkpoint,
)

__all__ = [
    "POLICY_NAMES",
    "POSTPROCESSOR_NAMES",
    "ChallengerLane",
    "EwmaLossPolicy",
    "EwmaPostprocessor",
    "LaneStats",
    "MinMaxPostprocessor",
    "Postprocessor",
    "SelectionConfig",
    "SelectionPolicy",
    "SelectionRace",
    "UcbBanditPolicy",
    "ZScorePostprocessor",
    "build_race",
    "expected_model_class",
    "hot_swap",
    "make_policy",
    "make_postprocessor",
    "warm_start_detector",
    "warm_start_from_checkpoint",
]
