"""Challenger shadow lanes: race N specs against a live champion.

A :class:`SelectionRace` rides one serve session.  Every micro-batch
the champion scores, the race *observes*: each challenger lane steps
the same block through its own detector (the ordinary chunked engine —
the same code path the champion uses), folds the resulting losses into
its prequential :class:`~repro.select.policy.LaneStats`, and the
selection policy decides whether a challenger has durably won.  Lane
scores never reach the client — the champion's results are already in
the session's buffer (and its latency reservoir) before the race runs,
which is what keeps shadow cost out of the user-facing ingest-latency
percentiles.

Lanes are clock-aligned with the champion by construction: they are
warm-started at the session's stream offset
(:func:`~repro.select.swap.warm_start_detector`), so at any instant
``lane.detector.t == champion.t`` and a promotion hands over the stream
with no offset arithmetic.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.exceptions import ConfigurationError
from repro.obs import fingerprint_config
from repro.select.policy import (
    LaneStats,
    SelectionConfig,
    SelectionPolicy,
    make_policy,
)


class ChallengerLane:
    """One challenger: a shadow detector plus its rebuild recipe.

    The recipe (spec label, detector config, scorer, fleet key) is what
    a promotion installs on the session — and what a demotion preserves
    so the old champion can keep racing as a challenger.
    """

    def __init__(
        self,
        spec_label: str,
        detector: Any,
        detector_config: DetectorConfig,
        scorer: str | None,
        fleet_key: tuple | None,
    ) -> None:
        self.spec_label = spec_label
        self.detector = detector
        self.detector_config = detector_config
        self.scorer = scorer
        self.fleet_key = fleet_key
        self.stats = LaneStats()


class SelectionRace:
    """Champion/challenger racing state attached to one session.

    Args:
        lanes: the challenger lanes (clock-aligned with the champion).
        policy: the promote decider.
        config: shared policy knobs.
        demote: keep a promoted-over champion as a new challenger lane
            (enables swapping back on recurring drift).  ``False`` drops
            it.
    """

    def __init__(
        self,
        lanes: list[ChallengerLane],
        policy: SelectionPolicy,
        config: SelectionConfig,
        demote: bool = True,
    ) -> None:
        if not lanes:
            raise ConfigurationError("a selection race needs >= 1 challenger")
        self.lanes = list(lanes)
        self.policy = policy
        self.config = config
        self.demote = bool(demote)
        self.champion_stats = LaneStats()
        #: the champion's rebuild recipe ``(spec_label, detector_config,
        #: scorer, fleet_key)`` — consumed by a swap to demote it.
        self.champion_meta: tuple | None = None
        self.points_since_swap = 0
        self.promotions = 0
        #: promotion history (``{"t", "from", "to"}`` dicts, in order).
        self.events: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def observe(
        self,
        block: np.ndarray,
        champ_result: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        champ_detector: Any,
    ) -> ChallengerLane | None:
        """Shadow-score one block, update signals, ask the policy.

        Called after the champion's ``flush_finish`` with the same block
        and its ``step_chunk`` result.  Returns the lane to promote, or
        ``None``.  Caller holds the session lock.
        """
        a, _, drift, _ = champ_result
        alpha = self.config.ewma_alpha
        for lane in self.lanes:
            lane_a, _, lane_drift, _ = lane.detector.step_chunk(block)
            if getattr(lane.detector, "first_scored_step", 0) is not None:
                lane.stats.update(lane_a, lane_drift, alpha)
            else:
                lane.stats.skip(len(block))
        if getattr(champ_detector, "first_scored_step", 0) is not None:
            self.champion_stats.update(np.asarray(a), np.asarray(drift), alpha)
        else:
            self.champion_stats.skip(len(block))
        self.points_since_swap += len(block)
        index = self.policy.step(
            self.champion_stats,
            [lane.stats for lane in self.lanes],
            len(block),
            self.points_since_swap,
        )
        return None if index is None else self.lanes[index]

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """JSON-safe selection block for ``stats`` / ``describe``."""
        fire_weight = self.config.fire_weight
        return {
            "policy": self.policy.name,
            "config": {
                "warmup": self.config.warmup,
                "margin": self.config.margin,
                "dwell": self.config.dwell,
                "min_dwell": self.config.min_dwell,
                "ewma_alpha": self.config.ewma_alpha,
                "fire_weight": fire_weight,
                "ucb_c": self.config.ucb_c,
            },
            "champion": {
                "spec": self.champion_meta[0] if self.champion_meta else None,
                **self.champion_stats.as_dict(fire_weight),
            },
            "challengers": [
                {
                    "spec": lane.spec_label,
                    "t": int(getattr(lane.detector, "t", -1)),
                    **lane.stats.as_dict(fire_weight),
                }
                for lane in self.lanes
            ],
            "demote": self.demote,
            "points_since_swap": self.points_since_swap,
            "promotions": self.promotions,
            "events": [dict(event) for event in self.events],
        }


def build_race(
    select: dict[str, Any],
    *,
    champion_spec: str,
    n_channels: int,
    detector_config: DetectorConfig,
    scorer: str | None,
    fleet_key: tuple | None,
    at: int = 0,
) -> SelectionRace:
    """Build a :class:`SelectionRace` from a ``select`` request dict.

    The dict shape (the ``create`` verb's ``select`` field)::

        {"challengers": ["usad+ares+kswin",
                         {"spec": "online_arima+sw+musigma",
                          "config": {...}, "scorer": "al"}],
         "policy": "ewma", "warmup": 64, "margin": 0.05, "dwell": 32,
         "min_dwell": 256, "ewma_alpha": 0.05, "fire_weight": 0.25,
         "ucb_c": 1.0, "demote": true}

    Challenger entries inherit the champion's detector config and
    scorer unless they override them.  ``at`` is the session's current
    stream offset — lanes are warm-started there so their clocks track
    the champion's.
    """
    from repro.select.swap import warm_start_detector

    challengers = select.get("challengers")
    if not isinstance(challengers, (list, tuple)) or not challengers:
        raise ConfigurationError(
            "select needs a non-empty 'challengers' list of registry specs"
        )
    try:
        config = SelectionConfig(
            policy=str(select.get("policy", "ewma")),
            warmup=int(select.get("warmup", 64)),
            margin=float(select.get("margin", 0.05)),
            dwell=int(select.get("dwell", 32)),
            min_dwell=int(select.get("min_dwell", 256)),
            ewma_alpha=float(select.get("ewma_alpha", 0.05)),
            fire_weight=float(select.get("fire_weight", 0.25)),
            ucb_c=float(select.get("ucb_c", 1.0)),
        )
    except (TypeError, ValueError) as error:
        raise ConfigurationError(f"bad select config: {error}") from None
    lanes: list[ChallengerLane] = []
    for entry in challengers:
        if isinstance(entry, str):
            entry = {"spec": entry}
        if not isinstance(entry, dict) or "spec" not in entry:
            raise ConfigurationError(
                f"challenger entries are spec strings or "
                f"{{'spec': ...}} dicts, got {entry!r}"
            )
        label = str(entry["spec"])
        if label == champion_spec and not entry.get("config"):
            raise ConfigurationError(
                f"challenger {label!r} is identical to the champion"
            )
        try:
            lane_config = (
                DetectorConfig(**entry["config"])
                if entry.get("config")
                else detector_config
            )
        except TypeError as error:
            raise ConfigurationError(
                f"bad challenger config for {label!r}: {error}"
            ) from None
        lane_scorer = entry.get("scorer", scorer)
        detector = warm_start_detector(
            label, n_channels, config=lane_config, scorer=lane_scorer, at=at
        )
        lane_key = (
            label,
            int(n_channels),
            fingerprint_config({"detector": lane_config, "scorer": lane_scorer}),
        )
        lanes.append(
            ChallengerLane(label, detector, lane_config, lane_scorer, lane_key)
        )
    race = SelectionRace(
        lanes,
        make_policy(config),
        config,
        demote=bool(select.get("demote", True)),
    )
    race.champion_meta = (champion_spec, detector_config, scorer, fleet_key)
    return race
