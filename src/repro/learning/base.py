"""Interfaces for learning strategies (Section IV-B of the paper).

A learning strategy has two independent responsibilities:

- **Task 1** — deciding how and when the training set ``R_train`` is
  updated (:class:`TrainingSetStrategy`);
- **Task 2** — deciding when the model should be fine-tuned, i.e. concept
  drift detection (:class:`DriftDetector`).

Task-2 strategies need to know exactly how the training set changed at
every step (which vector entered, which left) so they can maintain running
statistics incrementally; Task-1 strategies therefore report each mutation
as an :class:`Update`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.types import FeatureVector, FloatArray


class UpdateKind(enum.Enum):
    """How a Task-1 strategy changed the training set at one step."""

    #: the new vector was appended (set grew by one).
    ADDED = "added"
    #: the new vector replaced an existing one (size unchanged).
    REPLACED = "replaced"
    #: the training set was left untouched.
    UNCHANGED = "unchanged"


@dataclass(frozen=True)
class Update:
    """Record of one training-set mutation.

    Attributes:
        kind: what happened.
        added: the vector that entered the set (``None`` for UNCHANGED).
        removed: the vector that left the set (only for REPLACED).
    """

    kind: UpdateKind
    added: FeatureVector | None = None
    removed: FeatureVector | None = None


@dataclass
class OpCounter:
    """Tally of elementary mathematical operations (Table II).

    Drift detectors increment these counters as they work, so the benchmark
    for Table II can report measured counts next to the paper's analytic
    formulas.
    """

    additions: int = 0
    multiplications: int = 0
    comparisons: int = 0

    def reset(self) -> None:
        self.additions = 0
        self.multiplications = 0
        self.comparisons = 0

    @property
    def total(self) -> int:
        return self.additions + self.multiplications + self.comparisons

    def __add__(self, other: "OpCounter") -> "OpCounter":
        return OpCounter(
            self.additions + other.additions,
            self.multiplications + other.multiplications,
            self.comparisons + other.comparisons,
        )


class TrainingSetStrategy:
    """Task 1: maintain the training set ``R_train`` of feature vectors.

    Args:
        capacity: the maximum number of retained feature vectors ``m``.
    """

    #: registry name, overridden by subclasses.
    name = "base"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: list[FeatureVector] = []

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def is_full(self) -> bool:
        return len(self._buffer) >= self.capacity

    def update(self, x: FeatureVector, score: float = 0.0) -> Update:
        """Offer feature vector ``x`` (with anomaly score ``score``) to the set.

        Returns:
            An :class:`Update` describing the mutation that was applied.
        """
        raise NotImplementedError

    def training_set(self) -> FloatArray:
        """The current training set stacked as ``(n, *feature_shape)``."""
        if not self._buffer:
            return np.empty((0,))
        return np.stack(self._buffer)

    def reset(self) -> None:
        """Drop all retained vectors."""
        self._buffer.clear()


class DriftDetector:
    """Task 2: decide when the model should be fine-tuned.

    The detector is driven by the framework in three phases per step:

    1. :meth:`observe` with the training-set :class:`Update`;
    2. :meth:`should_finetune` with the current step and training set;
    3. if the framework fine-tuned, :meth:`notify_finetuned` so the
       detector can snapshot its reference statistics.
    """

    name = "base"

    #: Whether :meth:`should_finetune` reads its ``train_set`` argument.
    #: Detectors that set this to ``False`` promise to ignore the argument
    #: entirely, which lets the chunked streaming engine skip materializing
    #: the training set (an ``np.stack`` over the whole Task-1 buffer) on
    #: every step.  ``True`` is the safe default.
    needs_train_set = True

    def __init__(self) -> None:
        self.ops = OpCounter()

    def observe(self, update: Update, t: int) -> None:
        """Incorporate one training-set mutation."""

    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        """Return whether the model should be fine-tuned at step ``t``."""
        raise NotImplementedError

    def notify_finetuned(self, t: int, train_set: FloatArray) -> None:
        """Called after a fine-tuning session completed at step ``t``."""

    def reset(self) -> None:
        """Forget all state, including the op counters."""
        self.ops.reset()
