"""Analytic operation-count formulas from Table II of the paper.

The paper compares the per-step cost of the two drift-detection
strategies for a training set of ``m`` feature vectors, data
representation length ``w`` and channel count ``N``:

===============  ==============  =============================
operation        mu/sigma        KSWIN
===============  ==============  =============================
additions        ``6 N w``       ``2 N m w``
multiplications  ``2 N w``       ``2 N m w``
comparisons      ``3 N w``       ``(1 + 4m) N w log2(m w) + N``
===============  ==============  =============================

These functions evaluate the formulas so the Table II benchmark can print
them next to the measured counter values from the live detectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class OpCounts:
    """Operation counts for one drift-detection step."""

    additions: int
    multiplications: int
    comparisons: int

    @property
    def total(self) -> int:
        return self.additions + self.multiplications + self.comparisons


def mu_sigma_ops(m: int, w: int, n_channels: int) -> OpCounts:
    """Table II column for the μ/σ-Change strategy.

    The cost is independent of ``m`` because the running statistics are
    updated incrementally: one replace touches each of the ``N*w`` feature
    dimensions a constant number of times.
    """
    _validate(m, w, n_channels)
    return OpCounts(
        additions=6 * n_channels * w,
        multiplications=2 * n_channels * w,
        comparisons=3 * n_channels * w,
    )


def kswin_ops(m: int, w: int, n_channels: int) -> OpCounts:
    """Table II column for the KSWIN strategy.

    The empirical CDF of one channel pools ``m*w`` samples, so the test is
    linear in ``m`` for arithmetic and ``O(m w log(m w))`` for the binary
    searches placing each element of both training sets into their merged
    order.
    """
    _validate(m, w, n_channels)
    log_term = math.log2(m * w) if m * w > 1 else 1.0
    return OpCounts(
        additions=2 * n_channels * m * w,
        multiplications=2 * n_channels * m * w,
        comparisons=int((1 + 4 * m) * n_channels * w * log_term) + n_channels,
    )


def kswin_incremental_ops(m: int, w: int, n_channels: int) -> OpCounts:
    """Per-step cost of the incremental (sorted-window) KSWIN path.

    Maintaining each channel's pooled sample sorted removes the sorting
    unit from the check: only the merged binary searches remain,
    ``~4 m w log2(m w)`` comparisons per channel.  The sorted-window
    upkeep (two ``O(w log(m w))`` searchsorted placements when a vector
    enters/leaves the set) is paid per *update* in ``observe``, not per
    check, and is negligible against the ``4 m`` search term.  Additions
    and multiplications (CDF differences and normalisation) are unchanged
    from :func:`kswin_ops`.
    """
    _validate(m, w, n_channels)
    log_term = math.log2(m * w) if m * w > 1 else 1.0
    return OpCounts(
        additions=2 * n_channels * m * w,
        multiplications=2 * n_channels * m * w,
        comparisons=int(4 * m * n_channels * w * log_term) + n_channels,
    )


def _validate(m: int, w: int, n_channels: int) -> None:
    if m < 1 or w < 1 or n_channels < 1:
        raise ValueError(
            f"m, w and n_channels must be >= 1, got m={m}, w={w}, N={n_channels}"
        )
