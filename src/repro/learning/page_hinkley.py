"""Page-Hinkley drift detection (library extension, not in the paper's grid).

The Page-Hinkley test is the classic sequential change-point detector for
a stream's mean: it accumulates deviations of the incoming values from
their running mean and flags drift when the accumulated sum departs from
its running minimum by more than a threshold ``lambda``.

Here the monitored stream is the sequence of training-set means (one
scalar per feature dimension, averaged), so the detector slots into the
same Task-2 interface as μ/σ-Change and KSWIN.  Provided as an extension
point for the paper's future-work direction of adapting further drift
detectors; benchmarked against the paper's two in the ablation suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray
from repro.learning.base import DriftDetector, Update, UpdateKind


class PageHinkley(DriftDetector):
    """Two-sided Page-Hinkley test over the training-set mean.

    Deviations are normalized by the running standard deviation, so both
    ``delta`` and ``threshold`` are in sigma units and the detector is
    scale-free.  The drift term ``-delta`` per step keeps the accumulated
    sum bounded on stationary streams (a zero ``delta`` would let the
    random walk cross any threshold eventually).

    Args:
        delta: magnitude tolerance in sigmas subtracted from each
            normalized deviation.
        threshold: accumulated normalized deviation ``lambda`` (sigmas)
            that flags drift.
        min_samples: observations required before the test may fire.
    """

    name = "page_hinkley"
    needs_train_set = False

    def __init__(
        self,
        delta: float = 0.1,
        threshold: float = 10.0,
        min_samples: int = 30,
    ) -> None:
        super().__init__()
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self._reset_statistics()

    def _reset_statistics(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0  # Welford accumulator for variance
        self._cum_up = 0.0
        self._cum_down = 0.0
        self._min_up = 0.0
        self._max_down = 0.0

    def observe(self, update: Update, t: int) -> None:
        if update.kind is UpdateKind.UNCHANGED or update.added is None:
            return
        value = float(np.mean(update.added))
        self._count += 1
        delta_mean = value - self._mean
        self._mean += delta_mean / self._count
        self._m2 += delta_mean * (value - self._mean)
        self.ops.additions += 4
        self.ops.multiplications += 2

        if self._count >= 2:
            deviation = (value - self._mean) / max(self._std, 1e-12)
            self._cum_up += deviation - self.delta
            self._cum_down += deviation + self.delta
            self._min_up = min(self._min_up, self._cum_up)
            self._max_down = max(self._max_down, self._cum_down)
        self.ops.additions += 4
        self.ops.multiplications += 1
        self.ops.comparisons += 2

    @property
    def _std(self) -> float:
        if self._count < 2:
            return 0.0
        return float(np.sqrt(self._m2 / self._count))

    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        self.ops.comparisons += 3
        if self._count < self.min_samples:
            return False
        upward = self._cum_up - self._min_up > self.threshold
        downward = self._max_down - self._cum_down > self.threshold
        return bool(upward or downward)

    def notify_finetuned(self, t: int, train_set: FloatArray) -> None:
        # Restart the test against the post-drift regime.
        self._reset_statistics()

    def reset(self) -> None:
        super().reset()
        self._reset_statistics()
