"""ADWIN: adaptive windowing for drift detection (Bifet & Gavaldà, 2007).

The related work (Section II) cites ADWIN as the change detector behind
Belacel et al.'s streaming LSTM: keep a window of recent observations and
shrink it whenever two sub-windows have means that differ more than a
statistical bound.  Following ADWIN2's variance-adaptive form
(appropriate for unbounded real-valued streams, unlike the plain
Hoeffding bound which assumes values in [0, 1]):

    eps = sqrt( (2 / m) * var_W * ln(2 W / delta) )
          + (2 / (3 m)) * ln(2 W / delta)

with ``m`` the harmonic mean of the sub-window sizes, ``var_W`` the
window variance and ``W`` the window length.  A detected cut means the data before the cut no longer matches
the present distribution — i.e. concept drift.

This implementation keeps an explicit deque (exact means, O(W) per check)
rather than the logarithmic bucket compression of the original; at the
training-set sizes of this framework (hundreds) exactness is worth more
than the speed-up, and the checks are throttled via ``check_every``.

Slots into the Task-2 interface: the monitored scalar is the mean of each
incoming feature vector, as with :class:`~repro.learning.page_hinkley.PageHinkley`.
"""

from __future__ import annotations

import collections
import math

import numpy as np

from repro.core.types import FloatArray
from repro.learning.base import DriftDetector, Update, UpdateKind


class ADWIN(DriftDetector):
    """Adaptive-windowing drift detector over the training-set mean.

    Args:
        delta: confidence parameter of the Hoeffding bound; smaller values
            make cuts rarer.
        max_window: cap on the adaptive window length.
        check_every: run the (O(W)) cut search every this many
            observations.
        min_subwindow: smallest sub-window considered on each side of a
            candidate cut.
    """

    name = "adwin"
    needs_train_set = False

    def __init__(
        self,
        delta: float = 0.002,
        max_window: int = 1000,
        check_every: int = 8,
        min_subwindow: int = 10,
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if max_window < 2 * min_subwindow:
            raise ValueError("max_window must hold two minimal sub-windows")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if min_subwindow < 1:
            raise ValueError(f"min_subwindow must be >= 1, got {min_subwindow}")
        self.delta = delta
        self.max_window = max_window
        self.check_every = check_every
        self.min_subwindow = min_subwindow
        self._window: collections.deque[float] = collections.deque(maxlen=max_window)
        self._observed = 0
        self._drift_pending = False

    @property
    def window_length(self) -> int:
        return len(self._window)

    def observe(self, update: Update, t: int) -> None:
        if update.kind is UpdateKind.UNCHANGED or update.added is None:
            return
        self._window.append(float(np.mean(update.added)))
        self._observed += 1
        self.ops.additions += 1
        if self._observed % self.check_every == 0:
            if self._detect_cut():
                self._drift_pending = True

    def _detect_cut(self) -> bool:
        """Search for a cut point; on success drop the stale prefix."""
        n = len(self._window)
        if n < 2 * self.min_subwindow:
            return False
        values = np.fromiter(self._window, dtype=np.float64, count=n)
        prefix = np.cumsum(values)
        total = prefix[-1]
        variance = float(values.var())
        log_term = math.log(2.0 * n / self.delta)
        self.ops.additions += 2 * n
        found_cut = None
        for cut in range(self.min_subwindow, n - self.min_subwindow + 1):
            left_mean = prefix[cut - 1] / cut
            right_mean = (total - prefix[cut - 1]) / (n - cut)
            harmonic = 1.0 / (1.0 / cut + 1.0 / (n - cut))
            epsilon = math.sqrt(2.0 * variance * log_term / harmonic) + (
                2.0 / (3.0 * harmonic)
            ) * log_term
            self.ops.multiplications += 6
            self.ops.comparisons += 1
            if abs(left_mean - right_mean) > epsilon:
                found_cut = cut  # keep scanning: prefer the latest cut
        if found_cut is None:
            return False
        for _ in range(found_cut):
            self._window.popleft()
        return True

    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        self.ops.comparisons += 1
        if self._drift_pending:
            self._drift_pending = False
            return True
        return False

    def notify_finetuned(self, t: int, train_set: FloatArray) -> None:
        self._drift_pending = False

    def reset(self) -> None:
        super().reset()
        self._window.clear()
        self._observed = 0
        self._drift_pending = False
