"""Sliding-window training-set strategy (SW)."""

from __future__ import annotations

import collections

import numpy as np

from repro.core.types import FeatureVector, FloatArray
from repro.learning.base import TrainingSetStrategy, Update, UpdateKind


class SlidingWindow(TrainingSetStrategy):
    """Keep the ``m`` most recent feature vectors.

    This is the only Task-1 strategy that preserves stream order and
    contiguity, which the VAR model's least-squares estimation requires.
    """

    name = "sw"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._deque: collections.deque[FeatureVector] = collections.deque(
            maxlen=capacity
        )

    def __len__(self) -> int:
        return len(self._deque)

    @property
    def is_full(self) -> bool:
        return len(self._deque) >= self.capacity

    def update(self, x: FeatureVector, score: float = 0.0) -> Update:
        x = np.asarray(x, dtype=np.float64)
        if len(self._deque) < self.capacity:
            self._deque.append(x)
            return Update(UpdateKind.ADDED, added=x)
        removed = self._deque[0]
        self._deque.append(x)  # deque with maxlen evicts the oldest
        return Update(UpdateKind.REPLACED, added=x, removed=removed)

    def training_set(self) -> FloatArray:
        if not self._deque:
            return np.empty((0,))
        return np.stack(list(self._deque))

    def reset(self) -> None:
        self._deque.clear()
