"""Sliding-window training-set strategy (SW)."""

from __future__ import annotations

import collections

import numpy as np

from repro.core.types import FeatureVector, FloatArray
from repro.learning.base import TrainingSetStrategy, Update, UpdateKind


class SlidingWindow(TrainingSetStrategy):
    """Keep the ``m`` most recent feature vectors.

    This is the only Task-1 strategy that preserves stream order and
    contiguity, which the VAR model's least-squares estimation requires.
    """

    name = "sw"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._deque: collections.deque[FeatureVector] = collections.deque(
            maxlen=capacity
        )

    def __len__(self) -> int:
        return len(self._deque)

    @property
    def is_full(self) -> bool:
        return len(self._deque) >= self.capacity

    def update(self, x: FeatureVector, score: float = 0.0) -> Update:
        x = np.asarray(x, dtype=np.float64)
        if len(self._deque) < self.capacity:
            self._deque.append(x)
            return Update(UpdateKind.ADDED, added=x)
        removed = self._deque[0]
        self._deque.append(x)  # deque with maxlen evicts the oldest
        return Update(UpdateKind.REPLACED, added=x, removed=removed)

    def training_set(self) -> FloatArray:
        if not self._deque:
            return np.empty((0,))
        return np.stack(list(self._deque))

    # ------------------------------------------------------------------
    # block preview/commit for the fused fleet engine
    # ------------------------------------------------------------------
    def preview_block(
        self, windows: FloatArray
    ) -> tuple[np.ndarray, FloatArray]:
        """Eviction schedule for pushing ``windows``, without mutating.

        Returns ``(replaced, removed)``: a ``(B,)`` bool mask of which
        pushes evict an element, and a ``(B, *feature_shape)`` array
        whose row ``j`` holds the evicted element for replacing pushes
        and zeros otherwise (the μ/σ lane replays an append as a replace
        with a zero removed row, which is bit-identical).
        """
        windows = np.asarray(windows, dtype=np.float64)
        n_pushes = len(windows)
        held = len(self._deque)
        replaced = np.zeros(n_pushes, dtype=bool)
        removed = np.zeros_like(windows)
        first_evict = max(self.capacity - held, 0)
        if first_evict >= n_pushes:
            return replaced, removed
        replaced[first_evict:] = True
        for j in range(first_evict, n_pushes):
            # Oldest element of the virtual sequence (deque + pushes so far).
            p = held + j - self.capacity
            removed[j] = self._deque[p] if p < held else windows[p - held]
        return replaced, removed

    def commit_block(self, windows: FloatArray) -> None:
        """Apply ``B`` pushes at once; bit-equal to ``B`` :meth:`update`
        calls (the fleet engine previews first, commits only when no
        step fired)."""
        windows = np.asarray(windows, dtype=np.float64)
        self._deque.extend(np.array(w) for w in windows)

    def reset(self) -> None:
        self._deque.clear()
