"""KSWIN drift detection via the two-sample Kolmogorov-Smirnov test.

Following Raab et al. (2020) as adopted by the paper, the current training
set is compared per channel against the training set snapshotted at the
last fine-tuning session.  The null hypothesis (same distribution) is
rejected when the KS statistic exceeds

    c(alpha*) * sqrt((r_i + r_t) / (r_i * r_t))

with the repeated-testing correction ``alpha* = alpha / r`` for training
sets of ``r`` samples per channel.  For multichannel data the test runs on
every channel independently and fires if any channel rejects.

Two execution paths produce bitwise-identical decisions:

- **incremental** (default): the detector maintains each channel's pooled
  sample as a *sorted* array, updated from the Task-1 :class:`Update`
  stream with ``np.searchsorted`` insertions and deletions, so a check
  costs only the merged binary searches — no per-check re-sort.  Because
  the reference snapshot is also stored pre-sorted, both inputs to
  :func:`ks_statistic_sorted` are the same arrays the batch path would
  produce by sorting, and the statistic is bitwise equal.
- **batch**: re-pool and re-sort the full training set at every check
  (the historical behaviour).  Also the automatic fallback whenever the
  observed update stream cannot vouch for the training set — e.g. when
  :meth:`KSWIN.should_finetune` is called directly without feeding
  :meth:`KSWIN.observe`, as the Table II op-count benchmark does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import FloatArray
from repro.learning.base import DriftDetector, Update, UpdateKind


def ks_statistic_sorted(sample_a: FloatArray, sample_b: FloatArray) -> float:
    """KS statistic for two samples that are **already sorted** ascending.

    The hot half of :func:`ks_statistic`: both empirical CDFs are read off
    with binary searches over the merged values, skipping the two sorts.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    merged = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, merged, side="right") / a.size
    cdf_b = np.searchsorted(b, merged, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_statistic(sample_a: FloatArray, sample_b: FloatArray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``.

    Computed exactly from the empirical CDFs of both samples; equivalent to
    ``scipy.stats.ks_2samp(a, b).statistic`` (verified by the test suite).
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(sample_b, dtype=np.float64).ravel())
    return ks_statistic_sorted(a, b)


def ks_critical_value(alpha: float, r_a: int, r_b: int, form: str = "standard") -> float:
    """Critical KS distance for significance level ``alpha``.

    Args:
        alpha: significance level (after any repeated-testing correction).
        r_a: size of the first sample.
        r_b: size of the second sample.
        form: ``"standard"`` uses the Smirnov asymptotic coefficient
            ``sqrt(ln(2/alpha) / 2)``; ``"paper"`` uses the coefficient
            printed in the paper, ``sqrt(ln(2/alpha))`` (a constant factor
            ``sqrt(2)`` larger, i.e. more conservative).

    Returns:
        The distance above which the null hypothesis is rejected.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if r_a < 1 or r_b < 1:
        raise ValueError("sample sizes must be >= 1")
    if form == "standard":
        coefficient = math.sqrt(math.log(2.0 / alpha) / 2.0)
    elif form == "paper":
        coefficient = math.sqrt(math.log(2.0 / alpha))
    else:
        raise ValueError(f"form must be 'standard' or 'paper', got {form!r}")
    return coefficient * math.sqrt((r_a + r_b) / (r_a * r_b))


class KSWIN(DriftDetector):
    """Per-channel two-sample KS drift detector over the training set.

    The detector snapshots the training set whenever the model is
    fine-tuned and compares the current training set against that snapshot
    at every step.  Each channel's values are pooled across all feature
    vectors (``m * w`` samples per channel), tested independently, and the
    detector fires if any channel's statistic exceeds the corrected
    critical value.

    Args:
        alpha: base significance level before the ``alpha / r`` correction;
            paper/Raab default 0.005.
        critical_form: see :func:`ks_critical_value`.
        check_every: only run the (expensive) test every this many steps;
            1 reproduces the paper, larger values trade latency for speed.
        correct_alpha: apply Raab et al.'s repeated-testing correction
            ``alpha* = alpha / r``.  Disable only to demonstrate why the
            correction matters (the false-positive-rate ablation).
        incremental: maintain per-channel sorted samples from the
            :meth:`observe` update stream so each check skips the sorts.
            Decisions are bitwise-identical to the batch path; the detector
            falls back to batch whenever the observed stream does not match
            the training set it is asked about.
    """

    name = "kswin"

    def __init__(
        self,
        alpha: float = 0.005,
        critical_form: str = "standard",
        check_every: int = 1,
        correct_alpha: bool = True,
        incremental: bool = True,
    ) -> None:
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.alpha = alpha
        self.critical_form = critical_form
        self.check_every = check_every
        self.correct_alpha = correct_alpha
        self.incremental = incremental
        self._reference: FloatArray | None = None
        #: reference channels pre-sorted, built lazily for the fast path.
        self._reference_sorted: list[FloatArray] | None = None
        #: per-channel sorted pools mirroring the Task-1 training set;
        #: ``None`` until a clean ADDED stream establishes them (or after
        #: any desync, which permanently demotes this detector to batch).
        self._current_sorted: list[FloatArray] | None = None

    @staticmethod
    def _per_channel(train_set: FloatArray) -> FloatArray:
        """Pool a ``(m, w, N)`` (or ``(m, d)``) training set to ``(N, m*w)``."""
        array = np.asarray(train_set, dtype=np.float64)
        if array.ndim == 3:
            m, w, n = array.shape
            return array.transpose(2, 0, 1).reshape(n, m * w)
        if array.ndim == 2:
            return array.T.copy()
        raise ValueError(f"unsupported training-set shape {array.shape}")

    @staticmethod
    def _vector_channels(vector: FloatArray) -> list[FloatArray] | None:
        """Split one feature vector into its per-channel value arrays."""
        if vector.ndim == 2:  # (w, N) representation: channel = column
            return [vector[:, c] for c in range(vector.shape[1])]
        if vector.ndim == 1:  # (d,) raw vector: one value per channel
            return [vector[c : c + 1] for c in range(vector.shape[0])]
        return None

    @staticmethod
    def _insert_sorted(arr: FloatArray, values: FloatArray) -> FloatArray:
        values = np.sort(np.asarray(values, dtype=np.float64))
        return np.insert(arr, np.searchsorted(arr, values), values)

    @staticmethod
    def _delete_sorted(arr: FloatArray, values: FloatArray) -> FloatArray | None:
        """Remove ``values`` from sorted ``arr``; ``None`` if any is absent."""
        values = np.sort(np.asarray(values, dtype=np.float64))
        pos = np.searchsorted(arr, values, side="left")
        # Equal removed values occupy consecutive slots in ``arr``: offset
        # each occurrence past the first within its tie group.
        pos = pos + (
            np.arange(values.size) - np.searchsorted(values, values, side="left")
        )
        if values.size and (
            pos[-1] >= arr.size or not np.array_equal(arr[pos], values)
        ):
            return None  # value not present bitwise — state is out of sync
        return np.delete(arr, pos)

    def observe(self, update: Update, t: int) -> None:
        if not self.incremental or update.kind is UpdateKind.UNCHANGED:
            return
        if update.added is None:
            return
        added = np.asarray(update.added, dtype=np.float64)
        channels = self._vector_channels(added)
        if channels is None:
            self._current_sorted = None
            return
        if self._current_sorted is None:
            if update.removed is not None:
                return  # joined mid-stream: the full set was never observed
            self._current_sorted = [np.sort(values) for values in channels]
            return
        if len(channels) != len(self._current_sorted):
            self._current_sorted = None
            return
        removed_channels: list[FloatArray] | None = None
        if update.removed is not None:
            removed = np.asarray(update.removed, dtype=np.float64)
            removed_channels = self._vector_channels(removed)
            if removed_channels is None or len(removed_channels) != len(channels):
                self._current_sorted = None
                return
        for i, values in enumerate(channels):
            arr = self._current_sorted[i]
            if removed_channels is not None:
                deleted = self._delete_sorted(arr, removed_channels[i])
                if deleted is None:
                    self._current_sorted = None
                    return
                arr = deleted
            self._current_sorted[i] = self._insert_sorted(arr, values)
            # Maintenance cost: one binary search per inserted/removed value.
            size = max(arr.size, 2)
            searches = values.size * (2 if removed_channels is not None else 1)
            self.ops.comparisons += searches * max(int(math.log2(size)), 1)

    def _incremental_in_sync(self, train_set: FloatArray) -> bool:
        """Whether the observed sorted pools describe exactly ``train_set``."""
        if not self.incremental or self._current_sorted is None:
            return False
        shape = np.asarray(train_set).shape
        if len(shape) == 3:
            n_channels, per_channel = shape[2], shape[0] * shape[1]
        elif len(shape) == 2:
            n_channels, per_channel = shape[1], shape[0]
        else:
            return False
        return len(self._current_sorted) == n_channels and all(
            pool.size == per_channel for pool in self._current_sorted
        )

    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        if train_set.size == 0:
            return False
        if self._reference is None:
            self._reference = self._per_channel(train_set)
            self._reference_sorted = None
            return False
        if t % self.check_every != 0:
            return False
        if self._incremental_in_sync(train_set):
            return self._check_incremental()
        return self._check_batch(train_set)

    def _check_incremental(self) -> bool:
        """KS tests over the pre-sorted pools: no sorting on the hot path."""
        assert self._current_sorted is not None
        if self._reference_sorted is None:
            assert self._reference is not None
            self._reference_sorted = [
                np.sort(channel) for channel in self._reference
            ]
        if len(self._current_sorted) != len(self._reference_sorted):
            raise ValueError(
                "channel count changed between snapshots: "
                f"{len(self._reference_sorted)} -> {len(self._current_sorted)}"
            )
        for ref, cur in zip(self._reference_sorted, self._current_sorted):
            r_i, r_t = ref.size, cur.size
            corrected_alpha = (
                self.alpha / max(r_i, r_t) if self.correct_alpha else self.alpha
            )
            critical = ks_critical_value(
                corrected_alpha, r_i, r_t, form=self.critical_form
            )
            distance = ks_statistic_sorted(ref, cur)
            self._count_ops_incremental(r_i, r_t)
            if distance > critical:
                return True
        return False

    def _check_batch(self, train_set: FloatArray) -> bool:
        """Re-pool and re-sort the training set (the historical path)."""
        assert self._reference is not None
        current = self._per_channel(train_set)
        if current.shape[0] != self._reference.shape[0]:
            raise ValueError(
                "channel count changed between snapshots: "
                f"{self._reference.shape[0]} -> {current.shape[0]}"
            )
        n_channels = current.shape[0]
        for channel in range(n_channels):
            ref = self._reference[channel]
            cur = current[channel]
            r_i, r_t = ref.size, cur.size
            corrected_alpha = (
                self.alpha / max(r_i, r_t) if self.correct_alpha else self.alpha
            )
            critical = ks_critical_value(
                corrected_alpha, r_i, r_t, form=self.critical_form
            )
            distance = ks_statistic(ref, cur)
            self._count_ops(r_i, r_t)
            if distance > critical:
                return True
        return False

    def _count_ops(self, r_i: int, r_t: int) -> None:
        """Approximate op accounting for one channel's KS test (Table II)."""
        total = r_i + r_t
        log_total = max(int(math.log2(total)) if total > 1 else 1, 1)
        # Sorting both samples: ~ n log n comparisons; searchsorted per
        # element of the merged array into each sample: ~ 2 n log n more.
        self.ops.comparisons += 3 * total * log_total + 1
        # CDF differences and the max scan.
        self.ops.additions += 2 * total
        # CDF normalisation divisions (counted as multiplications).
        self.ops.multiplications += 2 * total

    def _count_ops_incremental(self, r_i: int, r_t: int) -> None:
        """Op accounting for one channel's KS test on pre-sorted samples."""
        total = r_i + r_t
        log_total = max(int(math.log2(total)) if total > 1 else 1, 1)
        # No sorts: only the two searchsorted passes over the merged array.
        self.ops.comparisons += 2 * total * log_total + 1
        self.ops.additions += 2 * total
        self.ops.multiplications += 2 * total

    def notify_finetuned(self, t: int, train_set: FloatArray) -> None:
        if train_set.size:
            self._reference = self._per_channel(train_set)
            self._reference_sorted = None

    def reset(self) -> None:
        super().reset()
        self._reference = None
        self._reference_sorted = None
        self._current_sorted = None
