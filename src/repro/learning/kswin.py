"""KSWIN drift detection via the two-sample Kolmogorov-Smirnov test.

Following Raab et al. (2020) as adopted by the paper, the current training
set is compared per channel against the training set snapshotted at the
last fine-tuning session.  The null hypothesis (same distribution) is
rejected when the KS statistic exceeds

    c(alpha*) * sqrt((r_i + r_t) / (r_i * r_t))

with the repeated-testing correction ``alpha* = alpha / r`` for training
sets of ``r`` samples per channel.  For multichannel data the test runs on
every channel independently and fires if any channel rejects.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import FloatArray
from repro.learning.base import DriftDetector


def ks_statistic(sample_a: FloatArray, sample_b: FloatArray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``.

    Computed exactly from the empirical CDFs of both samples; equivalent to
    ``scipy.stats.ks_2samp(a, b).statistic`` (verified by the test suite).
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(sample_b, dtype=np.float64).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    merged = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, merged, side="right") / a.size
    cdf_b = np.searchsorted(b, merged, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_critical_value(alpha: float, r_a: int, r_b: int, form: str = "standard") -> float:
    """Critical KS distance for significance level ``alpha``.

    Args:
        alpha: significance level (after any repeated-testing correction).
        r_a: size of the first sample.
        r_b: size of the second sample.
        form: ``"standard"`` uses the Smirnov asymptotic coefficient
            ``sqrt(ln(2/alpha) / 2)``; ``"paper"`` uses the coefficient
            printed in the paper, ``sqrt(ln(2/alpha))`` (a constant factor
            ``sqrt(2)`` larger, i.e. more conservative).

    Returns:
        The distance above which the null hypothesis is rejected.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if r_a < 1 or r_b < 1:
        raise ValueError("sample sizes must be >= 1")
    if form == "standard":
        coefficient = math.sqrt(math.log(2.0 / alpha) / 2.0)
    elif form == "paper":
        coefficient = math.sqrt(math.log(2.0 / alpha))
    else:
        raise ValueError(f"form must be 'standard' or 'paper', got {form!r}")
    return coefficient * math.sqrt((r_a + r_b) / (r_a * r_b))


class KSWIN(DriftDetector):
    """Per-channel two-sample KS drift detector over the training set.

    The detector snapshots the training set whenever the model is
    fine-tuned and compares the current training set against that snapshot
    at every step.  Each channel's values are pooled across all feature
    vectors (``m * w`` samples per channel), tested independently, and the
    detector fires if any channel's statistic exceeds the corrected
    critical value.

    Args:
        alpha: base significance level before the ``alpha / r`` correction;
            paper/Raab default 0.005.
        critical_form: see :func:`ks_critical_value`.
        check_every: only run the (expensive) test every this many steps;
            1 reproduces the paper, larger values trade latency for speed.
        correct_alpha: apply Raab et al.'s repeated-testing correction
            ``alpha* = alpha / r``.  Disable only to demonstrate why the
            correction matters (the false-positive-rate ablation).
    """

    name = "kswin"

    def __init__(
        self,
        alpha: float = 0.005,
        critical_form: str = "standard",
        check_every: int = 1,
        correct_alpha: bool = True,
    ) -> None:
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.alpha = alpha
        self.critical_form = critical_form
        self.check_every = check_every
        self.correct_alpha = correct_alpha
        self._reference: FloatArray | None = None

    @staticmethod
    def _per_channel(train_set: FloatArray) -> FloatArray:
        """Pool a ``(m, w, N)`` (or ``(m, d)``) training set to ``(N, m*w)``."""
        array = np.asarray(train_set, dtype=np.float64)
        if array.ndim == 3:
            m, w, n = array.shape
            return array.transpose(2, 0, 1).reshape(n, m * w)
        if array.ndim == 2:
            return array.T.copy()
        raise ValueError(f"unsupported training-set shape {array.shape}")

    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        if train_set.size == 0:
            return False
        if self._reference is None:
            self._reference = self._per_channel(train_set)
            return False
        if t % self.check_every != 0:
            return False
        current = self._per_channel(train_set)
        if current.shape[0] != self._reference.shape[0]:
            raise ValueError(
                "channel count changed between snapshots: "
                f"{self._reference.shape[0]} -> {current.shape[0]}"
            )
        n_channels = current.shape[0]
        for channel in range(n_channels):
            ref = self._reference[channel]
            cur = current[channel]
            r_i, r_t = ref.size, cur.size
            corrected_alpha = (
                self.alpha / max(r_i, r_t) if self.correct_alpha else self.alpha
            )
            critical = ks_critical_value(
                corrected_alpha, r_i, r_t, form=self.critical_form
            )
            distance = ks_statistic(ref, cur)
            self._count_ops(r_i, r_t)
            if distance > critical:
                return True
        return False

    def _count_ops(self, r_i: int, r_t: int) -> None:
        """Approximate op accounting for one channel's KS test (Table II)."""
        total = r_i + r_t
        log_total = max(int(math.log2(total)) if total > 1 else 1, 1)
        # Sorting both samples: ~ n log n comparisons; searchsorted per
        # element of the merged array into each sample: ~ 2 n log n more.
        self.ops.comparisons += 3 * total * log_total + 1
        # CDF differences and the max scan.
        self.ops.additions += 2 * total
        # CDF normalisation divisions (counted as multiplications).
        self.ops.multiplications += 2 * total

    def notify_finetuned(self, t: int, train_set: FloatArray) -> None:
        if train_set.size:
            self._reference = self._per_channel(train_set)

    def reset(self) -> None:
        super().reset()
        self._reference = None
