"""Reservoir-based training-set strategies (URES and ARES)."""

from __future__ import annotations

import numpy as np

from repro.core.types import FeatureVector
from repro.learning.base import TrainingSetStrategy, Update, UpdateKind


class UniformReservoir(TrainingSetStrategy):
    """Uniform reservoir sampling over the stream (URES).

    While fewer than ``m`` vectors have been seen, every vector is added.
    Afterwards the new vector replaces a uniformly chosen resident with
    probability ``m / t`` (Vitter's algorithm R), so at any time every
    stream vector seen so far is retained with equal probability.
    """

    name = "ures"

    def __init__(self, capacity: int, rng: np.random.Generator | None = None) -> None:
        super().__init__(capacity)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._seen = 0

    def update(self, x: FeatureVector, score: float = 0.0) -> Update:
        x = np.asarray(x, dtype=np.float64)
        self._seen += 1
        if len(self._buffer) < self.capacity:
            self._buffer.append(x)
            return Update(UpdateKind.ADDED, added=x)
        if self._rng.uniform() < self.capacity / self._seen:
            victim = int(self._rng.integers(0, self.capacity))
            removed = self._buffer[victim]
            self._buffer[victim] = x
            return Update(UpdateKind.REPLACED, added=x, removed=removed)
        return Update(UpdateKind.UNCHANGED)

    def reset(self) -> None:
        super().reset()
        self._seen = 0


class AnomalyAwareReservoir(TrainingSetStrategy):
    """Anomaly-aware reservoir (ARES) retaining the most "normal" vectors.

    Every incoming vector receives a priority ``p_t = u ** (lambda1 /
    exp(-lambda2 * f_t))`` with ``u`` drawn uniformly from ``u_range``
    (Section IV-B).  Since ``u < 1``, higher anomaly scores ``f_t`` produce
    exponentially larger exponents and hence *lower* priorities, so normal
    vectors dominate the reservoir while the random base keeps it from
    collapsing onto a fixed set.

    When the reservoir is full, the incoming vector replaces the resident
    with the *lowest* priority, and only if that priority is below ``p_t``
    (the paper's helper ``c(ps, p_t)``).

    Args:
        capacity: reservoir size ``m``.
        lambda1: priority steepness, paper default 3.
        lambda2: score sensitivity, paper default 3.
        u_range: uniform base range; the paper restricts it to
            ``[0.7, 0.9]`` (from the full ``[0, 1]``) for its experiments.
        rng: random generator.
    """

    name = "ares"

    def __init__(
        self,
        capacity: int,
        lambda1: float = 3.0,
        lambda2: float = 3.0,
        u_range: tuple[float, float] = (0.7, 0.9),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(capacity)
        if lambda1 <= 0 or lambda2 <= 0:
            raise ValueError("lambda1 and lambda2 must be positive")
        low, high = u_range
        if not 0.0 < low <= high < 1.0:
            raise ValueError(f"u_range must satisfy 0 < low <= high < 1, got {u_range}")
        self.lambda1 = lambda1
        self.lambda2 = lambda2
        self.u_range = (float(low), float(high))
        self._rng = rng if rng is not None else np.random.default_rng()
        self._priorities: list[float] = []

    def priority(self, score: float) -> float:
        """Draw the priority ``p_t`` for a vector with anomaly score ``score``."""
        u = self._rng.uniform(*self.u_range)
        exponent = self.lambda1 / np.exp(-self.lambda2 * score)
        return float(u**exponent)

    def update(self, x: FeatureVector, score: float = 0.0) -> Update:
        x = np.asarray(x, dtype=np.float64)
        p_t = self.priority(score)
        if len(self._buffer) < self.capacity:
            self._buffer.append(x)
            self._priorities.append(p_t)
            return Update(UpdateKind.ADDED, added=x)
        victim = int(np.argmin(self._priorities))
        if self._priorities[victim] < p_t:
            removed = self._buffer[victim]
            self._buffer[victim] = x
            self._priorities[victim] = p_t
            return Update(UpdateKind.REPLACED, added=x, removed=removed)
        return Update(UpdateKind.UNCHANGED)

    def priorities(self) -> list[float]:
        """Current resident priorities (test/diagnostic hook)."""
        return list(self._priorities)

    def reset(self) -> None:
        super().reset()
        self._priorities.clear()
