"""Task-2 strategies: when to fine-tune the model (concept drift detection).

Implements the paper's three options (Section IV-B, Task 2):

- :class:`RegularFineTuning` — fine-tune every ``m`` steps regardless of
  the data;
- :class:`MuSigmaChange` — maintain a running mean and standard deviation
  of the training set and fire when either departs from the snapshot taken
  at the last fine-tuning session;
- :class:`KSWIN` lives in :mod:`repro.learning.kswin`.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import FloatArray
from repro.learning.base import DriftDetector, Update, UpdateKind


class RegularFineTuning(DriftDetector):
    """Fine-tune after every ``interval`` time steps.

    The paper's "regular fine-tuning" baseline: ``t mod m == 0`` triggers a
    session.  It is drift-oblivious by construction and serves as the
    control strategy.
    """

    name = "regular"
    needs_train_set = False

    def __init__(self, interval: int) -> None:
        super().__init__()
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval

    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        self.ops.comparisons += 1
        return t > 0 and t % self.interval == 0

    def reset(self) -> None:
        super().reset()


class NeverFineTune(DriftDetector):
    """Task-2 control strategy that never triggers fine-tuning.

    Realises the paper's trivial learning strategy (a constant
    ``theta_model``) and serves as the stale-model baseline in the
    Figure 1 fine-tuning experiment.
    """

    name = "never"
    needs_train_set = False

    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        return False


class MuSigmaChange(DriftDetector):
    """μ/σ-Change: monitor the running mean/std of the training set.

    A running mean ``mu_t`` and standard deviation ``sigma_t`` of the
    training set are maintained *incrementally* from the Task-1 update
    records (the paper's Equation for the running mean covers the replace /
    append / unchanged cases; the standard deviation follows from running
    sums of squares).  Fine-tuning fires when, relative to the snapshot
    ``(mu_i, sigma_i)`` taken at the last training session,

    - the mean moved by more than ``sigma_i``, or
    - the standard deviation changed by more than a factor of 2
      (``sigma_t > 2 sigma_i`` or ``sigma_t < sigma_i / 2``).

    Both criteria are evaluated element-wise over the flattened feature
    dimensions and aggregated with ``aggregate``.

    Args:
        aggregate: ``"mean"`` (default) triggers on the feature-averaged
            statistics, ``"any"`` triggers if any single feature dimension
            violates a criterion (more sensitive).
        std_factor: the factor-of-change threshold on sigma, paper value 2.
    """

    name = "musigma"
    needs_train_set = False

    def __init__(self, aggregate: str = "mean", std_factor: float = 2.0) -> None:
        super().__init__()
        if aggregate not in ("mean", "any"):
            raise ValueError(f"aggregate must be 'mean' or 'any', got {aggregate!r}")
        if std_factor <= 1.0:
            raise ValueError(f"std_factor must exceed 1, got {std_factor}")
        self.aggregate = aggregate
        self.std_factor = std_factor
        self._count = 0
        #: the running sums are kept relative to the first observed
        #: vector — the textbook shifted-data form.  Raw sums of squares
        #: cancel catastrophically when the data sits far from zero
        #: (E[x²] − E[x]² loses ~all significant digits for x ≈ 100 with
        #: tiny spread, reporting σ ~1e-6 where the truth is 0), while
        #: the shifted sums keep the same O(Nw) incremental update.
        self._shift: FloatArray | None = None
        self._sum: FloatArray | None = None
        self._sumsq: FloatArray | None = None
        self._ref_mean: FloatArray | None = None
        self._ref_std: FloatArray | None = None

    # ------------------------------------------------------------------
    # running statistics
    # ------------------------------------------------------------------
    def observe(self, update: Update, t: int) -> None:
        if update.kind is UpdateKind.UNCHANGED:
            return
        added = np.asarray(update.added, dtype=np.float64).ravel()
        if self._sum is None:
            self._shift = added.copy()
            self._sum = np.zeros_like(added)
            self._sumsq = np.zeros_like(added)
        shifted = added - self._shift
        if update.kind is UpdateKind.ADDED:
            self._sum += shifted
            self._sumsq += shifted**2
            self._count += 1
            self.ops.additions += 2 * added.size
            self.ops.multiplications += added.size
        else:  # REPLACED: sum += x_t - x*, an O(Nw) incremental update
            removed = (
                np.asarray(update.removed, dtype=np.float64).ravel()
                - self._shift
            )
            self._sum += shifted - removed
            self._sumsq += shifted**2 - removed**2
            self.ops.additions += 4 * added.size
            self.ops.multiplications += 2 * added.size

    @property
    def mean(self) -> FloatArray | None:
        """Current running mean over the training set (flattened features)."""
        if self._sum is None or self._count == 0:
            return None
        return self._shift + self._sum / self._count

    @property
    def std(self) -> FloatArray | None:
        """Current running standard deviation (population form)."""
        if self._sumsq is None or self._count == 0:
            return None
        variance = self._sumsq / self._count - (self._sum / self._count) ** 2
        return np.sqrt(np.maximum(variance, 0.0))

    # ------------------------------------------------------------------
    # drift decision
    # ------------------------------------------------------------------
    def should_finetune(self, t: int, train_set: FloatArray) -> bool:
        mean, std = self.mean, self.std
        if mean is None or std is None:
            return False
        if self._ref_mean is None:
            # First call: adopt the current statistics as the reference.
            self._snapshot(mean, std)
            return False
        dim = mean.size
        self.ops.additions += dim
        self.ops.comparisons += 3 * dim
        mean_shift = np.abs(mean - self._ref_mean)
        mean_trigger = mean_shift > self._ref_std
        upper = self._ref_std * self.std_factor
        lower = self._ref_std / self.std_factor
        std_trigger = (std > upper) | (std < lower)
        if self.aggregate == "any":
            return bool(np.any(mean_trigger) or np.any(std_trigger))
        return bool(
            mean_shift.mean() > self._ref_std.mean()
            or std.mean() > upper.mean()
            or std.mean() < lower.mean()
        )

    def notify_finetuned(self, t: int, train_set: FloatArray) -> None:
        mean, std = self.mean, self.std
        if mean is not None and std is not None:
            self._snapshot(mean, std)

    def _snapshot(self, mean: FloatArray, std: FloatArray) -> None:
        self._ref_mean = mean.copy()
        # Guard against a zero reference std, which would trigger forever.
        self._ref_std = np.maximum(std.copy(), 1e-12)

    def reset(self) -> None:
        super().reset()
        self._count = 0
        self._shift = None
        self._sum = None
        self._sumsq = None
        self._ref_mean = None
        self._ref_std = None

    @property
    def fuse_ready(self) -> bool:
        """True once the detector can join a fused session-axis lane.

        The lane replays observe/should_finetune on stacked state copies,
        which requires the running sums to exist and the reference
        snapshot to be taken (the first ``should_finetune`` call after
        warm-up adopts a snapshot as a side effect, which the lane does
        not reproduce).
        """
        return self._sum is not None and self._ref_mean is not None


class MuSigmaLane:
    """Session-axis batched preview of K :class:`MuSigmaChange` detectors.

    Stacks the running statistics of K detectors into ``(K, D)`` tensors
    and replays the per-step observe + should-finetune sequence with
    vectorized elementwise ops and row reductions.  Every operation is
    lane-parallel over sessions — elementwise arithmetic and
    ``mean(axis=1)`` row reductions produce the same bits as the
    per-session scalars/1-D calls (pinned by the kernel probes in
    ``tests/test_fleet.py``) — so a session's preview decisions are
    bitwise the decisions the sequential path would have made.

    The lane works on *copies*: the detectors themselves are mutated only
    by :meth:`commit`, so a session whose preview fires can simply be
    handed back to the stock per-session path with its state untouched.

    An append update is replayed as a replace whose removed-side shifted
    delta is forced to ``0.0`` (``x + (a - 0.0)`` and ``x + (a*a - 0.0)``
    are bit-identical to ``x + a`` / ``x + a*a``), which keeps mixed
    append/replace steps in one vectorized update over the shifted sums.
    """

    def __init__(self, detectors: list[MuSigmaChange]) -> None:
        first = detectors[0]
        if any(
            d.aggregate != first.aggregate or d.std_factor != first.std_factor
            for d in detectors
        ):
            raise ValueError("lane detectors must share aggregate/std_factor")
        if any(not d.fuse_ready for d in detectors):
            raise ValueError("lane detectors must be fuse_ready")
        self.aggregate = first.aggregate
        self.std_factor = first.std_factor
        self._shift = np.stack([d._shift for d in detectors])
        self._sum = np.stack([d._sum for d in detectors])
        self._sumsq = np.stack([d._sumsq for d in detectors])
        self._count = np.array(
            [d._count for d in detectors], dtype=np.float64
        )
        self._ref_mean = np.stack([d._ref_mean for d in detectors])
        self._ref_std = np.stack([d._ref_std for d in detectors])

    def step(
        self,
        idx: np.ndarray,
        added: FloatArray,
        removed: FloatArray,
        replaced: np.ndarray,
    ) -> np.ndarray:
        """Advance sessions ``idx`` by one training-set update and return
        their fire decisions.

        Args:
            idx: ``(n,)`` session indices to advance.
            added: ``(n, D)`` flattened vectors entering the set.
            removed: ``(n, D)`` evicted vectors, all-zero rows where the
                update appends.
            replaced: ``(n,)`` bool, True where the update replaces.
        """
        shift = self._shift[idx]
        shifted = added - shift
        removed = np.where(replaced[:, None], removed - shift, 0.0)
        self._sum[idx] += shifted - removed
        self._sumsq[idx] += shifted**2 - removed**2
        self._count[idx] += np.where(replaced, 0.0, 1.0)
        count = self._count[idx, None]
        shifted_mean = self._sum[idx] / count
        mean = shift + shifted_mean
        variance = self._sumsq[idx] / count - shifted_mean**2
        std = np.sqrt(np.maximum(variance, 0.0))
        ref_mean = self._ref_mean[idx]
        ref_std = self._ref_std[idx]
        mean_shift = np.abs(mean - ref_mean)
        upper = ref_std * self.std_factor
        lower = ref_std / self.std_factor
        if self.aggregate == "any":
            return (
                (mean_shift > ref_std).any(axis=1)
                | (std > upper).any(axis=1)
                | (std < lower).any(axis=1)
            )
        std_row = std.mean(axis=1)
        return (
            (mean_shift.mean(axis=1) > ref_std.mean(axis=1))
            | (std_row > upper.mean(axis=1))
            | (std_row < lower.mean(axis=1))
        )

    def commit(
        self,
        k: int,
        detector: MuSigmaChange,
        n_added: int,
        n_replaced: int,
        n_checks: int,
    ) -> None:
        """Write session ``k``'s previewed state back into ``detector``.

        The op counters are settled in bulk with the exact per-step
        tallies: observe adds ``2D`` additions + ``D`` multiplications
        per append and ``4D`` + ``2D`` per replace; every
        ``should_finetune`` with a live reference adds ``D`` additions
        and ``3D`` comparisons.
        """
        detector._sum = self._sum[k].copy()
        detector._sumsq = self._sumsq[k].copy()
        detector._count = int(self._count[k])
        dim = detector._sum.size
        detector.ops.additions += (
            2 * n_added + 4 * n_replaced + n_checks
        ) * dim
        detector.ops.multiplications += (n_added + 2 * n_replaced) * dim
        detector.ops.comparisons += 3 * n_checks * dim
