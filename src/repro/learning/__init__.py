"""Learning strategies: training-set maintenance (Task 1) and drift detection (Task 2)."""

from repro.learning.base import (
    DriftDetector,
    OpCounter,
    TrainingSetStrategy,
    Update,
    UpdateKind,
)
from repro.learning.drift import MuSigmaChange, NeverFineTune, RegularFineTuning
from repro.learning.adwin import ADWIN
from repro.learning.kswin import (
    KSWIN,
    ks_critical_value,
    ks_statistic,
    ks_statistic_sorted,
)
from repro.learning.page_hinkley import PageHinkley
from repro.learning.opcount import (
    OpCounts,
    kswin_incremental_ops,
    kswin_ops,
    mu_sigma_ops,
)
from repro.learning.reservoir import AnomalyAwareReservoir, UniformReservoir
from repro.learning.sliding_window import SlidingWindow

__all__ = [
    "ADWIN",
    "AnomalyAwareReservoir",
    "DriftDetector",
    "KSWIN",
    "MuSigmaChange",
    "NeverFineTune",
    "OpCounter",
    "PageHinkley",
    "OpCounts",
    "RegularFineTuning",
    "SlidingWindow",
    "TrainingSetStrategy",
    "UniformReservoir",
    "Update",
    "UpdateKind",
    "ks_critical_value",
    "ks_statistic",
    "ks_statistic_sorted",
    "kswin_incremental_ops",
    "kswin_ops",
    "mu_sigma_ops",
]
