"""Run manifests: the JSON artifact a traced run leaves next to its outputs.

A :class:`RunManifest` records everything needed to answer "what ran,
with which configuration, and where did the time go" after the fact:

- the command and a **config fingerprint** (a stable hash of the
  canonicalized configuration, so two manifests are comparable at a
  glance and a result file can be tied to the exact settings
  that produced it);
- the seeds and library versions (python / numpy / repro) the run saw;
- **per-stage wall times** (``stage:``-prefixed telemetry spans recorded
  by the experiment harness: corpus synthesis, grid streaming,
  metric evaluation, ...);
- the fine-grained detector **spans** and **counters** (steps,
  fine-tunes, drift fires, rollbacks, cell failures/retries) and the
  bounded event log.

Manifests are written by the CLI's ``--trace`` flag (see
``repro.experiments.cli``) and by CI next to the ``BENCH_*.json``
artifacts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs.telemetry import STAGE_PREFIX, Telemetry

#: bump when the manifest's JSON layout changes incompatibly.
MANIFEST_SCHEMA = "repro.obs/run-manifest/v1"


def canonicalize(obj: Any) -> Any:
    """Reduce an arbitrary config object to JSON-stable primitives.

    Dataclasses become sorted dicts, numpy scalars/arrays become lists,
    and anything else non-primitive falls back to ``repr``; the result
    round-trips through ``json`` deterministically, which is what the
    fingerprint needs.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def fingerprint_config(config: Any) -> str:
    """Stable short hash of a configuration object (dataclass, dict, ...)."""
    payload = json.dumps(canonicalize(config), sort_keys=True).encode()
    return hashlib.blake2b(payload, digest_size=12).hexdigest()


def library_versions() -> dict[str, str]:
    """The interpreter and library versions the run executed under."""
    from repro import __version__

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro": __version__,
    }


@dataclasses.dataclass
class RunManifest:
    """One traced run, ready to serialize as JSON."""

    command: str
    config: dict[str, Any]
    config_fingerprint: str
    seeds: list[int]
    versions: dict[str, str]
    wall_time_seconds: float
    stages: list[dict[str, Any]]
    spans: dict[str, dict[str, float]]
    counters: dict[str, int]
    events: list[dict[str, Any]]
    n_events_dropped: int = 0
    schema: str = MANIFEST_SCHEMA
    created_unix: float = 0.0
    #: companion artifacts the run left behind (e.g. the serve layer's
    #: deterministic run log: path, entry count, per-kind breakdown).
    artifacts: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def stage_seconds(self) -> float:
        """Wall time accounted to the coarse stages (coverage check)."""
        return float(sum(stage["seconds"] for stage in self.stages))

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path


def build_manifest(
    command: str,
    config: Any,
    telemetry: Telemetry,
    wall_time_seconds: float,
    seeds: list[int] | None = None,
    artifacts: dict[str, Any] | None = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` from a finished traced run.

    ``stage:``-prefixed spans become the coarse ``stages`` list (in
    recording order); every other span stays in ``spans`` (the detector's
    per-stage component accounting).
    """
    snapshot = telemetry.as_dict()
    stages = []
    spans = {}
    for name, entry in snapshot["spans"].items():
        if name.startswith(STAGE_PREFIX):
            stages.append(
                {
                    "name": name[len(STAGE_PREFIX) :],
                    "seconds": entry["seconds"],
                    "calls": entry["calls"],
                }
            )
        else:
            spans[name] = entry
    return RunManifest(
        command=command,
        config=canonicalize(config),
        config_fingerprint=fingerprint_config(config),
        seeds=list(seeds) if seeds is not None else [],
        versions=library_versions(),
        wall_time_seconds=float(wall_time_seconds),
        stages=stages,
        spans=spans,
        counters=snapshot["counters"],
        events=snapshot["events"],
        n_events_dropped=snapshot["n_events_dropped"],
        created_unix=time.time(),
        artifacts=canonicalize(artifacts) if artifacts else {},
    )
