"""Zero-dependency observability: telemetry, run manifests, stream logging.

See :mod:`repro.obs.telemetry` for the counters/spans/events model,
:mod:`repro.obs.manifest` for the ``RunManifest`` JSON artifact, and
:mod:`repro.obs.streamlog` for the idempotent progress logger.
"""

from repro.obs.latency import LatencyReservoir, merge_summaries
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    canonicalize,
    fingerprint_config,
    library_versions,
)
from repro.obs.runlog import RunLog
from repro.obs.streamlog import STREAM_LOGGER_NAME, get_stream_logger
from repro.obs.telemetry import (
    CORE_COUNTERS,
    CORE_SPANS,
    NULL_TELEMETRY,
    STAGE_PREFIX,
    NullTelemetry,
    Telemetry,
    merge_payloads,
)

__all__ = [
    "CORE_COUNTERS",
    "CORE_SPANS",
    "LatencyReservoir",
    "MANIFEST_SCHEMA",
    "NULL_TELEMETRY",
    "STAGE_PREFIX",
    "STREAM_LOGGER_NAME",
    "NullTelemetry",
    "RunLog",
    "RunManifest",
    "Telemetry",
    "build_manifest",
    "canonicalize",
    "fingerprint_config",
    "get_stream_logger",
    "library_versions",
    "merge_payloads",
    "merge_summaries",
]
