"""Fixed-size latency reservoirs with deterministic percentile readout.

Admission control for a sharded fleet needs per-session ingest-latency
percentiles (how long a point waits between ``ingest`` and being
scored), cheap enough to update on every scored point and bounded in
memory no matter how long the stream runs.

:class:`LatencyReservoir` keeps the most recent ``capacity`` samples in
a preallocated ring.  Keeping the *newest* window (rather than a
random-replacement reservoir) makes the readout deterministic — the same
sample sequence always yields the same percentiles, which the serve
tests rely on — and biases the estimate toward current behaviour, which
is what a load-shedding decision wants anyway.  Percentiles use the
nearest-rank method over the retained window.
"""

from __future__ import annotations

import numpy as np


class LatencyReservoir:
    """Bounded sliding-window sample store with percentile summaries.

    Args:
        capacity: number of most-recent samples retained.  512 samples
            put the p99 estimate on ~5 supporting observations while
            costing 4 KiB per session.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring = np.zeros(self.capacity, dtype=np.float64)
        self._pos = 0
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        """Add one sample (seconds); O(1), no allocation."""
        value = float(value)
        self._ring[self._pos] = value
        self._pos = (self._pos + 1) % self.capacity
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def record_many(self, values: np.ndarray) -> None:
        """Add a batch of samples in order."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.record(float(value))

    def values(self) -> np.ndarray:
        """The retained window, oldest first (a copy)."""
        n = min(self.count, self.capacity)
        if n < self.capacity:
            return self._ring[:n].copy()
        return np.concatenate([self._ring[self._pos :], self._ring[: self._pos]])

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained window (0 if empty)."""
        window = self.values()
        if len(window) == 0:
            return 0.0
        window.sort()
        rank = max(int(np.ceil(q / 100.0 * len(window))) - 1, 0)
        return float(window[rank])

    def summary(self) -> dict:
        """JSON-safe block for stats endpoints and manifests."""
        window = self.values()
        if len(window) == 0:
            return {"count": 0, "p50": 0.0, "p99": 0.0, "max": 0.0, "mean": 0.0}
        window.sort()
        n = len(window)
        p50 = float(window[max(int(np.ceil(0.50 * n)) - 1, 0)])
        p99 = float(window[max(int(np.ceil(0.99 * n)) - 1, 0)])
        return {
            "count": self.count,
            "p50": p50,
            "p99": p99,
            "max": self.max_value,
            "mean": self.total / self.count,
        }


def merge_summaries(reservoirs: list["LatencyReservoir"]) -> dict:
    """Percentile summary over the union of several reservoirs' windows.

    Used for fleet-level rollups: per-group p50/p99 across the member
    sessions' retained samples (not an average of averages).
    """
    windows = [r.values() for r in reservoirs if r.count > 0]
    if not windows:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "max": 0.0, "mean": 0.0}
    merged = np.concatenate(windows)
    merged.sort()
    n = len(merged)
    count = sum(r.count for r in reservoirs)
    total = sum(r.total for r in reservoirs)
    return {
        "count": count,
        "p50": float(merged[max(int(np.ceil(0.50 * n)) - 1, 0)]),
        "p99": float(merged[max(int(np.ceil(0.99 * n)) - 1, 0)]),
        "max": max(r.max_value for r in reservoirs),
        "mean": total / count,
    }
