"""Runtime telemetry: counters, span timers and a bounded event log.

The streaming engine is instrumented with a :class:`Telemetry` object that
accounts for *what the detector did* (steps, fine-tunes, drift fires,
speculative rollbacks, fallback-to-step segments) and *where the time
went* (span timers over the framework stages of the per-step loop:
``represent`` / ``predict`` / ``nonconformity`` / ``score`` /
``task1-update`` / ``task2-check`` / ``fine-tune``).  This is the
component-level accounting SAFARI-style frameworks motivate — the paper's
Table II gives the analytic op counts per component; telemetry gives the
measured wall-clock complement at run time.

Design constraints:

- **Zero-dependency, zero-cost when off.**  The default is the
  :data:`NULL_TELEMETRY` singleton, whose every method is a no-op and
  whose ``enabled`` flag lets hot paths skip even the ``perf_counter``
  calls.  Telemetry never feeds back into the computation, so traced and
  untraced runs produce bitwise-identical scores by construction (pinned
  by ``tests/test_obs.py``).
- **Mergeable.**  Per-cell telemetry collected inside worker processes is
  serialized with :meth:`Telemetry.as_dict` and folded into a grid-level
  rollup with :meth:`Telemetry.merge_payload` / :func:`merge_payloads`.
- **Bounded.**  The event log is a ring of the most recent
  ``max_events`` structured events; older events are dropped and counted
  in ``n_events_dropped`` instead of growing without bound on
  million-step streams.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager, nullcontext
from typing import Any, Iterable, Iterator

#: Counter keys the streaming engine increments.  Free-form keys are
#: allowed (the rollup sums whatever it sees); these are the documented
#: core schema.
CORE_COUNTERS = (
    "steps",
    "initial_fits",
    "finetunes",
    "drift_fires",
    "chunk_rollbacks",
    "fallback_steps",
    "cells_ok",
    "cells_failed",
    "cell_retries",
    "cells_recovered",
    # repro.serve fleet counters (the online detection service).
    "sessions_created",
    "sessions_closed",
    "sessions_evicted",
    "sessions_rehydrated",
    "evictions_skipped",
    "points_ingested",
    "points_scored",
    "batches_flushed",
    "ingest_rejected",
    "drain_blocked",
    # repro.serve.router shard-fleet counters (consistent-hash routing,
    # live migration, worker supervision).
    "sessions_adopted",
    "sessions_migrated",
    "workers_respawned",
    "streams_recovered",
    "streams_restarted",
    "rebalances",
    "orphaned_spills",
    # repro.serve.scheduler fused-drain counters (session-axis fleet
    # scoring and fused cross-session fine-tuning).
    "fused_drains",
    "points_fused",
    "finetunes_fused",
    "points_fused_training",
    # repro.serve.wal durability counters (write-ahead ingest log,
    # barrier checkpoints, crash recovery + bounded replay).
    "wal_appends",
    "wal_barriers",
    "wal_truncated",
    "wal_replayed",
    "wal_recovered",
    "wal_torn_tails",
    # repro.select online algorithm selection (champion/challenger
    # shadow lanes, bandit-driven hot-swap).  Shadow work is accounted
    # separately from the user-facing scoring counters so ingest-latency
    # percentiles and points_scored stay comparable across PRs.
    "points_shadow",
    "shadow_ns",
    "promotions",
    "wal_swaps",
)

#: Span keys recorded by the detector's per-step loop (the chunked engine
#: records the same stages at chunk granularity).  Experiment harnesses
#: additionally record coarse phases under a ``stage:`` prefix.
CORE_SPANS = (
    "represent",
    "predict",
    "nonconformity",
    "score",
    "task1-update",
    "task2-check",
    "fine-tune",
    "stream",
)

STAGE_PREFIX = "stage:"


class Telemetry:
    """Mutable counters + span timers + bounded structured event log.

    Args:
        max_events: capacity of the event ring; events beyond it evict
            the oldest and increment ``n_events_dropped``.
    """

    enabled = True

    def __init__(self, max_events: int = 256) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.counters: dict[str, int] = {}
        #: span name -> [calls, total_seconds]
        self.spans: dict[str, list[float]] = {}
        self.max_events = max_events
        self.events: deque[dict[str, Any]] = deque(maxlen=max_events)
        self.n_events_dropped = 0

    # -- counters ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- span timers ---------------------------------------------------
    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` (over ``calls`` calls) to span ``name``.

        The raw primitive for hot paths that bracket a region with two
        ``perf_counter`` reads behind an ``enabled`` check; prefer
        :meth:`span` for cold paths.
        """
        entry = self.spans.get(name)
        if entry is None:
            self.spans[name] = [calls, seconds]
        else:
            entry[0] += calls
            entry[1] += seconds

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager timing one region into span ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    # -- events --------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        """Append one structured event (a flat JSON-safe dict)."""
        if len(self.events) == self.max_events:
            self.n_events_dropped += 1
        self.events.append({"kind": kind, **fields})

    # -- aggregation ---------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot (also the cross-process wire format)."""
        return {
            "counters": dict(self.counters),
            "spans": {
                name: {"calls": int(calls), "seconds": float(seconds)}
                for name, (calls, seconds) in self.spans.items()
            },
            "events": list(self.events),
            "n_events_dropped": self.n_events_dropped,
        }

    def merge_payload(self, payload: dict[str, Any] | None) -> None:
        """Fold one :meth:`as_dict` snapshot into this telemetry.

        Counters and span times sum; events concatenate under the same
        bound (overflow counts as dropped).
        """
        if not payload:
            return
        for name, value in payload.get("counters", {}).items():
            self.count(name, int(value))
        for name, entry in payload.get("spans", {}).items():
            self.add_time(name, float(entry["seconds"]), calls=int(entry["calls"]))
        for event in payload.get("events", ()):
            fields = dict(event)
            self.event(fields.pop("kind", "event"), **fields)
        self.n_events_dropped += int(payload.get("n_events_dropped", 0))

    def stage_seconds(self) -> float:
        """Total wall time accounted to ``stage:``-prefixed spans."""
        return sum(
            seconds
            for name, (_, seconds) in self.spans.items()
            if name.startswith(STAGE_PREFIX)
        )

    def reset(self) -> None:
        self.counters.clear()
        self.spans.clear()
        self.events.clear()
        self.n_events_dropped = 0


_NULL_SPAN = nullcontext()


class NullTelemetry(Telemetry):
    """No-op telemetry: the default on every hot path.

    Every method returns immediately; ``enabled`` is ``False`` so
    instrumented code can skip its ``perf_counter`` brackets entirely.
    A single shared instance (:data:`NULL_TELEMETRY`) is used everywhere —
    it holds no state, so sharing is safe across detectors and threads.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=1)

    def count(self, name: str, n: int = 1) -> None:
        pass

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        pass

    def span(self, name: str):  # type: ignore[override]
        return _NULL_SPAN

    def event(self, kind: str, **fields: Any) -> None:
        pass

    def merge_payload(self, payload: dict[str, Any] | None) -> None:
        pass


#: Shared no-op instance; ``detector.telemetry`` defaults to this.
NULL_TELEMETRY = NullTelemetry()


def merge_payloads(payloads: Iterable[dict[str, Any] | None]) -> dict[str, Any]:
    """Sum several :meth:`Telemetry.as_dict` snapshots into one rollup."""
    rollup = Telemetry()
    for payload in payloads:
        rollup.merge_payload(payload)
    return rollup.as_dict()
