"""The stream progress logger, attached idempotently.

``run_stream(progress_every=...)`` emits one INFO line every N steps.
Before this module existed the line went to a bare module logger with no
handler (silent unless the application configured logging), and the
obvious fix — attaching a ``StreamHandler`` inside ``run_stream`` — would
attach one *per call*: under the parallel runner or pytest, where
``run_stream`` executes hundreds of times per process, every progress
line would be duplicated hundreds of times.

:func:`get_stream_logger` makes the attachment idempotent:

- a handler is added only if the logger (or an ancestor, via
  propagation) has none — an application that configured logging keeps
  full control and sees no duplicate lines;
- the handler added here is tagged, so repeated calls find the tag and
  never add a second one.
"""

from __future__ import annotations

import logging
import sys

#: logger name shared by every stream progress emitter.
STREAM_LOGGER_NAME = "repro.stream"

#: attribute tagging the handler this module attached.
_HANDLER_TAG = "_repro_obs_stream_handler"


def get_stream_logger(name: str = STREAM_LOGGER_NAME) -> logging.Logger:
    """Return the stream progress logger, attaching at most one handler.

    Safe to call once per ``run_stream`` invocation: the first call in a
    process with unconfigured logging attaches a tagged stderr handler at
    INFO level; every later call finds either that tag or the
    application's own handlers and attaches nothing.
    """
    logger = logging.getLogger(name)
    if any(getattr(handler, _HANDLER_TAG, False) for handler in logger.handlers):
        return logger
    if logger.hasHandlers():
        # The application (or pytest) configured logging; don't double up.
        return logger
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET:
        logger.setLevel(logging.INFO)
    return logger
