"""Deterministic per-run run logs: the serve layer's audit artifact.

A :class:`RunLog` is an append-only JSON-lines record of the lifecycle
decisions a serving run made — sessions created, recovered, barriered,
migrated, closed — written as it happens (each line flushed, so a crash
keeps everything up to the last complete event) and summarized into the
run's :class:`~repro.obs.RunManifest` under ``artifacts``.

Unlike telemetry (wall-clock spans, bounded event rings), a run log is
**deterministic**: entries carry only logical state — stream ids,
sequence numbers, stream clocks, counts — never timestamps or latencies,
so two runs that made the same decisions produce byte-identical logs.
That makes the artifact diffable across runs and machines: a recovery
that replays the same WAL produces the same log as the run it resumed,
which is how an operator audits that a crash changed nothing
(``tests/test_wal.py`` pins this).

Each line is one JSON object with sorted keys and an ``n`` sequence
number:

.. code-block:: text

    {"kind": "session_created", "n": 0, "seq": 0, "stream": "machine-1"}
    {"kind": "wal_barrier", "n": 1, "stream": "machine-1", "t": 255, "truncated": 256}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.manifest import canonicalize


class RunLog:
    """Append-only deterministic JSON-lines event log.

    Args:
        path: file to stream entries into (parent directories are
            created; the file is truncated).  ``None`` keeps the log
            in memory only — :meth:`entries` still works, nothing is
            written.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: list[dict[str, Any]] = []
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w")

    def log(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the entry as written."""
        entry = {"kind": kind, "n": len(self._entries)}
        entry.update(canonicalize(fields))
        self._entries.append(entry)
        if self._handle is not None:
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
        return entry

    def entries(self) -> list[dict[str, Any]]:
        """Snapshot of every entry logged so far."""
        return [dict(entry) for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def summary(self) -> dict[str, Any]:
        """The manifest-side description of this artifact."""
        kinds: dict[str, int] = {}
        for entry in self._entries:
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
        return {
            "path": str(self.path) if self.path is not None else None,
            "n_entries": len(self._entries),
            "kinds": dict(sorted(kinds.items())),
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
