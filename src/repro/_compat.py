"""Compatibility shims for the supported NumPy range (>=1.24, <3).

``np.trapezoid`` is the NumPy 2 name of ``np.trapz``; on 1.x only the old
name exists (and newer 2.x releases drop it entirely, so the lookup must
not touch ``np.trapz`` eagerly).  Every module integrates through this
shim so the package runs unchanged on both major versions — exercised by
the CI matrix in ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import numpy as np

#: ``np.trapezoid`` on NumPy >= 2, ``np.trapz`` on NumPy 1.x.
trapezoid = getattr(np, "trapezoid", None) or np.trapz

__all__ = ["trapezoid"]
