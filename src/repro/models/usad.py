"""USAD: unsupervised anomaly detection with adversarially trained autoencoders.

Following Audibert et al. (2020) as summarised in Section IV-C: one
encoder ``E`` feeds two decoders ``D1``/``D2``.  With ``AE_i = D_i o E``
the phase losses at epoch ``n`` (1-indexed over the model's lifetime) are

    L_AE1 = (1/n) ||x - AE1(x)||^2 + (1 - 1/n) ||x - AE2(AE1(x))||^2
    L_AE2 = (1/n) ||x - AE2(x)||^2 - (1 - 1/n) ||x - AE2(AE1(x))||^2

so the pure reconstruction term fades in favour of the adversarial game:
``AE2`` learns to distinguish real windows from ``AE1`` reconstructions
while ``AE1`` learns to fool it.

Implementation notes: the encoder (and second decoder) appear multiple
times inside one loss; to keep the manual-backprop caches sound each extra
application uses a :func:`~repro.nn.share.shared_copy` that shares the
parameters but owns its activation cache.  As in common reimplementations,
phase 2 feeds ``AE1``'s reconstruction in *detached* form (no gradient
back into ``AE1``).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro import nn
from repro.nn.share import shared_copy, unique_parameters
from repro.models.base import (
    MinMaxScaler,
    StreamModel,
    _as_windows,
    fleet_tiled_forward,
    tiled_forward,
)


def _encoder(input_dim: int, latent_dim: int, rng: np.random.Generator) -> nn.Sequential:
    # Hidden widths track the bottleneck and are capped relative to it so
    # wide streams (e.g. 38 channels x window 16 = 608 inputs) do not
    # produce multi-million-parameter stacks.
    wide = min(max(2 * latent_dim, input_dim, 4), 4 * latent_dim)
    mid = min(max(2 * latent_dim, input_dim // 2, 4), 3 * latent_dim)
    return nn.Sequential(
        nn.Linear(input_dim, wide, rng),
        nn.Tanh(),
        nn.Linear(wide, mid, rng),
        nn.Tanh(),
        nn.Linear(mid, latent_dim, rng),
        nn.Tanh(),
    )


def _decoder(latent_dim: int, output_dim: int, rng: np.random.Generator) -> nn.Sequential:
    mid = min(max(2 * latent_dim, output_dim // 2, 4), 3 * latent_dim)
    wide = min(max(2 * latent_dim, output_dim, 4), 4 * latent_dim)
    return nn.Sequential(
        nn.Linear(latent_dim, mid, rng),
        nn.Tanh(),
        nn.Linear(mid, wide, rng),
        nn.Tanh(),
        nn.Linear(wide, output_dim, rng),
        nn.Sigmoid(),
    )


class USAD(StreamModel):
    """Adversarial autoencoder pair with a shared encoder.

    Args:
        window: data representation length ``w``.
        n_channels: stream channel count ``N``.
        latent_dim: bottleneck size ``Z`` (paper requires ``Z << w``);
            defaults to half the flattened input, capped at 64 so wide
            streams do not blow up the parameter count.
        lr: Adam learning rate (two optimizers, one per phase).
        epochs: default epoch count for a full :meth:`fit`.
        batch_size: minibatch size.
        blend: inference blend ``x_hat = (1-blend)*AE1(x) + blend*AE2(AE1(x))``;
            small values favour the plain reconstruction, which predicts
            better, while keeping some adversarial sharpening.
        seed: RNG seed.
    """

    name = "usad"
    prediction_kind = "reconstruction"

    def __init__(
        self,
        window: int,
        n_channels: int,
        latent_dim: int | None = None,
        lr: float = 5e-3,
        epochs: int = 30,
        batch_size: int = 32,
        blend: float = 0.25,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if window < 1 or n_channels < 1:
            raise ConfigurationError("window and n_channels must be >= 1")
        if not 0.0 <= blend <= 1.0:
            raise ConfigurationError(f"blend must be in [0, 1], got {blend}")
        self.window = window
        self.n_channels = n_channels
        self.input_dim = window * n_channels
        self.latent_dim = (
            latent_dim
            if latent_dim is not None
            else min(64, max(8, self.input_dim // 2))
        )
        if self.latent_dim < 1:
            raise ConfigurationError(f"latent_dim must be >= 1, got {self.latent_dim}")
        self.default_epochs = epochs
        self.batch_size = batch_size
        self.blend = blend
        self._rng = np.random.default_rng(seed)

        self.encoder = _encoder(self.input_dim, self.latent_dim, self._rng)
        self.decoder1 = _decoder(self.latent_dim, self.input_dim, self._rng)
        self.decoder2 = _decoder(self.latent_dim, self.input_dim, self._rng)
        # Parameter-sharing copies for the second applications inside a pass.
        self._encoder_b = shared_copy(self.encoder)
        self._decoder2_b = shared_copy(self.decoder2)

        self._opt1 = nn.Adam(
            unique_parameters(self.encoder, self.decoder1), lr=lr
        )
        self._opt2 = nn.Adam(
            unique_parameters(self.encoder, self.decoder2), lr=lr
        )
        self.scaler = MinMaxScaler()
        self._lifetime_epoch = 0

    # ------------------------------------------------------------------
    def fit(self, windows: FloatArray, epochs: int | None = None) -> float:
        windows = self._check(windows)
        self.scaler.fit(windows)
        return self._train(windows, epochs or self.default_epochs)

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        windows = self._check(windows)
        if not self.scaler.is_fitted:
            self.scaler.fit(windows)
        return self._train(windows, epochs)

    def _zero_all(self) -> None:
        for module in (self.encoder, self.decoder1, self.decoder2):
            module.zero_grad()

    def _train(self, windows: FloatArray, epochs: int) -> float:
        flat = self.scaler.transform(windows).reshape(len(windows), -1)
        starts = range(0, len(flat), self.batch_size)
        losses = np.empty(len(starts))
        last_loss = float("nan")
        for _ in range(max(epochs, 1)):
            self._lifetime_epoch += 1
            n = self._lifetime_epoch
            alpha = 1.0 / n
            beta = 1.0 - alpha
            order = self._rng.permutation(len(flat))
            for b, start in enumerate(starts):
                batch = flat[order[start : start + self.batch_size]]
                losses[b] = self._train_batch(batch, alpha, beta)
            last_loss = float(np.mean(losses))
        self._fitted = True
        return last_loss

    def _train_batch(self, batch: FloatArray, alpha: float, beta: float) -> float:
        # ---------------- phase 1: train AE1 = D1 o E -------------------
        self._zero_all()
        latent = self.encoder(batch)
        w1 = self.decoder1(latent)
        w3 = self._decoder2_b(self._encoder_b(w1))
        loss1 = alpha * nn.mse_loss(w1, batch) + beta * nn.mse_loss(w3, batch)
        # dL/dw3 flows back through the shared D2/E copies into w1.
        grad_w1 = alpha * nn.mse_loss_grad(w1, batch)
        grad_w1 += self._encoder_b.backward(
            self._decoder2_b.backward(beta * nn.mse_loss_grad(w3, batch))
        )
        self.encoder.backward(self.decoder1.backward(grad_w1))
        self._opt1.step()

        # ---------------- phase 2: train AE2 = D2 o E -------------------
        self._zero_all()
        # Detached AE1 reconstruction: recompute without keeping gradients.
        w1_detached = self.decoder1(self.encoder(batch))
        self._zero_all()
        latent2 = self.encoder(batch)
        w2 = self.decoder2(latent2)
        w3b = self._decoder2_b(self._encoder_b(w1_detached))
        loss2 = alpha * nn.mse_loss(w2, batch) - beta * nn.mse_loss(w3b, batch)
        self.encoder.backward(
            self.decoder2.backward(alpha * nn.mse_loss_grad(w2, batch))
        )
        self._encoder_b.backward(
            self._decoder2_b.backward(-beta * nn.mse_loss_grad(w3b, batch))
        )
        self._opt2.step()
        return float(loss1 + loss2)

    # ------------------------------------------------------------------
    def reconstructions(self, x: FeatureVector) -> tuple[FloatArray, FloatArray]:
        """Return ``(AE1(x), AE2(AE1(x)))`` in original units."""
        self._require_fitted()
        flat = self.scaler.transform(np.asarray(x, dtype=np.float64)).reshape(1, -1)
        w1 = self.decoder1(self.encoder(flat))
        w3 = self.decoder2(self.encoder(w1))
        shape = (self.window, self.n_channels)
        return (
            self.scaler.inverse(w1.reshape(shape)),
            self.scaler.inverse(w3.reshape(shape)),
        )

    def reconstructions_batch(
        self, X: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Batched :meth:`reconstructions` over ``(B, w, N)`` windows."""
        self._require_fitted()
        X = self._check(X)
        flat = self.scaler.transform(X).reshape(len(X), -1)
        w1 = tiled_forward(lambda tile: self.decoder1(self.encoder(tile)), flat)
        w3 = tiled_forward(lambda tile: self.decoder2(self.encoder(tile)), w1)
        shape = (len(X), self.window, self.n_channels)
        return (
            self.scaler.inverse(w1.reshape(shape)),
            self.scaler.inverse(w3.reshape(shape)),
        )

    def predict(self, x: FeatureVector) -> FloatArray:
        """Blended reconstruction used by the cosine nonconformity measure."""
        w1, w3 = self.reconstructions(x)
        return (1.0 - self.blend) * w1 + self.blend * w3

    def predict_batch(self, X: FloatArray) -> FloatArray:
        w1, w3 = self.reconstructions_batch(X)
        return (1.0 - self.blend) * w1 + self.blend * w3

    def usad_score(self, x: FeatureVector, alpha: float = 0.5) -> float:
        """The original USAD anomaly score ``a*||x-AE1||^2 + (1-a)*||x-AE2(AE1)||^2``.

        Provided for completeness; the paper's pipeline uses the cosine
        nonconformity on :meth:`predict` instead.
        """
        x = np.asarray(x, dtype=np.float64)
        w1, w3 = self.reconstructions(x)
        return float(
            alpha * np.mean((x - w1) ** 2) + (1.0 - alpha) * np.mean((x - w3) ** 2)
        )

    def _check(self, windows: FloatArray) -> FloatArray:
        windows = _as_windows(windows)
        if windows.shape[1:] != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected windows of shape (*, {self.window}, {self.n_channels}), "
                f"got {windows.shape}"
            )
        return windows

    # ------------------------------------------------------------------
    def fleet_modules(self) -> tuple:
        # The shared copies reuse encoder/decoder2 Parameter objects, so
        # the arena maps all five trees onto three stacked weight sets.
        return (
            self.encoder,
            self.decoder1,
            self.decoder2,
            self._encoder_b,
            self._decoder2_b,
        )

    @classmethod
    def fleet_predict_batch(
        cls, models: list, mirror: tuple, windows_list: list
    ) -> list:
        encoder, decoder1, decoder2, _, _ = mirror
        flats = [
            model.scaler.transform(X).reshape(len(X), model.input_dim)
            for model, X in zip(models, windows_list)
        ]
        # Two stacked passes, mirroring reconstructions_batch: AE1 over
        # the inputs, then AE2 over AE1's reconstructions.
        w1_list = fleet_tiled_forward(
            lambda stacked: decoder1(encoder(stacked)), flats
        )
        w3_list = fleet_tiled_forward(
            lambda stacked: decoder2(encoder(stacked)), w1_list
        )
        results = []
        for model, w1, w3, X in zip(models, w1_list, w3_list, windows_list):
            shape = (len(X), model.window, model.n_channels)
            r1 = model.scaler.inverse(w1.reshape(shape))
            r3 = model.scaler.inverse(w3.reshape(shape))
            results.append((1.0 - model.blend) * r1 + model.blend * r3)
        return results

    @classmethod
    def fleet_finetune(
        cls, models: list, windows_list: list, epochs: int
    ) -> tuple[list[float], list[float]] | None:
        """Session-axis fused :meth:`finetune` of K USAD models.

        The two-phase adversarial batch sequence of ``_train_batch`` is
        replayed verbatim on ``(K, B, F)`` stacks through the arena
        mirror; the per-session phase weights ``alpha = 1/n`` (sessions
        may be at different lifetime epochs) broadcast as ``(K, 1, 1)``
        columns, and each phase steps its own :class:`~repro.nn.AdamLane`.
        """
        first = models[0]
        n = len(windows_list[0])
        if (
            n == 0
            or any(len(w) != n for w in windows_list)
            or any(not m.scaler.is_fitted for m in models)
            or any(m.batch_size != first.batch_size for m in models)
        ):
            return None
        try:
            windows_list = [m._check(w) for m, w in zip(models, windows_list)]
            arena = nn.ParameterArena(
                [m.fleet_modules() for m in models], attach=False
            )
            lane1 = nn.AdamLane([m._opt1 for m in models], arena)
            lane2 = nn.AdamLane([m._opt2 for m in models], arena)
        except (ConfigurationError, ValueError, KeyError):
            return None
        loss_before = cls._fleet_loss(models, arena.mirror, windows_list)

        encoder, decoder1, decoder2, encoder_b, decoder2_b = arena.mirror
        n_models = len(models)
        flat = np.stack(
            [
                m.scaler.transform(w).reshape(n, -1)
                for m, w in zip(models, windows_list)
            ]
        )
        rows = np.arange(n_models)[:, None]
        starts = range(0, n, first.batch_size)
        losses = np.empty((n_models, len(starts)))
        loss1 = [0.0] * n_models
        for _ in range(max(epochs, 1)):
            alpha = []
            for m in models:
                m._lifetime_epoch += 1
                alpha.append(1.0 / m._lifetime_epoch)
            beta = [1.0 - a for a in alpha]
            a3 = np.array(alpha)[:, None, None]
            b3 = np.array(beta)[:, None, None]
            orders = np.stack([m._rng.permutation(n) for m in models])
            for b, start in enumerate(starts):
                batch = flat[rows, orders[:, start : start + first.batch_size]]
                # ------------- phase 1: train AE1 = D1 o E ---------------
                arena.zero_grad()
                latent = encoder(batch)
                w1 = decoder1(latent)
                w3 = decoder2_b(encoder_b(w1))
                for k in range(n_models):
                    loss1[k] = alpha[k] * nn.mse_loss(w1[k], batch[k]) + beta[
                        k
                    ] * nn.mse_loss(w3[k], batch[k])
                grad_w1 = a3 * nn.fleet_mse_loss_grad(w1, batch)
                grad_w1 += encoder_b.backward(
                    decoder2_b.backward(b3 * nn.fleet_mse_loss_grad(w3, batch))
                )
                encoder.backward(decoder1.backward(grad_w1))
                lane1.step()

                # ------------- phase 2: train AE2 = D2 o E ---------------
                arena.zero_grad()
                w1_detached = decoder1(encoder(batch))
                arena.zero_grad()
                latent2 = encoder(batch)
                w2 = decoder2(latent2)
                w3b = decoder2_b(encoder_b(w1_detached))
                encoder.backward(
                    decoder2.backward(a3 * nn.fleet_mse_loss_grad(w2, batch))
                )
                encoder_b.backward(
                    decoder2_b.backward(
                        (-b3) * nn.fleet_mse_loss_grad(w3b, batch)
                    )
                )
                lane2.step()
                for k in range(n_models):
                    loss2 = alpha[k] * nn.mse_loss(w2[k], batch[k]) - beta[
                        k
                    ] * nn.mse_loss(w3b[k], batch[k])
                    losses[k, b] = float(loss1[k] + loss2)
            last = losses.mean(axis=1)
        arena.writeback()
        lane1.writeback()
        lane2.writeback()
        for model in models:
            model._fitted = True
        return loss_before, [float(x) for x in last]
