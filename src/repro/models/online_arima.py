"""Online ARIMA via online gradient descent (Liu et al., 2016).

The ARIMA(q, d, q') model is approximated by an ARIMA(q+m, d, 0) model
without noise terms, leaving a single coefficient vector ``gamma`` over
lagged ``d``-times-differenced values:

    pred(s_t) = sum_i gamma_i * diff^d(s)_{t-i} + sum_{i<d} diff^i(s)_{t-1}

The second sum undoes the differencing.  The coefficients are learned by
online gradient descent on the squared forecast error.

As in the paper, the model treats a multivariate stream as if all channels
came from one univariate process: a single shared ``gamma`` is updated
from every channel's lag/target pairs, and no cross-channel correlations
are modelled.  The data representation length constrains the lag count as
``w = lags + d + 1`` (the final row of the window is the forecast target).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro.models.base import StreamModel, _as_windows, tiled_forward


def difference(series: FloatArray, order: int) -> FloatArray:
    """Apply the differencing operator ``order`` times along axis 0."""
    result = np.asarray(series, dtype=np.float64)
    for _ in range(order):
        result = result[1:] - result[:-1]
    return result


class OnlineARIMA(StreamModel):
    """Online ARIMA(lags, d, 0) forecaster trained by OGD.

    Args:
        window: the data representation length ``w``; the usable lag count
            is ``w - 1 - d`` and must be at least 1.
        d: differencing order (0, 1 or 2 are sensible).
        lr: gradient-descent learning rate.
        clip: gradient-norm clip guarding against exploding updates on
            badly scaled data.
    """

    name = "online_arima"
    prediction_kind = "forecast"

    def __init__(
        self,
        window: int,
        d: int = 1,
        lr: float = 0.01,
        clip: float = 10.0,
    ) -> None:
        super().__init__()
        if d < 0:
            raise ConfigurationError(f"differencing order must be >= 0, got {d}")
        lags = window - 1 - d
        if lags < 1:
            raise ConfigurationError(
                f"window {window} too short for d={d}: need window >= d + 2"
            )
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        self.window = window
        self.d = d
        self.lags = lags
        self.lr = lr
        self.clip = clip
        self.gamma = np.zeros(lags, dtype=np.float64)
        # Scale guard learned from the training data so OGD stays stable.
        self._scale = 1.0

    # ------------------------------------------------------------------
    def _pairs(self, window_values: FloatArray) -> tuple[FloatArray, FloatArray]:
        """Lag matrix and targets from one ``(w, N)`` window.

        For each channel, the ``d``-differenced series has ``w - d``
        values; the last one is the target and the preceding ``lags``
        values (newest first) are the regressors.
        """
        diffed = difference(window_values, self.d)  # (w - d, N)
        lag_block = diffed[:-1]  # (lags, N)
        targets = diffed[-1]  # (N,)
        # newest lag first: gamma_1 multiplies diff^d s_{t-1}
        lags_newest_first = lag_block[::-1]  # (lags, N)
        return lags_newest_first.T, targets  # (N, lags), (N,)

    def _reconstruction_terms(self, window_values: FloatArray) -> FloatArray:
        """The sum ``sum_{i=0}^{d-1} diff^i(s)_{t-1}`` undoing differencing."""
        total = np.zeros(window_values.shape[1], dtype=np.float64)
        series = np.asarray(window_values, dtype=np.float64)
        for _ in range(self.d):
            total += series[-1]
            series = series[1:] - series[:-1]
        return total

    # ------------------------------------------------------------------
    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        windows = _as_windows(windows)
        if windows.shape[1] != self.window:
            raise ConfigurationError(
                f"model expects windows of length {self.window}, got {windows.shape[1]}"
            )
        scale = float(np.std(windows))
        self._scale = scale if scale > 1e-12 else 1.0
        last_loss = float("nan")
        for _ in range(max(epochs, 1)):
            last_loss = self._epoch(windows)
        self._fitted = True
        return last_loss

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        """Continue OGD from the current coefficients (no reset)."""
        windows = _as_windows(windows)
        last_loss = float("nan")
        for _ in range(max(epochs, 1)):
            last_loss = self._epoch(windows)
        self._fitted = True
        return last_loss

    def _epoch(self, windows: FloatArray) -> float:
        squared_errors = []
        for window_values in windows:
            lag_matrix, targets = self._pairs(window_values)
            for lags, target in zip(lag_matrix / self._scale, targets / self._scale):
                prediction = float(self.gamma @ lags)
                error = target - prediction
                gradient = -2.0 * error * lags
                norm = float(np.linalg.norm(gradient))
                if norm > self.clip:
                    gradient *= self.clip / norm
                self.gamma -= self.lr * gradient
                squared_errors.append(error**2)
        return float(np.mean(squared_errors)) if squared_errors else float("nan")

    def predict(self, x: FeatureVector) -> FloatArray:
        """Forecast ``s_t`` from the past rows of the window ``x``.

        The window's final row is the observation being scored, so only
        rows ``0 .. w-2`` feed the forecast.
        """
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.window:
            raise ConfigurationError(
                f"expected window of length {self.window}, got {x.shape[0]}"
            )
        past = x[:-1]  # (w - 1, N)
        diffed = difference(past, self.d)  # (w - 1 - d, N) == (lags, N)
        lags_newest_first = diffed[::-1] / self._scale  # (lags, N)
        predicted_diff = self.gamma @ lags_newest_first * self._scale  # (N,)
        return predicted_diff + self._reconstruction_terms(past)

    def predict_batch(self, X: FloatArray) -> FloatArray:
        """Forecast for a ``(B, w, N)`` block with one tiled projection.

        Differencing and the reconstruction terms are elementwise over the
        block; the ``gamma`` projection runs per (window, channel) row in
        fixed tiles so the bits are chunk-invariant.
        """
        self._require_fitted()
        X = _as_windows(X)
        if X.shape[1] != self.window:
            raise ConfigurationError(
                f"expected window of length {self.window}, got {X.shape[1]}"
            )
        past = X[:, :-1, :]  # (B, w - 1, N)
        diffed = past
        for _ in range(self.d):
            diffed = diffed[:, 1:, :] - diffed[:, :-1, :]
        lags_newest_first = diffed[:, ::-1, :] / self._scale  # (B, lags, N)
        rows = np.ascontiguousarray(
            lags_newest_first.transpose(0, 2, 1)
        ).reshape(-1, self.lags)  # one (lags,) regressor row per channel
        predicted_diff = (
            tiled_forward(lambda tile: tile @ self.gamma, rows).reshape(
                len(X), -1
            )
            * self._scale
        )
        total = np.zeros((len(X), X.shape[2]), dtype=np.float64)
        series = past
        for _ in range(self.d):
            total += series[:, -1, :]
            series = series[:, 1:, :] - series[:, :-1, :]
        return predicted_diff + total
