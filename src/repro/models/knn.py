"""Similarity-based k-NN detector: the original SAFARI special case.

The extended framework recovers Calikus et al.'s original formulation
when the reference parameters consist only of feature vectors (Section
III: "In the special case that theta consists of only feature vectors,
the original definition is recovered").  This model realises that case:
it has no trainable parameters — "fitting" just stores the training set —
and its score is the distance from a feature vector to its ``k``-th
nearest neighbour in the reference group, squashed into ``(0, 1)``.

Provided as a library extension (the paper's future-work direction of
adapting further offline detectors to the streaming scenario); it is not
part of the Table I grid.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro.models.base import StreamModel, _as_windows


class KNNDetector(StreamModel):
    """k-nearest-neighbour nonconformity over the reference group.

    Args:
        k: neighbour rank used as the distance statistic.
        scale_quantile: the training-set self-distance quantile used to
            normalise distances (so the score is ~0.5 at "typical" novelty
            and approaches 1 for far outliers).
    """

    name = "knn"
    prediction_kind = "score"

    def __init__(self, k: int = 5, scale_quantile: float = 0.9) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not 0.0 < scale_quantile < 1.0:
            raise ConfigurationError(
                f"scale_quantile must be in (0, 1), got {scale_quantile}"
            )
        self.k = k
        self.scale_quantile = scale_quantile
        self._reference: FloatArray | None = None  # (n, d) flattened vectors
        self._scale = 1.0

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """Store the training set and calibrate the distance scale."""
        windows = _as_windows(windows)
        flat = windows.reshape(len(windows), -1)
        if len(flat) <= self.k:
            raise ConfigurationError(
                f"need more than k={self.k} reference vectors, got {len(flat)}"
            )
        self._reference = flat.copy()
        self._scale = max(self._calibrate(flat), 1e-12)
        self._fitted = True
        return 0.0

    def _calibrate(self, flat: FloatArray) -> float:
        """Typical k-NN self-distance inside the reference group."""
        sample = flat[:: max(len(flat) // 64, 1)]
        distances = []
        for vector in sample:
            knn = self._knn_distance(vector, exclude_self=True)
            distances.append(knn)
        return float(np.quantile(distances, self.scale_quantile))

    def _knn_distance(self, vector: FloatArray, exclude_self: bool = False) -> float:
        assert self._reference is not None
        deltas = self._reference - vector
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        if exclude_self:
            distances = np.sort(distances)
            # drop the zero self-distance if present
            start = 1 if distances[0] < 1e-12 else 0
            return float(distances[start + self.k - 1])
        return float(np.partition(distances, self.k - 1)[self.k - 1])

    def score(self, x: FeatureVector) -> float:
        """``d_k / (d_k + scale)``: 0 on the reference manifold, -> 1 far away."""
        self._require_fitted()
        vector = np.asarray(x, dtype=np.float64).ravel()
        assert self._reference is not None
        if vector.size != self._reference.shape[1]:
            raise ConfigurationError(
                f"expected flattened dimension {self._reference.shape[1]}, "
                f"got {vector.size}"
            )
        distance = self._knn_distance(vector)
        return distance / (distance + self._scale)

    def predict(self, x: FeatureVector) -> FloatArray:
        """Score models expose predict for interface parity."""
        return np.asarray([self.score(x)])

    def loss(self, windows: FloatArray) -> float:
        """Mean score over a set of windows (lower = more typical)."""
        windows = _as_windows(windows)
        return float(np.mean([self.score(w) for w in windows]))
