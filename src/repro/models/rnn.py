"""Elman RNN forecaster (library extension).

The related work (Section II) covers recurrent prediction-based detectors
(Belacel et al.'s LSTM encoder-decoder, Munir et al.'s deep forecasters).
This extension provides the simplest recurrent member of that family: an
Elman network unrolled over the window's first ``w - 1`` stream vectors,
forecasting the final one,

    h_t = tanh(x_t W_x + h_{t-1} W_h + b_h),   y = h_{w-1} W_o + b_o

trained by backpropagation through time on the numpy substrate.  Like the
other forecasters it pairs with the cosine nonconformity in the framework.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro import nn
from repro.models.base import Standardizer, StreamModel, _as_windows


class ElmanForecaster(StreamModel):
    """Recurrent one-step-ahead forecaster with BPTT training.

    Args:
        window: data representation length ``w`` (consumes ``w - 1`` rows).
        n_channels: stream channel count ``N``.
        hidden: recurrent state width.
        lr: Adam learning rate.
        epochs: default epoch count for a full :meth:`fit`.
        batch_size: minibatch size.
        clip: gradient-norm clip applied per parameter (BPTT can explode).
        seed: RNG seed.
    """

    name = "rnn"
    prediction_kind = "forecast"

    def __init__(
        self,
        window: int,
        n_channels: int,
        hidden: int = 32,
        lr: float = 3e-3,
        epochs: int = 30,
        batch_size: int = 32,
        clip: float = 5.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if n_channels < 1 or hidden < 1:
            raise ConfigurationError("n_channels and hidden must be >= 1")
        self.window = window
        self.n_channels = n_channels
        self.hidden = hidden
        self.default_epochs = epochs
        self.batch_size = batch_size
        self.clip = clip
        self._rng = np.random.default_rng(seed)

        scale_x = 1.0 / np.sqrt(n_channels)
        scale_h = 1.0 / np.sqrt(hidden)
        self.w_x = nn.Parameter(
            self._rng.normal(scale=scale_x, size=(n_channels, hidden)), "rnn.Wx"
        )
        self.w_h = nn.Parameter(
            self._rng.normal(scale=scale_h, size=(hidden, hidden)) * 0.5, "rnn.Wh"
        )
        self.b_h = nn.Parameter(np.zeros(hidden), "rnn.bh")
        self.w_o = nn.Parameter(
            self._rng.normal(scale=scale_h, size=(hidden, n_channels)), "rnn.Wo"
        )
        self.b_o = nn.Parameter(np.zeros(n_channels), "rnn.bo")
        self._parameters = [self.w_x, self.w_h, self.b_h, self.w_o, self.b_o]
        self._optimizer = nn.Adam(self._parameters, lr=lr)
        self.scaler = Standardizer()

    def parameters(self):
        yield from self._parameters

    # ------------------------------------------------------------------
    def _forward(self, inputs: FloatArray) -> tuple[FloatArray, list[FloatArray]]:
        """Unroll over ``inputs`` of shape ``(B, T, N)``; return forecast and states."""
        batch = inputs.shape[0]
        state = np.zeros((batch, self.hidden))
        states = [state]
        for t in range(inputs.shape[1]):
            state = np.tanh(
                inputs[:, t, :] @ self.w_x.value
                + state @ self.w_h.value
                + self.b_h.value
            )
            states.append(state)
        forecast = state @ self.w_o.value + self.b_o.value
        return forecast, states

    def _backward(
        self,
        inputs: FloatArray,
        states: list[FloatArray],
        grad_forecast: FloatArray,
    ) -> None:
        """BPTT: accumulate gradients for one batch."""
        last = states[-1]
        self.w_o.grad += last.T @ grad_forecast
        self.b_o.grad += grad_forecast.sum(axis=0)
        grad_state = grad_forecast @ self.w_o.value.T
        for t in range(inputs.shape[1] - 1, -1, -1):
            # d tanh: states[t+1] is the post-activation at step t.
            grad_pre = grad_state * (1.0 - states[t + 1] ** 2)
            self.w_x.grad += inputs[:, t, :].T @ grad_pre
            self.w_h.grad += states[t].T @ grad_pre
            self.b_h.grad += grad_pre.sum(axis=0)
            grad_state = grad_pre @ self.w_h.value.T

    def _clip_gradients(self) -> None:
        for param in self._parameters:
            norm = float(np.linalg.norm(param.grad))
            if norm > self.clip:
                param.grad *= self.clip / norm

    # ------------------------------------------------------------------
    def fit(self, windows: FloatArray, epochs: int | None = None) -> float:
        windows = self._check(windows)
        self.scaler.fit(windows)
        return self._train(windows, epochs or self.default_epochs)

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        windows = self._check(windows)
        if not self.scaler.is_fitted:
            self.scaler.fit(windows)
        return self._train(windows, epochs)

    def _train(self, windows: FloatArray, epochs: int) -> float:
        scaled = self.scaler.transform(windows)
        inputs = scaled[:, :-1, :]
        targets = scaled[:, -1, :]
        last_loss = float("nan")
        for _ in range(max(epochs, 1)):
            order = self._rng.permutation(len(inputs))
            losses = []
            for start in range(0, len(inputs), self.batch_size):
                idx = order[start : start + self.batch_size]
                batch_in, batch_target = inputs[idx], targets[idx]
                for param in self._parameters:
                    param.zero_grad()
                forecast, states = self._forward(batch_in)
                losses.append(nn.mse_loss(forecast, batch_target))
                self._backward(
                    batch_in, states, nn.mse_loss_grad(forecast, batch_target)
                )
                self._clip_gradients()
                self._optimizer.step()
            last_loss = float(np.mean(losses))
        self._fitted = True
        return last_loss

    def predict(self, x: FeatureVector) -> FloatArray:
        """Forecast ``s_t`` from the window's first ``w - 1`` rows."""
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected window shape {(self.window, self.n_channels)}, got {x.shape}"
            )
        scaled = self.scaler.transform(x)
        forecast, _ = self._forward(scaled[None, :-1, :])
        return self.scaler.inverse(forecast[0])

    def _check(self, windows: FloatArray) -> FloatArray:
        windows = _as_windows(windows)
        if windows.shape[1:] != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected windows of shape (*, {self.window}, {self.n_channels}), "
                f"got {windows.shape}"
            )
        return windows
