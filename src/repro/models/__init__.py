"""The five ML models of the paper plus the VAR extension.

All models implement :class:`repro.models.base.StreamModel` and are built
from scratch on numpy (the neural models on :mod:`repro.nn`).
"""

from repro.models.autoencoder import TwoLayerAutoencoder
from repro.models.base import Standardizer, StreamModel
from repro.models.kmeans import OnlineKMeans, kmeans_plus_plus, lloyd
from repro.models.knn import KNNDetector
from repro.models.lstm import LSTMForecaster
from repro.models.rnn import ElmanForecaster
from repro.models.rs_forest import RandomizedSpaceTree, RSForest
from repro.models.isolation import (
    ExtendedIsolationForest,
    ExtendedIsolationTree,
    average_path_length,
)
from repro.models.nbeats import NBeats, NBeatsBlock, seasonality_basis, trend_basis
from repro.models.online_arima import OnlineARIMA, difference
from repro.models.pcb_iforest import PCBIForest
from repro.models.usad import USAD
from repro.models.var import VARModel

__all__ = [
    "ElmanForecaster",
    "ExtendedIsolationForest",
    "ExtendedIsolationTree",
    "KNNDetector",
    "LSTMForecaster",
    "NBeats",
    "OnlineKMeans",
    "RSForest",
    "RandomizedSpaceTree",
    "NBeatsBlock",
    "OnlineARIMA",
    "PCBIForest",
    "Standardizer",
    "StreamModel",
    "TwoLayerAutoencoder",
    "USAD",
    "VARModel",
    "average_path_length",
    "difference",
    "kmeans_plus_plus",
    "lloyd",
    "seasonality_basis",
    "trend_basis",
]
