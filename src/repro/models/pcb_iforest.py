"""PCB-iForest: performance-counter-based streaming isolation forest.

Heigl et al. (2021) make the isolation forest stream-capable by rating
every tree's contribution to the ensemble decision: a tree whose
single-tree judgement agrees with the ensemble's gets its performance
counter incremented, a disagreeing tree gets it decremented.  When the
Task-2 strategy (KSWIN in the paper) reports concept drift, trees with
non-positive counters are discarded, replaced by fresh trees built on the
current training set, and all counters reset.

Inside this framework the model consumes the training set of windows but
isolates *stream vectors*: the newest row of each feature vector.  Its
score is itself the isolation-forest nonconformity measure
``a_t = 2^{-E(h)/c(n)}`` (Section IV-D), so the model plugs in with
``prediction_kind = "score"``.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro.models.base import StreamModel, _as_windows
from repro.models.isolation import ExtendedIsolationForest


class PCBIForest(StreamModel):
    """Streaming extended isolation forest with per-tree performance counters.

    Args:
        n_trees: ensemble size.
        subsample: per-tree subsample size.
        threshold: anomaly decision threshold on the iForest score; 0.5 is
            the conventional value (scores above it indicate isolation
            faster than average).
        extension_level: hyperplane extension level (``None`` = fully
            extended, per the paper's use of the extended isolation forest).
        seed: RNG seed.
    """

    name = "pcb_iforest"
    prediction_kind = "score"

    def __init__(
        self,
        n_trees: int = 50,
        subsample: int = 128,
        threshold: float = 0.5,
        extension_level: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        self.forest = ExtendedIsolationForest(
            n_trees=n_trees,
            subsample=subsample,
            extension_level=extension_level,
            seed=seed,
        )
        self.performance_counters = np.zeros(n_trees, dtype=np.int64)

    # ------------------------------------------------------------------
    @staticmethod
    def _points(windows: FloatArray) -> FloatArray:
        """Newest stream vector of every window: ``(n, w, N) -> (n, N)``."""
        windows = _as_windows(windows)
        return windows[:, -1, :]

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """Full rebuild of the forest; ``epochs`` is ignored (tree-based)."""
        points = self._points(windows)
        self.forest.fit(points)
        self.performance_counters = np.zeros(self.forest.n_trees, dtype=np.int64)
        self._fitted = True
        return float(self.forest.score_batch(points).mean())

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        """PCB update: drop underperforming trees, grow replacements.

        Trees with ``pc_i > 0`` survive; the rest are rebuilt from the
        current training set.  All counters reset afterwards.
        """
        self._require_fitted()
        points = self._points(windows)
        survivors = [
            tree
            for tree, counter in zip(self.forest.trees, self.performance_counters)
            if counter > 0
        ]
        n_new = self.forest.n_trees - len(survivors)
        new_trees = [self.forest.build_tree(points) for _ in range(n_new)]
        self.forest.trees = survivors + new_trees
        self.performance_counters = np.zeros(self.forest.n_trees, dtype=np.int64)
        return float(self.forest.score_batch(points).mean())

    # ------------------------------------------------------------------
    def score(self, x: FeatureVector) -> float:
        """Ensemble score for the newest stream vector; updates counters.

        Scoring has the side effect of crediting/debiting each tree
        depending on whether its single-tree judgement matches the
        ensemble decision — this is what drives the PCB pruning.
        """
        self._require_fitted()
        point = np.asarray(x, dtype=np.float64)
        if point.ndim == 2:
            point = point[-1]
        return self.consume_depths(self.forest.depths(point))

    def depth_rows(self, windows: FloatArray) -> FloatArray:
        """Per-tree depths for every window's newest vector, ``(B, n_trees)``.

        Pure (no counter updates): the block engine precomputes these
        under the frozen forest and folds each row through
        :meth:`consume_depths` in stream order.
        """
        self._require_fitted()
        return self.forest.depths_batch(self._points(windows))

    def consume_depths(self, depths: FloatArray) -> float:
        """Fold one vector of per-tree depths: ensemble score + counters."""
        ensemble_score = self.forest.score_from_depth(float(depths.mean()))
        ensemble_anomalous = ensemble_score > self.threshold
        tree_scores = self.forest.scores_from_depths(depths)
        agrees = (tree_scores > self.threshold) == ensemble_anomalous
        self.performance_counters += np.where(agrees, 1, -1)
        return float(ensemble_score)

    def score_batch(self, X: FloatArray) -> FloatArray:
        """Vectorized :meth:`score` over ``(B, w, N)`` windows.

        Every window's per-tree votes are credited to the counters, as if
        :meth:`score` had run row by row (integer votes commute).
        """
        self._require_fitted()
        depths = self.depth_rows(X)
        ensemble = self.forest.scores_from_depths(depths.mean(axis=1))
        tree_scores = self.forest.scores_from_depths(depths)
        agrees = (tree_scores > self.threshold) == (
            ensemble > self.threshold
        )[:, None]
        self.performance_counters += np.where(agrees, 1, -1).sum(axis=0)
        return ensemble

    def predict(self, x: FeatureVector) -> FloatArray:
        """Score models have no vector prediction; exposed for interface parity."""
        return np.asarray([self.score(x)])

    def loss(self, windows: FloatArray) -> float:
        """Mean ensemble score over the training set (lower = more normal)."""
        points = self._points(windows)
        return float(self.forest.score_batch(points).mean())
