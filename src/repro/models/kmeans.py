"""Online k-means anomaly detector (Wang et al., related work §II).

Wang et al. detect anomalies with a streaming k-means whose clusters are
rebuilt at every step from a sliding window; the distance to the nearest
centroid indicates abnormality.  In this framework the rebuild cadence is
governed by the Task-2 strategy (fine-tuning re-runs Lloyd's algorithm on
the current training set), making the algorithm directly comparable to
the paper's grid under identical learning strategies.

k-means is implemented from scratch: k-means++ seeding plus Lloyd
iterations on numpy.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro.models.base import StreamModel, _as_windows


def kmeans_plus_plus(
    data: FloatArray, k: int, rng: np.random.Generator
) -> FloatArray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = data.shape[0]
    centroids = [data[rng.integers(n)]]
    for _ in range(1, k):
        deltas = data[:, None, :] - np.asarray(centroids)[None, :, :]
        sq_dist = np.min(np.einsum("nkd,nkd->nk", deltas, deltas), axis=1)
        total = float(sq_dist.sum())
        if total <= 1e-24:  # all points coincide with a centroid
            centroids.append(data[rng.integers(n)])
            continue
        probabilities = sq_dist / total
        centroids.append(data[rng.choice(n, p=probabilities)])
    return np.asarray(centroids)


def lloyd(
    data: FloatArray,
    centroids: FloatArray,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> tuple[FloatArray, FloatArray]:
    """Lloyd's algorithm; returns ``(centroids, assignments)``."""
    centroids = centroids.copy()
    assignments = np.zeros(data.shape[0], dtype=np.int64)
    for _ in range(max_iter):
        deltas = data[:, None, :] - centroids[None, :, :]
        distances = np.einsum("nkd,nkd->nk", deltas, deltas)
        assignments = np.argmin(distances, axis=1)
        shift = 0.0
        for j in range(centroids.shape[0]):
            members = data[assignments == j]
            if len(members):
                new_centroid = members.mean(axis=0)
                shift += float(np.linalg.norm(new_centroid - centroids[j]))
                centroids[j] = new_centroid
        if shift < tol:
            break
    return centroids, assignments


class OnlineKMeans(StreamModel):
    """Cluster-distance anomaly detector over flattened feature vectors.

    Args:
        k: number of clusters.
        max_iter: Lloyd iteration cap per (re)fit.
        seed: RNG seed for seeding.
    """

    name = "kmeans"
    prediction_kind = "score"

    def __init__(self, k: int = 8, max_iter: int = 50, seed: int = 0) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if max_iter < 1:
            raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
        self.k = k
        self.max_iter = max_iter
        self._rng = np.random.default_rng(seed)
        self.centroids: FloatArray | None = None
        self._scale = 1.0

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """Re-cluster the training set; returns the mean within-cluster distance."""
        windows = _as_windows(windows)
        flat = windows.reshape(len(windows), -1)
        k = min(self.k, len(flat))
        seeds = kmeans_plus_plus(flat, k, self._rng)
        self.centroids, assignments = lloyd(flat, seeds, self.max_iter)
        distances = np.linalg.norm(flat - self.centroids[assignments], axis=1)
        # Normalisation scale: a high quantile of in-cluster distances.
        self._scale = max(float(np.quantile(distances, 0.9)), 1e-12)
        self._fitted = True
        return float(distances.mean())

    def nearest_distance(self, x: FeatureVector) -> float:
        """Euclidean distance from ``x`` to its nearest centroid."""
        self._require_fitted()
        assert self.centroids is not None
        vector = np.asarray(x, dtype=np.float64).ravel()
        if vector.size != self.centroids.shape[1]:
            raise ConfigurationError(
                f"expected flattened dimension {self.centroids.shape[1]}, "
                f"got {vector.size}"
            )
        deltas = self.centroids - vector
        return float(np.sqrt(np.min(np.einsum("kd,kd->k", deltas, deltas))))

    def score(self, x: FeatureVector) -> float:
        """``d / (d + scale)``: 0 at a centroid, toward 1 far from all."""
        distance = self.nearest_distance(x)
        return distance / (distance + self._scale)

    def predict(self, x: FeatureVector) -> FloatArray:
        """Score models expose predict for interface parity."""
        return np.asarray([self.score(x)])

    def loss(self, windows: FloatArray) -> float:
        """Mean nearest-centroid distance over a set of windows."""
        windows = _as_windows(windows)
        return float(np.mean([self.nearest_distance(w) for w in windows]))
