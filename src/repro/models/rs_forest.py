"""RS-Forest: randomized space trees for streaming density estimation.

Wu et al. (related work §II) estimate the density of a sample with a
forest of *randomized space trees*: each tree partitions an (expanded)
bounding box with random axis-parallel cuts drawn independently of the
data, down to a fixed depth.  Fitting simply counts how many reference
points land in each leaf; scoring a sample reads its leaf's density
(count scaled by the leaf volume share).  Low-density samples are
anomalies.

Because the tree *structure* never depends on the data, model updates
are O(n) count refreshes — which is what makes the method streaming-
friendly, and what the Task-2 fine-tuning exploits here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.core.types import FeatureVector, FloatArray
from repro.models.base import StreamModel, _as_windows


@dataclass
class _SpaceNode:
    """A node of a randomized space tree."""

    depth: int
    split_dim: int = -1
    split_value: float = 0.0
    log_volume: float = 0.0
    count: int = 0
    left: "_SpaceNode | None" = None
    right: "_SpaceNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RandomizedSpaceTree:
    """One space tree over an expanded bounding box.

    Args:
        lower: box lower corner, shape ``(dim,)``.
        upper: box upper corner, shape ``(dim,)``.
        depth: tree depth (``2**depth`` leaves).
        rng: random generator.
    """

    def __init__(
        self,
        lower: FloatArray,
        upper: FloatArray,
        depth: int,
        rng: np.random.Generator,
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.lower = np.asarray(lower, dtype=np.float64)
        self.upper = np.asarray(upper, dtype=np.float64)
        if np.any(self.upper <= self.lower):
            raise ValueError("upper must exceed lower in every dimension")
        self.dim = self.lower.size
        self.depth = depth
        self.root = self._grow(self.lower.copy(), self.upper.copy(), 0, rng)

    def _grow(
        self,
        lower: FloatArray,
        upper: FloatArray,
        depth: int,
        rng: np.random.Generator,
    ) -> _SpaceNode:
        if depth >= self.depth:
            return _SpaceNode(depth=depth, log_volume=-float(depth) * np.log(2.0))
        dim = int(rng.integers(self.dim))
        # Random cut within the central 80% of the current extent, so no
        # sliver leaves with near-zero volume appear.
        low, high = lower[dim], upper[dim]
        cut = rng.uniform(low + 0.1 * (high - low), high - 0.1 * (high - low))
        node = _SpaceNode(depth=depth, split_dim=dim, split_value=float(cut))
        left_upper = upper.copy()
        left_upper[dim] = cut
        right_lower = lower.copy()
        right_lower[dim] = cut
        node.left = self._grow(lower, left_upper, depth + 1, rng)
        node.right = self._grow(right_lower, upper, depth + 1, rng)
        return node

    def _leaf_for(self, x: FloatArray) -> _SpaceNode:
        node = self.root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if x[node.split_dim] <= node.split_value else node.right
        return node

    def populate(self, data: FloatArray) -> None:
        """Reset all leaf counts and drop ``data`` through the tree."""
        self._clear_counts(self.root)
        for row in np.atleast_2d(data):
            self._leaf_for(row).count += 1

    def _clear_counts(self, node: _SpaceNode) -> None:
        node.count = 0
        if not node.is_leaf:
            self._clear_counts(node.left)  # type: ignore[arg-type]
            self._clear_counts(node.right)  # type: ignore[arg-type]

    def density(self, x: FloatArray) -> float:
        """Leaf count scaled by the leaf's volume share (``2**depth``)."""
        leaf = self._leaf_for(np.asarray(x, dtype=np.float64).ravel())
        return leaf.count * float(2.0**self.depth)


class RSForest(StreamModel):
    """Density-based streaming anomaly detector over stream vectors.

    Operates on the newest stream vector of each feature window (like
    PCB-iForest).  The anomaly score is ``1 / (1 + density / reference)``
    where ``reference`` is the median training density: empty or sparse
    regions score near 1, dense regions near 0.

    Args:
        n_trees: forest size.
        depth: per-tree depth.
        margin: bounding-box expansion factor, so moderately out-of-range
            stream values still land in populated space.
        seed: RNG seed.
    """

    name = "rs_forest"
    prediction_kind = "score"

    def __init__(
        self,
        n_trees: int = 25,
        depth: int = 8,
        margin: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_trees < 1:
            raise ConfigurationError(f"n_trees must be >= 1, got {n_trees}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {margin}")
        self.n_trees = n_trees
        self.depth = depth
        self.margin = margin
        self._rng = np.random.default_rng(seed)
        self.trees: list[RandomizedSpaceTree] = []
        self._reference_density = 1.0

    @staticmethod
    def _points(windows: FloatArray) -> FloatArray:
        windows = _as_windows(windows)
        return windows[:, -1, :]

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """Build tree structures (first call) and populate leaf counts."""
        points = self._points(windows)
        if not self.trees:
            lower = points.min(axis=0)
            upper = points.max(axis=0)
            span = np.maximum(upper - lower, 1e-8)
            lower = lower - self.margin * span
            upper = upper + self.margin * span
            self.trees = [
                RandomizedSpaceTree(lower, upper, self.depth, self._rng)
                for _ in range(self.n_trees)
            ]
        for tree in self.trees:
            tree.populate(points)
        densities = [self._mean_density(p) for p in points]
        self._reference_density = max(float(np.median(densities)), 1e-12)
        self._fitted = True
        return float(np.mean(densities))

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        """Refresh leaf counts from the current training set (structure kept)."""
        if not self.trees:
            raise NotFittedError("RSForest fine-tuned before fit")
        return self.fit(windows, epochs)

    def _mean_density(self, point: FloatArray) -> float:
        return float(np.mean([tree.density(point) for tree in self.trees]))

    def score(self, x: FeatureVector) -> float:
        """``1 / (1 + density / reference)`` for the newest stream vector."""
        self._require_fitted()
        point = np.asarray(x, dtype=np.float64)
        if point.ndim == 2:
            point = point[-1]
        density = self._mean_density(point)
        return 1.0 / (1.0 + density / self._reference_density)

    def predict(self, x: FeatureVector) -> FloatArray:
        """Score models expose predict for interface parity."""
        return np.asarray([self.score(x)])

    def loss(self, windows: FloatArray) -> float:
        """Mean score over the training set (lower = denser = more normal)."""
        points = self._points(windows)
        return float(np.mean([self.score(p[None, :]) for p in points]))
