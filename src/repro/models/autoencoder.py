"""Two-layer autoencoder baseline (Section IV-C).

The simplest reconstruction model of the paper: the window is flattened to
a vector of length ``N * w``, passed through one sigmoid hidden layer and
projected back, ``x_hat = r^{-1}(sigma(r(x) W1 + b1) W2 + b2)``.  Inputs
are standardized per channel (fitted at every full :meth:`fit`) so the
sigmoid operates in a sane range regardless of sensor units.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro import nn
from repro.models.base import (
    Standardizer,
    StreamModel,
    _as_windows,
    fleet_tiled_forward,
    tiled_forward,
)


class TwoLayerAutoencoder(StreamModel):
    """Fully-connected autoencoder with a single sigmoid hidden layer.

    Args:
        window: data representation length ``w``.
        n_channels: stream channel count ``N``.
        hidden: hidden-layer width; defaults to ``max(4, N*w // 4)``.
        lr: Adam learning rate for fine-tuning.
        epochs: default epoch count for a full :meth:`fit`.
        batch_size: minibatch size during training.
        seed: RNG seed for weight initialization and shuffling.
    """

    name = "ae"
    prediction_kind = "reconstruction"

    def __init__(
        self,
        window: int,
        n_channels: int,
        hidden: int | None = None,
        lr: float = 3e-3,
        epochs: int = 20,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if window < 1 or n_channels < 1:
            raise ConfigurationError("window and n_channels must be >= 1")
        self.window = window
        self.n_channels = n_channels
        self.input_dim = window * n_channels
        self.hidden = hidden if hidden is not None else max(4, self.input_dim // 4)
        if self.hidden < 1:
            raise ConfigurationError(f"hidden must be >= 1, got {self.hidden}")
        self.default_epochs = epochs
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self.network = nn.Sequential(
            nn.Linear(self.input_dim, self.hidden, self._rng),
            nn.Sigmoid(),
            nn.Linear(self.hidden, self.input_dim, self._rng),
        )
        self._optimizer = nn.Adam(list(self.network.parameters()), lr=lr)
        self.scaler = Standardizer()

    # ------------------------------------------------------------------
    def fit(self, windows: FloatArray, epochs: int | None = None) -> float:
        """Train on the standardized, flattened windows with Adam."""
        windows = self._check(windows)
        self.scaler.fit(windows)
        return self._train(windows, epochs or self.default_epochs)

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        """Continue training from current weights (scaler left unchanged)."""
        windows = self._check(windows)
        if not self.scaler.is_fitted:
            self.scaler.fit(windows)
        return self._train(windows, epochs)

    def _train(self, windows: FloatArray, epochs: int) -> float:
        flat = self.scaler.transform(windows).reshape(len(windows), -1)
        starts = range(0, len(flat), self.batch_size)
        epoch_losses = np.empty(len(starts))
        last_loss = float("nan")
        for _ in range(max(epochs, 1)):
            order = self._rng.permutation(len(flat))
            for b, start in enumerate(starts):
                batch = flat[order[start : start + self.batch_size]]
                self._optimizer.zero_grad()
                output = self.network(batch)
                epoch_losses[b] = nn.mse_loss(output, batch)
                self.network.backward(nn.mse_loss_grad(output, batch))
                self._optimizer.step()
            last_loss = float(np.mean(epoch_losses))
        self._fitted = True
        return last_loss

    def predict(self, x: FeatureVector) -> FloatArray:
        """Reconstruct one window; returns shape ``(w, N)`` in original units."""
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected window shape {(self.window, self.n_channels)}, got {x.shape}"
            )
        flat = self.scaler.transform(x).reshape(1, -1)
        output = self.network(flat).reshape(self.window, self.n_channels)
        return self.scaler.inverse(output)

    def predict_batch(self, X: FloatArray) -> FloatArray:
        """Reconstruct a ``(B, w, N)`` block of windows in one tiled pass."""
        self._require_fitted()
        X = self._check(X)
        flat = self.scaler.transform(X).reshape(len(X), -1)
        output = tiled_forward(self.network, flat)
        return self.scaler.inverse(
            output.reshape(len(X), self.window, self.n_channels)
        )

    def _check(self, windows: FloatArray) -> FloatArray:
        windows = _as_windows(windows)
        if windows.shape[1:] != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected windows of shape (*, {self.window}, {self.n_channels}), "
                f"got {windows.shape}"
            )
        return windows

    # ------------------------------------------------------------------
    def fleet_modules(self) -> tuple:
        return (self.network,)

    @classmethod
    def fleet_predict_batch(
        cls, models: list, mirror: tuple, windows_list: list
    ) -> list:
        (network,) = mirror
        flats = [
            model.scaler.transform(X).reshape(len(X), model.input_dim)
            for model, X in zip(models, windows_list)
        ]
        outputs = fleet_tiled_forward(network, flats)
        return [
            model.scaler.inverse(
                rows.reshape(len(X), model.window, model.n_channels)
            )
            for model, rows, X in zip(models, outputs, windows_list)
        ]

    @classmethod
    def fleet_finetune(
        cls, models: list, windows_list: list, epochs: int
    ) -> tuple[list[float], list[float]] | None:
        """Session-axis fused :meth:`finetune` of K autoencoders.

        Replays the exact `_train` minibatch sequence on ``(K, B, F)``
        stacks: one RNG permutation per session per epoch (drawn from the
        session's own generator), fancy-gathered minibatches, one fused
        forward/backward per minibatch and an :class:`~repro.nn.AdamLane`
        step.  All state flows back through scratch-arena/lane writeback
        only after the full loop, so a ``None`` (unfusable) return leaves
        every model untouched.
        """
        first = models[0]
        n = len(windows_list[0])
        if (
            n == 0
            or any(len(w) != n for w in windows_list)
            or any(not m.scaler.is_fitted for m in models)
            or any(m.batch_size != first.batch_size for m in models)
        ):
            return None
        try:
            windows_list = [m._check(w) for m, w in zip(models, windows_list)]
            arena = nn.ParameterArena(
                [m.fleet_modules() for m in models], attach=False
            )
            lane = nn.AdamLane([m._optimizer for m in models], arena)
        except (ConfigurationError, ValueError, KeyError):
            return None
        loss_before = cls._fleet_loss(models, arena.mirror, windows_list)

        (network,) = arena.mirror
        flat = np.stack(
            [
                m.scaler.transform(w).reshape(n, -1)
                for m, w in zip(models, windows_list)
            ]
        )
        rows = np.arange(len(models))[:, None]
        starts = range(0, n, first.batch_size)
        epoch_losses = np.empty((len(models), len(starts)))
        for _ in range(max(epochs, 1)):
            orders = np.stack([m._rng.permutation(n) for m in models])
            for b, start in enumerate(starts):
                batch = flat[rows, orders[:, start : start + first.batch_size]]
                lane.zero_grad()
                output = network(batch)
                for k in range(len(models)):
                    epoch_losses[k, b] = nn.mse_loss(output[k], batch[k])
                network.backward(nn.fleet_mse_loss_grad(output, batch))
                lane.step()
            last = epoch_losses.mean(axis=1)
        arena.writeback()
        lane.writeback()
        for model in models:
            model._fitted = True
        return loss_before, [float(x) for x in last]
