"""Vector-autoregressive model estimated by least squares.

The VAR(p) model ``s_t = nu + sum_i A_i s_{t-i} + eps`` (Section IV-C)
extends autoregression to multivariate streams and captures cross-channel
correlations.  Parameters are estimated by ordinary least squares on
consecutive rows; since each feature vector is itself a contiguous window,
every window contributes ``w - p`` regression rows regardless of which
Task-1 strategy assembled the training set (the paper pairs VAR with the
sliding window, which additionally keeps the windows themselves
consecutive).

Note: the paper describes VAR but does not include it in the Table I
grid of 26 algorithms; it is provided here as a library extension and is
benchmarked in the ablation suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro.models.base import StreamModel, _as_windows, tiled_forward


class VARModel(StreamModel):
    """VAR(p) least-squares forecaster.

    Args:
        order: the autoregression order ``p``.
        ridge: small L2 regularisation added to the normal equations so the
            estimate stays defined when the design matrix is rank-deficient
            (e.g. constant channels).
    """

    name = "var"
    prediction_kind = "forecast"

    def __init__(self, order: int = 3, ridge: float = 1e-6) -> None:
        super().__init__()
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        if ridge < 0:
            raise ConfigurationError(f"ridge must be >= 0, got {ridge}")
        self.order = order
        self.ridge = ridge
        self.intercept: FloatArray | None = None  # nu, shape (N,)
        self.coefficients: FloatArray | None = None  # stacked A_i, (p*N, N)

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """Least-squares estimation; ``epochs`` is ignored (closed form)."""
        windows = _as_windows(windows)
        _, w, n_channels = windows.shape
        if w <= self.order:
            raise ConfigurationError(
                f"window length {w} must exceed VAR order {self.order}"
            )
        design_rows = []
        target_rows = []
        for window_values in windows:
            for tau in range(self.order, w):
                lags = window_values[tau - self.order : tau][::-1]  # newest first
                design_rows.append(np.concatenate(([1.0], lags.ravel())))
                target_rows.append(window_values[tau])
        design = np.asarray(design_rows)
        targets = np.asarray(target_rows)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        solution = np.linalg.solve(gram, design.T @ targets)
        self.intercept = solution[0]
        self.coefficients = solution[1:]
        self._fitted = True
        residual = targets - design @ solution
        return float(np.mean(residual**2))

    def predict(self, x: FeatureVector) -> FloatArray:
        """Forecast ``s_t`` from the last ``p`` rows preceding the window end."""
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] < self.order + 1:
            raise ConfigurationError(
                f"window of length {x.shape[0]} too short for VAR({self.order})"
            )
        lags = x[-1 - self.order : -1][::-1]  # newest first, excludes final row
        assert self.intercept is not None and self.coefficients is not None
        return self.intercept + lags.ravel() @ self.coefficients

    def predict_batch(self, X: FloatArray) -> FloatArray:
        """Forecast for a ``(B, w, N)`` block via one tiled design GEMM."""
        self._require_fitted()
        X = _as_windows(X)
        if X.shape[1] < self.order + 1:
            raise ConfigurationError(
                f"window of length {X.shape[1]} too short for VAR({self.order})"
            )
        assert self.intercept is not None and self.coefficients is not None
        lags = X[:, -1 - self.order : -1, :][:, ::-1, :]  # newest first
        design = lags.reshape(len(X), -1)
        return self.intercept + tiled_forward(
            lambda tile: tile @ self.coefficients, design
        )

    def companion_spectral_radius(self) -> float:
        """Spectral radius of the companion matrix (stability diagnostic).

        A fitted VAR process is stable iff this value is below 1.
        """
        self._require_fitted()
        assert self.coefficients is not None
        n = self.coefficients.shape[1]
        p = self.order
        companion = np.zeros((n * p, n * p))
        # coefficient rows are ordered newest lag first
        for i in range(p):
            companion[:n, i * n : (i + 1) * n] = self.coefficients[
                i * n : (i + 1) * n
            ].T
        if p > 1:
            companion[n:, :-n] = np.eye(n * (p - 1))
        return float(np.max(np.abs(np.linalg.eigvals(companion))))
