"""Extended isolation forest substrate (Hariri et al., 2021).

Unlike the classic isolation forest, split hyperplanes may be diagonal:
each internal node draws a random normal vector ``n`` and a random
intercept ``p`` inside the node's bounding box, branching on
``(x - p) . n <= 0``.  Anomalies isolate in fewer splits, so short average
path lengths map to scores near 1 via ``s(x) = 2^{-E(h(x)) / c(psi)}``.

Trees are *grown* recursively (the structure and RNG consumption are
unchanged from the original implementation) but *traversed* over a flat
array encoding: normals, intercepts, child indices and leaf adjustments
live in contiguous NumPy arrays, so path lengths for many points — or for
one point across every tree of a forest — are computed by vectorized
index-chasing instead of per-node Python recursion.  The recursive
traversal is kept as :meth:`ExtendedIsolationTree.path_length_recursive`;
it is the reference the array encoding is property-tested against, and
the baseline the perf benchmarks compare to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.types import FloatArray


def average_path_length(n: int) -> float:
    """Expected path length ``c(n)`` of an unsuccessful BST search.

    ``c(n) = 2 H(n-1) - 2(n-1)/n`` with ``H(k) ~ ln(k) + gamma``;
    by convention ``c(2) = 1`` and ``c(n) = 0`` for ``n < 2``.
    """
    if n < 2:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = math.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


@dataclass
class _Node:
    """One node of an extended isolation tree."""

    size: int
    normal: FloatArray | None = None
    intercept: FloatArray | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _FlatTree:
    """Array encoding of one grown tree (preorder node numbering).

    ``left``/``right`` hold child indices with ``-1`` marking leaves;
    ``leaf_adjust`` holds ``c(size)`` at leaves (0 at internal nodes) so a
    traversal ends with a single gather instead of a Python call.
    """

    __slots__ = ("normals", "intercepts", "left", "right", "leaf_adjust")

    def __init__(self, root: _Node, dim: int) -> None:
        # Preorder flatten with an explicit stack (no recursion limits).
        nodes: list[_Node] = []
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]
        index = {id(node): i for i, node in enumerate(nodes)}
        n = len(nodes)
        self.normals = np.zeros((n, dim), dtype=np.float64)
        self.intercepts = np.zeros((n, dim), dtype=np.float64)
        self.left = np.full(n, -1, dtype=np.int64)
        self.right = np.full(n, -1, dtype=np.int64)
        self.leaf_adjust = np.zeros(n, dtype=np.float64)
        for i, node in enumerate(nodes):
            if node.is_leaf:
                self.leaf_adjust[i] = average_path_length(node.size)
            else:
                self.normals[i] = node.normal
                self.intercepts[i] = node.intercept
                self.left[i] = index[id(node.left)]
                self.right[i] = index[id(node.right)]

    @property
    def n_nodes(self) -> int:
        return int(self.left.size)


class _Arena:
    """All trees of a forest concatenated into shared node arrays.

    Child indices are rebased so one pair of ``left``/``right`` arrays
    addresses every tree; ``roots`` holds each tree's root offset.  A
    single point then descends *all* trees simultaneously, and a batch of
    points descends all (point, tree) pairs simultaneously.
    """

    __slots__ = ("normals", "intercepts", "left", "right", "leaf_adjust", "roots")

    def __init__(self, flats: list[_FlatTree]) -> None:
        offsets = np.cumsum([0] + [flat.n_nodes for flat in flats[:-1]])
        self.roots = np.asarray(offsets, dtype=np.int64)
        self.normals = np.concatenate([flat.normals for flat in flats])
        self.intercepts = np.concatenate([flat.intercepts for flat in flats])
        self.leaf_adjust = np.concatenate([flat.leaf_adjust for flat in flats])
        rebased_left = []
        rebased_right = []
        for flat, offset in zip(flats, offsets):
            shift = np.where(flat.left >= 0, offset, 0)
            rebased_left.append(flat.left + shift)
            rebased_right.append(flat.right + np.where(flat.right >= 0, offset, 0))
        self.left = np.concatenate(rebased_left)
        self.right = np.concatenate(rebased_right)

    def descend(self, points: FloatArray, node: np.ndarray) -> FloatArray:
        """Walk every (point, node-start) pair to its leaf; return depths.

        ``points`` has shape ``(k, dim)`` aligned with ``node`` — entry
        ``i`` descends from ``node[i]`` deciding branches with
        ``points[i]``.  Mutates ``node`` in place to the final leaves.
        """
        depth = np.zeros(node.size, dtype=np.float64)
        active = np.flatnonzero(self.left[node] >= 0)
        while active.size:
            idx = node[active]
            proj = np.einsum(
                "ij,ij->i", points[active] - self.intercepts[idx], self.normals[idx]
            )
            node[active] = np.where(proj <= 0.0, self.left[idx], self.right[idx])
            depth[active] += 1.0
            active = active[self.left[node[active]] >= 0]
        return depth + self.leaf_adjust[node]


class ExtendedIsolationTree:
    """A single isolation tree with diagonal (hyperplane) splits.

    Args:
        data: points of shape ``(n, dim)`` to isolate.
        rng: random generator.
        max_depth: growth limit; defaults to ``ceil(log2(n))`` as in the
            original algorithm.
        extension_level: number of dimensions participating in each split
            minus one; ``None`` means fully extended (all dimensions).
            Level 0 reproduces the classic axis-parallel forest.
    """

    def __init__(
        self,
        data: FloatArray,
        rng: np.random.Generator,
        max_depth: int | None = None,
        extension_level: int | None = None,
    ) -> None:
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[0] == 0:
            raise ValueError("cannot build a tree from zero samples")
        self.dim = data.shape[1]
        self.n_samples = data.shape[0]
        if extension_level is not None and not 0 <= extension_level < self.dim:
            raise ValueError(
                f"extension_level must be in [0, {self.dim - 1}], got {extension_level}"
            )
        self.extension_level = extension_level
        self.max_depth = (
            max_depth
            if max_depth is not None
            else max(1, math.ceil(math.log2(max(self.n_samples, 2))))
        )
        self._rng = rng
        self.root = self._grow(data, depth=0)
        self.flat = _FlatTree(self.root, self.dim)

    def _grow(self, data: FloatArray, depth: int) -> _Node:
        n = data.shape[0]
        if n <= 1 or depth >= self.max_depth:
            return _Node(size=n)
        lower = data.min(axis=0)
        upper = data.max(axis=0)
        if np.allclose(lower, upper):
            return _Node(size=n)  # all points identical: nothing to split
        normal = self._rng.normal(size=self.dim)
        if self.extension_level is not None:
            # Zero out all but (extension_level + 1) randomly chosen dims.
            keep = self._rng.choice(
                self.dim, size=self.extension_level + 1, replace=False
            )
            mask = np.zeros(self.dim, dtype=bool)
            mask[keep] = True
            normal = np.where(mask, normal, 0.0)
        norm = np.linalg.norm(normal)
        if norm < 1e-12:
            return _Node(size=n)
        normal /= norm
        intercept = self._rng.uniform(lower, upper)
        goes_left = (data - intercept) @ normal <= 0.0
        if goes_left.all() or not goes_left.any():
            return _Node(size=n)  # degenerate split
        return _Node(
            size=n,
            normal=normal,
            intercept=intercept,
            left=self._grow(data[goes_left], depth + 1),
            right=self._grow(data[~goes_left], depth + 1),
        )

    def _check_dim(self, x: FloatArray) -> FloatArray:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.dim:
            raise ValueError(f"expected point of dim {self.dim}, got {x.size}")
        return x

    def path_length(self, x: FloatArray) -> float:
        """Depth at which ``x`` isolates, with the ``c(size)`` leaf adjustment."""
        x = self._check_dim(x)
        flat = self.flat
        node = 0
        depth = 0
        while flat.left[node] >= 0:
            proj = (x - flat.intercepts[node]) @ flat.normals[node]
            node = flat.left[node] if proj <= 0.0 else flat.right[node]
            depth += 1
        return depth + float(flat.leaf_adjust[node])

    def path_length_recursive(self, x: FloatArray) -> float:
        """Reference node-object traversal (kept for tests and benchmarks)."""
        x = self._check_dim(x)
        node = self.root
        depth = 0
        while not node.is_leaf:
            assert node.normal is not None and node.intercept is not None
            if (x - node.intercept) @ node.normal <= 0.0:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
            depth += 1
        return depth + average_path_length(node.size)

    def path_lengths(self, points: FloatArray) -> FloatArray:
        """Vectorized :meth:`path_length` for ``(n, dim)`` points."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dim:
            raise ValueError(
                f"expected points of dim {self.dim}, got {points.shape[1]}"
            )
        flat = self.flat
        node = np.zeros(points.shape[0], dtype=np.int64)
        depth = np.zeros(points.shape[0], dtype=np.float64)
        active = np.flatnonzero(flat.left[node] >= 0)
        while active.size:
            idx = node[active]
            proj = np.einsum(
                "ij,ij->i", points[active] - flat.intercepts[idx], flat.normals[idx]
            )
            node[active] = np.where(proj <= 0.0, flat.left[idx], flat.right[idx])
            depth[active] += 1.0
            active = active[flat.left[node[active]] >= 0]
        return depth + flat.leaf_adjust[node]

    def n_nodes(self) -> int:
        """Total node count (diagnostics)."""
        return self.flat.n_nodes


class ExtendedIsolationForest:
    """An ensemble of extended isolation trees.

    Scoring runs over a node *arena* — the array encodings of every tree
    concatenated — so one point's per-tree depths come from a single
    vectorized descent across all trees, and batches descend all
    (point, tree) pairs at once.  Set ``use_arena = False`` to fall back
    to per-tree recursive traversal (the pre-vectorization baseline).

    Args:
        n_trees: ensemble size.
        subsample: points drawn (without replacement when possible) to
            build each tree; the classic default is 256.
        extension_level: see :class:`ExtendedIsolationTree`.
        seed: RNG seed.
    """

    def __init__(
        self,
        n_trees: int = 50,
        subsample: int = 256,
        extension_level: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if subsample < 2:
            raise ValueError(f"subsample must be >= 2, got {subsample}")
        self.n_trees = n_trees
        self.subsample = subsample
        self.extension_level = extension_level
        self.use_arena = True
        self._rng = np.random.default_rng(seed)
        self._trees: list[ExtendedIsolationTree] = []
        self._arena: _Arena | None = None
        self._psi = 0

    @property
    def trees(self) -> list[ExtendedIsolationTree]:
        return self._trees

    @trees.setter
    def trees(self, trees: list[ExtendedIsolationTree]) -> None:
        # Assigning a new tree list (fit, PCB prune-and-regrow) drops the
        # cached arena; it is rebuilt lazily on the next scoring call.
        self._trees = list(trees)
        self._arena = None

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    def fit(self, data: FloatArray) -> "ExtendedIsolationForest":
        """Build all trees from scratch on ``(n, dim)`` points."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.trees = [self.build_tree(data) for _ in range(self.n_trees)]
        return self

    def build_tree(self, data: FloatArray) -> ExtendedIsolationTree:
        """Build one tree on a random subsample of ``data``."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n = data.shape[0]
        psi = min(self.subsample, n)
        self._psi = psi
        index = self._rng.choice(n, size=psi, replace=n < psi)
        level = self.extension_level
        if level is not None:
            level = min(level, data.shape[1] - 1)
        return ExtendedIsolationTree(data[index], self._rng, extension_level=level)

    def _ensure_arena(self) -> _Arena:
        if self._arena is None:
            self._arena = _Arena([tree.flat for tree in self._trees])
        return self._arena

    def depths(self, x: FloatArray) -> FloatArray:
        """Per-tree path lengths for one point."""
        if not self._trees:
            raise NotFittedError("forest used before fit")
        x = self._trees[0]._check_dim(x)
        if not self.use_arena:
            return np.array([tree.path_length_recursive(x) for tree in self._trees])
        arena = self._ensure_arena()
        points = np.broadcast_to(x, (arena.roots.size, x.size))
        return arena.descend(points, arena.roots.copy())

    def depths_batch(self, points: FloatArray) -> FloatArray:
        """Path lengths for ``(n, dim)`` points over every tree: ``(n, T)``."""
        if not self._trees:
            raise NotFittedError("forest used before fit")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self._trees[0].dim:
            raise ValueError(
                f"expected points of dim {self._trees[0].dim}, "
                f"got {points.shape[1]}"
            )
        if not self.use_arena:
            return np.stack([self.depths(p) for p in points])
        arena = self._ensure_arena()
        n_points = points.shape[0]
        n_trees = arena.roots.size
        node = np.tile(arena.roots, n_points)
        spread = np.repeat(points, n_trees, axis=0)
        return arena.descend(spread, node).reshape(n_points, n_trees)

    def score_from_depth(self, depth: float) -> float:
        """Map a (mean or single-tree) depth to the iForest score in (0, 1)."""
        denominator = average_path_length(max(self._psi, 2))
        return float(2.0 ** (-depth / max(denominator, 1e-12)))

    def scores_from_depths(self, depths: FloatArray) -> FloatArray:
        """Vectorized :meth:`score_from_depth` over an array of depths."""
        denominator = average_path_length(max(self._psi, 2))
        return 2.0 ** (
            -np.asarray(depths, dtype=np.float64) / max(denominator, 1e-12)
        )

    def score(self, x: FloatArray) -> float:
        """The ensemble anomaly score ``2^{-E(h(x)) / c(psi)}``."""
        return self.score_from_depth(float(self.depths(x).mean()))

    def score_batch(self, points: FloatArray) -> FloatArray:
        """Ensemble scores for ``(n, dim)`` points in one vectorized pass."""
        return self.scores_from_depths(self.depths_batch(points).mean(axis=1))
