"""Extended isolation forest substrate (Hariri et al., 2021).

Unlike the classic isolation forest, split hyperplanes may be diagonal:
each internal node draws a random normal vector ``n`` and a random
intercept ``p`` inside the node's bounding box, branching on
``(x - p) . n <= 0``.  Anomalies isolate in fewer splits, so short average
path lengths map to scores near 1 via ``s(x) = 2^{-E(h(x)) / c(psi)}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.types import FloatArray


def average_path_length(n: int) -> float:
    """Expected path length ``c(n)`` of an unsuccessful BST search.

    ``c(n) = 2 H(n-1) - 2(n-1)/n`` with ``H(k) ~ ln(k) + gamma``;
    by convention ``c(2) = 1`` and ``c(n) = 0`` for ``n < 2``.
    """
    if n < 2:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = math.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


@dataclass
class _Node:
    """One node of an extended isolation tree."""

    size: int
    normal: FloatArray | None = None
    intercept: FloatArray | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class ExtendedIsolationTree:
    """A single isolation tree with diagonal (hyperplane) splits.

    Args:
        data: points of shape ``(n, dim)`` to isolate.
        rng: random generator.
        max_depth: growth limit; defaults to ``ceil(log2(n))`` as in the
            original algorithm.
        extension_level: number of dimensions participating in each split
            minus one; ``None`` means fully extended (all dimensions).
            Level 0 reproduces the classic axis-parallel forest.
    """

    def __init__(
        self,
        data: FloatArray,
        rng: np.random.Generator,
        max_depth: int | None = None,
        extension_level: int | None = None,
    ) -> None:
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[0] == 0:
            raise ValueError("cannot build a tree from zero samples")
        self.dim = data.shape[1]
        self.n_samples = data.shape[0]
        if extension_level is not None and not 0 <= extension_level < self.dim:
            raise ValueError(
                f"extension_level must be in [0, {self.dim - 1}], got {extension_level}"
            )
        self.extension_level = extension_level
        self.max_depth = (
            max_depth
            if max_depth is not None
            else max(1, math.ceil(math.log2(max(self.n_samples, 2))))
        )
        self._rng = rng
        self.root = self._grow(data, depth=0)

    def _grow(self, data: FloatArray, depth: int) -> _Node:
        n = data.shape[0]
        if n <= 1 or depth >= self.max_depth:
            return _Node(size=n)
        lower = data.min(axis=0)
        upper = data.max(axis=0)
        if np.allclose(lower, upper):
            return _Node(size=n)  # all points identical: nothing to split
        normal = self._rng.normal(size=self.dim)
        if self.extension_level is not None:
            # Zero out all but (extension_level + 1) randomly chosen dims.
            keep = self._rng.choice(
                self.dim, size=self.extension_level + 1, replace=False
            )
            mask = np.zeros(self.dim, dtype=bool)
            mask[keep] = True
            normal = np.where(mask, normal, 0.0)
        norm = np.linalg.norm(normal)
        if norm < 1e-12:
            return _Node(size=n)
        normal /= norm
        intercept = self._rng.uniform(lower, upper)
        goes_left = (data - intercept) @ normal <= 0.0
        if goes_left.all() or not goes_left.any():
            return _Node(size=n)  # degenerate split
        return _Node(
            size=n,
            normal=normal,
            intercept=intercept,
            left=self._grow(data[goes_left], depth + 1),
            right=self._grow(data[~goes_left], depth + 1),
        )

    def path_length(self, x: FloatArray) -> float:
        """Depth at which ``x`` isolates, with the ``c(size)`` leaf adjustment."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.dim:
            raise ValueError(f"expected point of dim {self.dim}, got {x.size}")
        node = self.root
        depth = 0
        while not node.is_leaf:
            assert node.normal is not None and node.intercept is not None
            if (x - node.intercept) @ node.normal <= 0.0:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
            depth += 1
        return depth + average_path_length(node.size)

    def n_nodes(self) -> int:
        """Total node count (diagnostics)."""

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + count(node.left) + count(node.right)  # type: ignore[arg-type]

        return count(self.root)


class ExtendedIsolationForest:
    """An ensemble of extended isolation trees.

    Args:
        n_trees: ensemble size.
        subsample: points drawn (without replacement when possible) to
            build each tree; the classic default is 256.
        extension_level: see :class:`ExtendedIsolationTree`.
        seed: RNG seed.
    """

    def __init__(
        self,
        n_trees: int = 50,
        subsample: int = 256,
        extension_level: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if subsample < 2:
            raise ValueError(f"subsample must be >= 2, got {subsample}")
        self.n_trees = n_trees
        self.subsample = subsample
        self.extension_level = extension_level
        self._rng = np.random.default_rng(seed)
        self.trees: list[ExtendedIsolationTree] = []
        self._psi = 0

    @property
    def is_fitted(self) -> bool:
        return bool(self.trees)

    def fit(self, data: FloatArray) -> "ExtendedIsolationForest":
        """Build all trees from scratch on ``(n, dim)`` points."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.trees = [self.build_tree(data) for _ in range(self.n_trees)]
        return self

    def build_tree(self, data: FloatArray) -> ExtendedIsolationTree:
        """Build one tree on a random subsample of ``data``."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n = data.shape[0]
        psi = min(self.subsample, n)
        self._psi = psi
        index = self._rng.choice(n, size=psi, replace=n < psi)
        level = self.extension_level
        if level is not None:
            level = min(level, data.shape[1] - 1)
        return ExtendedIsolationTree(data[index], self._rng, extension_level=level)

    def depths(self, x: FloatArray) -> FloatArray:
        """Per-tree path lengths for one point."""
        if not self.trees:
            raise NotFittedError("forest used before fit")
        return np.array([tree.path_length(x) for tree in self.trees])

    def score_from_depth(self, depth: float) -> float:
        """Map a (mean or single-tree) depth to the iForest score in (0, 1)."""
        denominator = average_path_length(max(self._psi, 2))
        return float(2.0 ** (-depth / max(denominator, 1e-12)))

    def score(self, x: FloatArray) -> float:
        """The ensemble anomaly score ``2^{-E(h(x)) / c(psi)}``."""
        return self.score_from_depth(float(self.depths(x).mean()))
