"""Base interface shared by all five ML models of the paper.

Every model consumes a *training set* of feature vectors — an array of
shape ``(n, w, N)``: ``n`` windows of ``w`` stream vectors with ``N``
channels — and produces per-window predictions whose kind determines how
the nonconformity measure compares them to the observed data:

- ``"reconstruction"`` — the model reproduces the whole window
  (autoencoder, USAD): ``predict(x)`` has shape ``(w, N)``;
- ``"forecast"`` — the model forecasts the newest stream vector ``s_t``
  from the preceding ``w - 1`` rows (Online ARIMA, VAR, N-BEATS):
  ``predict(x)`` has shape ``(N,)``;
- ``"score"`` — the model directly outputs a nonconformity score in
  ``[0, 1]`` (PCB-iForest): use :meth:`StreamModel.score`.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.types import FeatureVector, FloatArray


class Standardizer:
    """Per-channel standardization fitted on a training set of windows.

    Neural models are sensitive to input scale; this transformer is fitted
    once per :meth:`StreamModel.fit` call so models always train and
    predict in standardized space while the framework exchanges values in
    original units.
    """

    def __init__(self) -> None:
        self.mean: FloatArray | None = None
        self.std: FloatArray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean is not None

    def fit(self, windows: FloatArray) -> "Standardizer":
        """Fit channel means/stds from a ``(n, w, N)`` array of windows."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
        flat = windows.reshape(-1, windows.shape[-1])
        self.mean = flat.mean(axis=0)
        self.std = np.maximum(flat.std(axis=0), 1e-8)
        return self

    def transform(self, values: FloatArray) -> FloatArray:
        """Standardize an array whose last axis is the channel axis."""
        if self.mean is None or self.std is None:
            raise NotFittedError("Standardizer used before fit")
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def inverse(self, values: FloatArray) -> FloatArray:
        """Map standardized values back to original units."""
        if self.mean is None or self.std is None:
            raise NotFittedError("Standardizer used before fit")
        return np.asarray(values, dtype=np.float64) * self.std + self.mean


class MinMaxScaler:
    """Per-channel min-max scaling to ``[0, 1]`` fitted on windows.

    USAD bounds its adversarial game by keeping data and (sigmoid) decoder
    outputs in the unit interval; values outside the fitted range are
    clipped with a small ``margin`` of slack so mild drift does not
    saturate immediately.
    """

    def __init__(self, margin: float = 0.5) -> None:
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.margin = margin
        self.low: FloatArray | None = None
        self.span: FloatArray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.low is not None

    def fit(self, windows: FloatArray) -> "MinMaxScaler":
        """Fit channel ranges from a ``(n, w, N)`` array of windows."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
        flat = windows.reshape(-1, windows.shape[-1])
        low = flat.min(axis=0)
        high = flat.max(axis=0)
        slack = self.margin * np.maximum(high - low, 1e-8)
        self.low = low - slack
        self.span = np.maximum(high + slack - self.low, 1e-8)
        return self

    def transform(self, values: FloatArray) -> FloatArray:
        """Scale into ``[0, 1]``, clipping out-of-range values."""
        if self.low is None or self.span is None:
            raise NotFittedError("MinMaxScaler used before fit")
        scaled = (np.asarray(values, dtype=np.float64) - self.low) / self.span
        return np.clip(scaled, 0.0, 1.0)

    def inverse(self, values: FloatArray) -> FloatArray:
        """Map unit-interval values back to original units."""
        if self.low is None or self.span is None:
            raise NotFittedError("MinMaxScaler used before fit")
        return np.asarray(values, dtype=np.float64) * self.span + self.low


class StreamModel:
    """Abstract model plugged into the streaming framework."""

    #: registry name, overridden by subclasses.
    name = "base"
    #: one of "reconstruction", "forecast", "score".
    prediction_kind = "reconstruction"

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """(Re)train from scratch on ``(n, w, N)`` windows; return final loss."""
        raise NotImplementedError

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        """Update parameters on the current training set (one epoch by default).

        The default delegates to :meth:`fit`; gradient-based models override
        this to continue from the current parameters instead of restarting.
        """
        return self.fit(windows, epochs=epochs)

    def predict(self, x: FeatureVector) -> FloatArray:
        """Predict for one feature vector ``x`` of shape ``(w, N)``."""
        raise NotImplementedError

    def loss(self, windows: FloatArray) -> float:
        """Mean squared prediction error over a set of windows (diagnostics)."""
        windows = _as_windows(windows)
        errors = []
        for window in windows:
            prediction = self.predict(window)
            target = window if self.prediction_kind == "reconstruction" else window[-1]
            errors.append(float(np.mean((prediction - target) ** 2)))
        return float(np.mean(errors)) if errors else float("nan")

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} used before fit")


def _as_windows(windows: FloatArray) -> FloatArray:
    """Validate and coerce a training set to ``(n, w, N)``."""
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim == 2:  # a single window
        windows = windows[None]
    if windows.ndim != 3:
        raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
    if windows.shape[0] == 0:
        raise ValueError("training set is empty")
    return windows
