"""Base interface shared by all five ML models of the paper.

Every model consumes a *training set* of feature vectors — an array of
shape ``(n, w, N)``: ``n`` windows of ``w`` stream vectors with ``N``
channels — and produces per-window predictions whose kind determines how
the nonconformity measure compares them to the observed data:

- ``"reconstruction"`` — the model reproduces the whole window
  (autoencoder, USAD): ``predict(x)`` has shape ``(w, N)``;
- ``"forecast"`` — the model forecasts the newest stream vector ``s_t``
  from the preceding ``w - 1`` rows (Online ARIMA, VAR, N-BEATS):
  ``predict(x)`` has shape ``(N,)``;
- ``"score"`` — the model directly outputs a nonconformity score in
  ``[0, 1]`` (PCB-iForest): use :meth:`StreamModel.score`.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.types import FeatureVector, FloatArray


class Standardizer:
    """Per-channel standardization fitted on a training set of windows.

    Neural models are sensitive to input scale; this transformer is fitted
    once per :meth:`StreamModel.fit` call so models always train and
    predict in standardized space while the framework exchanges values in
    original units.
    """

    def __init__(self) -> None:
        self.mean: FloatArray | None = None
        self.std: FloatArray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean is not None

    def fit(self, windows: FloatArray) -> "Standardizer":
        """Fit channel means/stds from a ``(n, w, N)`` array of windows."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
        flat = windows.reshape(-1, windows.shape[-1])
        self.mean = flat.mean(axis=0)
        self.std = np.maximum(flat.std(axis=0), 1e-8)
        return self

    def transform(self, values: FloatArray) -> FloatArray:
        """Standardize an array whose last axis is the channel axis."""
        if self.mean is None or self.std is None:
            raise NotFittedError("Standardizer used before fit")
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def inverse(self, values: FloatArray) -> FloatArray:
        """Map standardized values back to original units."""
        if self.mean is None or self.std is None:
            raise NotFittedError("Standardizer used before fit")
        return np.asarray(values, dtype=np.float64) * self.std + self.mean


class MinMaxScaler:
    """Per-channel min-max scaling to ``[0, 1]`` fitted on windows.

    USAD bounds its adversarial game by keeping data and (sigmoid) decoder
    outputs in the unit interval; values outside the fitted range are
    clipped with a small ``margin`` of slack so mild drift does not
    saturate immediately.
    """

    def __init__(self, margin: float = 0.5) -> None:
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.margin = margin
        self.low: FloatArray | None = None
        self.span: FloatArray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.low is not None

    def fit(self, windows: FloatArray) -> "MinMaxScaler":
        """Fit channel ranges from a ``(n, w, N)`` array of windows."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
        flat = windows.reshape(-1, windows.shape[-1])
        low = flat.min(axis=0)
        high = flat.max(axis=0)
        slack = self.margin * np.maximum(high - low, 1e-8)
        self.low = low - slack
        self.span = np.maximum(high + slack - self.low, 1e-8)
        return self

    def transform(self, values: FloatArray) -> FloatArray:
        """Scale into ``[0, 1]``, clipping out-of-range values."""
        if self.low is None or self.span is None:
            raise NotFittedError("MinMaxScaler used before fit")
        scaled = (np.asarray(values, dtype=np.float64) - self.low) / self.span
        return np.clip(scaled, 0.0, 1.0)

    def inverse(self, values: FloatArray) -> FloatArray:
        """Map unit-interval values back to original units."""
        if self.low is None or self.span is None:
            raise NotFittedError("MinMaxScaler used before fit")
        return np.asarray(values, dtype=np.float64) * self.span + self.low


#: Fixed row count of every batched linear-algebra GEMM slice (see
#: :func:`tiled_forward`).  Every slice of the stacked
#: ``(T, BATCH_TILE, F)`` matmul runs the same kernel, which is what
#: makes batched inference chunk-invariant.  Tile size 1 computes each
#: row as its own ``(1, F) @ (F, H)`` product — bitwise identical to the
#: single-window ``predict`` path — so the chunk-size-1 engine pays zero
#: padding waste; large blocks trade some BLAS efficiency for that
#: (batched row-slices instead of one big GEMM), which profiling shows
#: keeps the chunked engine comfortably above its speedup bar while
#: letting chunk=1 match the legacy per-step loop.
BATCH_TILE = 1


def tiled_forward(fn: "callable", rows: FloatArray) -> FloatArray:
    """Apply a row-wise batch function in fixed-size zero-padded tiles.

    BLAS GEMM results for one row depend on the *total* row count of the
    call (different kernels / blockings for different M), so naively
    stacking a variable number of windows would make batched predictions
    depend on the chunk size.  Fixing every GEMM slice at exactly
    ``BATCH_TILE`` rows — padding the final tile with zero rows and
    discarding their outputs — makes each row's bits a function of the
    row alone, so batched inference is invariant to how the stream is
    chunked.

    The tiles are not looped over in Python: the padded rows are reshaped
    to ``(T, BATCH_TILE, d)`` and ``fn`` is applied once.  ``np.matmul``
    maps a stacked operand to per-slice 2-D GEMMs, so each
    ``(BATCH_TILE, d)`` slice produces bits identical to a standalone
    tile call regardless of ``T`` (asserted by the kernel probes in
    ``tests/test_fleet.py``).

    ``fn`` must be row-independent apart from the BLAS effect above
    (a stack of ``Linear``/activation layers, or a plain ``@``) and must
    broadcast over a leading tile axis; per-tile 1-D or 2-D outputs are
    supported.  The result may be a view into a larger buffer — callers
    must not mutate it in place.
    """
    rows = np.asarray(rows, dtype=np.float64)
    n, d = rows.shape
    n_tiles = -(-n // BATCH_TILE)
    if n % BATCH_TILE:
        padded = np.zeros((n_tiles * BATCH_TILE, d), dtype=np.float64)
        padded[:n] = rows
    else:
        padded = rows
    out = fn(padded.reshape(n_tiles, BATCH_TILE, d))
    return out.reshape((n_tiles * BATCH_TILE,) + out.shape[2:])[:n]


def fleet_tiled_forward(fn: "callable", rows_list: list) -> list:
    """Fused :func:`tiled_forward` over K sessions' row blocks.

    Stacks each session's zero-padded ``(T_k, BATCH_TILE, d)`` tiles into
    one ``(K, T_max, BATCH_TILE, d)`` array (short sessions padded with
    all-zero tiles) and applies ``fn`` once.  ``fn`` sees the session
    axis first; a :class:`~repro.nn.arena.ParameterArena` mirror maps
    slice ``k`` to session ``k``'s parameters.  Because every GEMM slice
    keeps the exact ``(BATCH_TILE, d)`` geometry of the per-session path,
    the returned per-session outputs are bitwise identical to K separate
    :func:`tiled_forward` calls.
    """
    k_sessions = len(rows_list)
    d = rows_list[0].shape[1]
    tiles = [-(-len(rows) // BATCH_TILE) for rows in rows_list]
    t_max = max(tiles)
    stack = np.zeros((k_sessions, t_max * BATCH_TILE, d), dtype=np.float64)
    for k, rows in enumerate(rows_list):
        stack[k, : len(rows)] = rows
    out = fn(stack.reshape(k_sessions, t_max, BATCH_TILE, d))
    flat = out.reshape((k_sessions, t_max * BATCH_TILE) + out.shape[3:])
    return [flat[k, : len(rows)] for k, rows in enumerate(rows_list)]


class StreamModel:
    """Abstract model plugged into the streaming framework."""

    #: registry name, overridden by subclasses.
    name = "base"
    #: one of "reconstruction", "forecast", "score".
    prediction_kind = "reconstruction"

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """(Re)train from scratch on ``(n, w, N)`` windows; return final loss."""
        raise NotImplementedError

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        """Update parameters on the current training set (one epoch by default).

        The default delegates to :meth:`fit`; gradient-based models override
        this to continue from the current parameters instead of restarting.
        """
        return self.fit(windows, epochs=epochs)

    def predict(self, x: FeatureVector) -> FloatArray:
        """Predict for one feature vector ``x`` of shape ``(w, N)``."""
        raise NotImplementedError

    def predict_batch(self, X: FloatArray) -> FloatArray:
        """Predict for a block of windows ``(B, w, N)``; stacked results.

        The default applies :meth:`predict` row by row; vectorized models
        override it.  Implementations must be *chunk-invariant*: a
        window's prediction bits may not depend on how many other windows
        share the call (see :func:`tiled_forward`), because the block
        engine relies on ``predict_batch`` giving the same answers at
        every chunk size.
        """
        X = _as_windows(X)
        return np.stack([self.predict(x) for x in X])

    def score_batch(self, X: FloatArray) -> FloatArray:
        """Score a block of windows ``(B, w, N)``; shape ``(B,)`` floats.

        Only meaningful for score-kind models (which define ``score``);
        the default applies it row by row, preserving any scoring side
        effects in stream order.
        """
        X = _as_windows(X)
        return np.asarray([self.score(x) for x in X], dtype=np.float64)

    def loss(self, windows: FloatArray) -> float:
        """Mean squared prediction error over a set of windows (diagnostics)."""
        windows = _as_windows(windows)
        predictions = self.predict_batch(windows)
        if self.prediction_kind == "reconstruction":
            errors = np.mean((predictions - windows) ** 2, axis=(1, 2))
        else:
            errors = np.mean((predictions - windows[:, -1]) ** 2, axis=1)
        return float(np.mean(errors))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} used before fit")

    # ------------------------------------------------------------------
    # fleet (cross-session fused inference) hooks
    # ------------------------------------------------------------------
    def fleet_modules(self) -> tuple | None:
        """Module roots to mirror for cross-session fused inference.

        Returns a tuple of :class:`repro.nn.Module` trees whose stacked
        parameters drive :meth:`fleet_predict_batch`, or ``None`` when
        the model has no fused path (the fleet engine then falls back to
        per-session ``step_chunk``).  Modules shared between roots (USAD
        weight sharing via ``shared_copy``) may appear in several trees;
        the arena maps them to one stacked tensor.
        """
        return None

    @classmethod
    def fleet_predict_batch(
        cls, models: list, mirror: tuple, windows_list: list
    ) -> list:
        """Fused :meth:`predict_batch` over K same-spec sessions.

        ``mirror`` is the arena mirror of :meth:`fleet_modules` (stacked
        ``(K, in, out)`` parameters); ``windows_list`` holds each
        session's ``(B_k, w, N)`` block.  Returns per-session prediction
        arrays bitwise identical to K separate ``predict_batch`` calls.
        """
        raise NotImplementedError

    @classmethod
    def fleet_finetune(
        cls, models: list, windows_list: list, epochs: int
    ) -> tuple[list[float], list[float]] | None:
        """Fused fine-tune of K same-spec sessions on their train sets.

        One session-axis training loop replaces K sequential
        ``model.loss`` + ``model.finetune`` calls: the implementation must
        leave every model (weights, gradients, optimizer state, RNG,
        ``_fitted``) bitwise identical to the per-session sequence and
        return ``(loss_before, loss_after)`` lists matching the
        per-session return values bit for bit.  Implementations validate
        *before* mutating anything and return ``None`` when the group is
        not fusable (the caller then fine-tunes per session); the default
        has no fused trainer at all.
        """
        return None

    @classmethod
    def _fleet_loss(cls, models: list, mirror: tuple, windows_list: list) -> list:
        """Per-session :meth:`loss` from one fused prediction pass."""
        windows_list = [_as_windows(w) for w in windows_list]
        predictions = cls.fleet_predict_batch(models, mirror, windows_list)
        losses = []
        for model, windows, preds in zip(models, windows_list, predictions):
            if model.prediction_kind == "reconstruction":
                errors = np.mean((preds - windows) ** 2, axis=(1, 2))
            else:
                errors = np.mean((preds - windows[:, -1]) ** 2, axis=1)
            losses.append(float(np.mean(errors)))
        return losses


def _as_windows(windows: FloatArray) -> FloatArray:
    """Validate and coerce a training set to ``(n, w, N)``."""
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim == 2:  # a single window
        windows = windows[None]
    if windows.ndim != 3:
        raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
    if windows.shape[0] == 0:
        raise ValueError("training set is empty")
    return windows
