"""Base interface shared by all five ML models of the paper.

Every model consumes a *training set* of feature vectors — an array of
shape ``(n, w, N)``: ``n`` windows of ``w`` stream vectors with ``N``
channels — and produces per-window predictions whose kind determines how
the nonconformity measure compares them to the observed data:

- ``"reconstruction"`` — the model reproduces the whole window
  (autoencoder, USAD): ``predict(x)`` has shape ``(w, N)``;
- ``"forecast"`` — the model forecasts the newest stream vector ``s_t``
  from the preceding ``w - 1`` rows (Online ARIMA, VAR, N-BEATS):
  ``predict(x)`` has shape ``(N,)``;
- ``"score"`` — the model directly outputs a nonconformity score in
  ``[0, 1]`` (PCB-iForest): use :meth:`StreamModel.score`.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.types import FeatureVector, FloatArray


class Standardizer:
    """Per-channel standardization fitted on a training set of windows.

    Neural models are sensitive to input scale; this transformer is fitted
    once per :meth:`StreamModel.fit` call so models always train and
    predict in standardized space while the framework exchanges values in
    original units.
    """

    def __init__(self) -> None:
        self.mean: FloatArray | None = None
        self.std: FloatArray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean is not None

    def fit(self, windows: FloatArray) -> "Standardizer":
        """Fit channel means/stds from a ``(n, w, N)`` array of windows."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
        flat = windows.reshape(-1, windows.shape[-1])
        self.mean = flat.mean(axis=0)
        self.std = np.maximum(flat.std(axis=0), 1e-8)
        return self

    def transform(self, values: FloatArray) -> FloatArray:
        """Standardize an array whose last axis is the channel axis."""
        if self.mean is None or self.std is None:
            raise NotFittedError("Standardizer used before fit")
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def inverse(self, values: FloatArray) -> FloatArray:
        """Map standardized values back to original units."""
        if self.mean is None or self.std is None:
            raise NotFittedError("Standardizer used before fit")
        return np.asarray(values, dtype=np.float64) * self.std + self.mean


class MinMaxScaler:
    """Per-channel min-max scaling to ``[0, 1]`` fitted on windows.

    USAD bounds its adversarial game by keeping data and (sigmoid) decoder
    outputs in the unit interval; values outside the fitted range are
    clipped with a small ``margin`` of slack so mild drift does not
    saturate immediately.
    """

    def __init__(self, margin: float = 0.5) -> None:
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.margin = margin
        self.low: FloatArray | None = None
        self.span: FloatArray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.low is not None

    def fit(self, windows: FloatArray) -> "MinMaxScaler":
        """Fit channel ranges from a ``(n, w, N)`` array of windows."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
        flat = windows.reshape(-1, windows.shape[-1])
        low = flat.min(axis=0)
        high = flat.max(axis=0)
        slack = self.margin * np.maximum(high - low, 1e-8)
        self.low = low - slack
        self.span = np.maximum(high + slack - self.low, 1e-8)
        return self

    def transform(self, values: FloatArray) -> FloatArray:
        """Scale into ``[0, 1]``, clipping out-of-range values."""
        if self.low is None or self.span is None:
            raise NotFittedError("MinMaxScaler used before fit")
        scaled = (np.asarray(values, dtype=np.float64) - self.low) / self.span
        return np.clip(scaled, 0.0, 1.0)

    def inverse(self, values: FloatArray) -> FloatArray:
        """Map unit-interval values back to original units."""
        if self.low is None or self.span is None:
            raise NotFittedError("MinMaxScaler used before fit")
        return np.asarray(values, dtype=np.float64) * self.span + self.low


#: Fixed row count of every batched linear-algebra call (see
#: :func:`tiled_forward`).  Chosen to match the models' training batch
#: size; large enough to amortize BLAS call overhead, small enough that
#: padding a single-row block stays cheap.
BATCH_TILE = 32


def tiled_forward(fn: "callable", rows: FloatArray) -> FloatArray:
    """Apply a row-wise batch function in fixed-size zero-padded tiles.

    BLAS GEMM results for one row depend on the *total* row count of the
    call (different kernels / blockings for different M), so naively
    stacking a variable number of windows would make batched predictions
    depend on the chunk size.  Running every call with exactly
    ``BATCH_TILE`` rows — padding the final tile with zero rows and
    discarding their outputs — makes each row's bits a function of the
    row alone, so batched inference is invariant to how the stream is
    chunked.

    ``fn`` must be row-independent apart from the BLAS effect above
    (a stack of ``Linear``/activation layers, or a plain ``@``), and must
    accept a ``(BATCH_TILE, d)`` array; 1-D or 2-D outputs are supported.
    """
    rows = np.asarray(rows, dtype=np.float64)
    n = rows.shape[0]
    pieces = []
    for start in range(0, n, BATCH_TILE):
        tile = rows[start : start + BATCH_TILE]
        real = tile.shape[0]
        if real < BATCH_TILE:
            tile = np.concatenate(
                [tile, np.zeros((BATCH_TILE - real, rows.shape[1]))]
            )
        pieces.append(fn(tile)[:real])
    return np.concatenate(pieces)


class StreamModel:
    """Abstract model plugged into the streaming framework."""

    #: registry name, overridden by subclasses.
    name = "base"
    #: one of "reconstruction", "forecast", "score".
    prediction_kind = "reconstruction"

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, windows: FloatArray, epochs: int = 1) -> float:
        """(Re)train from scratch on ``(n, w, N)`` windows; return final loss."""
        raise NotImplementedError

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        """Update parameters on the current training set (one epoch by default).

        The default delegates to :meth:`fit`; gradient-based models override
        this to continue from the current parameters instead of restarting.
        """
        return self.fit(windows, epochs=epochs)

    def predict(self, x: FeatureVector) -> FloatArray:
        """Predict for one feature vector ``x`` of shape ``(w, N)``."""
        raise NotImplementedError

    def predict_batch(self, X: FloatArray) -> FloatArray:
        """Predict for a block of windows ``(B, w, N)``; stacked results.

        The default applies :meth:`predict` row by row; vectorized models
        override it.  Implementations must be *chunk-invariant*: a
        window's prediction bits may not depend on how many other windows
        share the call (see :func:`tiled_forward`), because the block
        engine relies on ``predict_batch`` giving the same answers at
        every chunk size.
        """
        X = _as_windows(X)
        return np.stack([self.predict(x) for x in X])

    def score_batch(self, X: FloatArray) -> FloatArray:
        """Score a block of windows ``(B, w, N)``; shape ``(B,)`` floats.

        Only meaningful for score-kind models (which define ``score``);
        the default applies it row by row, preserving any scoring side
        effects in stream order.
        """
        X = _as_windows(X)
        return np.asarray([self.score(x) for x in X], dtype=np.float64)

    def loss(self, windows: FloatArray) -> float:
        """Mean squared prediction error over a set of windows (diagnostics)."""
        windows = _as_windows(windows)
        predictions = self.predict_batch(windows)
        if self.prediction_kind == "reconstruction":
            errors = np.mean((predictions - windows) ** 2, axis=(1, 2))
        else:
            errors = np.mean((predictions - windows[:, -1]) ** 2, axis=1)
        return float(np.mean(errors))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} used before fit")


def _as_windows(windows: FloatArray) -> FloatArray:
    """Validate and coerce a training set to ``(n, w, N)``."""
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim == 2:  # a single window
        windows = windows[None]
    if windows.ndim != 3:
        raise ValueError(f"expected (n, w, N) windows, got shape {windows.shape}")
    if windows.shape[0] == 0:
        raise ValueError("training set is empty")
    return windows
