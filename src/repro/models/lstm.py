"""LSTM forecaster with manual backpropagation through time.

Belacel et al. (related work §II) build their streaming detector on an
LSTM encoder-decoder; Munir et al. compare LSTM forecasters against
statistical baselines.  This extension implements the standard LSTM cell
from scratch on the numpy substrate:

    i_t = sigmoid(x_t W_i + h_{t-1} U_i + b_i)     input gate
    f_t = sigmoid(x_t W_f + h_{t-1} U_f + b_f)     forget gate
    o_t = sigmoid(x_t W_o + h_{t-1} U_o + b_o)     output gate
    g_t = tanh   (x_t W_g + h_{t-1} U_g + b_g)     candidate
    c_t = f_t * c_{t-1} + i_t * g_t                cell state
    h_t = o_t * tanh(c_t)                          hidden state

unrolled over the window's first ``w - 1`` stream vectors, with a linear
read-out forecasting the final one.  The four gates are fused into single
``(N, 4H)`` / ``(H, 4H)`` matrices so each step is two matmuls.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro import nn
from repro.models.base import Standardizer, StreamModel, _as_windows


def _sigmoid(x: FloatArray) -> FloatArray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LSTMForecaster(StreamModel):
    """Single-layer LSTM forecasting the newest stream vector.

    Args:
        window: data representation length ``w`` (consumes ``w - 1`` rows).
        n_channels: stream channel count ``N``.
        hidden: LSTM state width ``H``.
        lr: Adam learning rate.
        epochs: default epoch count for a full :meth:`fit`.
        batch_size: minibatch size.
        clip: per-parameter gradient-norm clip.
        seed: RNG seed.
    """

    name = "lstm"
    prediction_kind = "forecast"

    def __init__(
        self,
        window: int,
        n_channels: int,
        hidden: int = 32,
        lr: float = 5e-3,
        epochs: int = 30,
        batch_size: int = 32,
        clip: float = 5.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if n_channels < 1 or hidden < 1:
            raise ConfigurationError("n_channels and hidden must be >= 1")
        self.window = window
        self.n_channels = n_channels
        self.hidden = hidden
        self.default_epochs = epochs
        self.batch_size = batch_size
        self.clip = clip
        self._rng = np.random.default_rng(seed)

        h = hidden
        scale_x = 1.0 / np.sqrt(n_channels)
        scale_h = 1.0 / np.sqrt(h)
        # Gate order inside the fused matrices: [input, forget, output, cand].
        self.w = nn.Parameter(
            self._rng.normal(scale=scale_x, size=(n_channels, 4 * h)), "lstm.W"
        )
        self.u = nn.Parameter(
            self._rng.normal(scale=scale_h, size=(h, 4 * h)) * 0.5, "lstm.U"
        )
        bias = np.zeros(4 * h)
        bias[h : 2 * h] = 1.0  # forget-gate bias trick: remember by default
        self.b = nn.Parameter(bias, "lstm.b")
        self.w_out = nn.Parameter(
            self._rng.normal(scale=scale_h, size=(h, n_channels)), "lstm.Wout"
        )
        self.b_out = nn.Parameter(np.zeros(n_channels), "lstm.bout")
        self._parameters = [self.w, self.u, self.b, self.w_out, self.b_out]
        self._optimizer = nn.Adam(self._parameters, lr=lr)
        self.scaler = Standardizer()

    def parameters(self):
        yield from self._parameters

    # ------------------------------------------------------------------
    def _forward(self, inputs: FloatArray):
        """Unroll over ``(B, T, N)``; return forecast and the BPTT cache."""
        batch, steps, _ = inputs.shape
        h = self.hidden
        hidden = np.zeros((batch, h))
        cell = np.zeros((batch, h))
        cache = []
        for t in range(steps):
            gates = inputs[:, t, :] @ self.w.value + hidden @ self.u.value + self.b.value
            i_gate = _sigmoid(gates[:, :h])
            f_gate = _sigmoid(gates[:, h : 2 * h])
            o_gate = _sigmoid(gates[:, 2 * h : 3 * h])
            g_cand = np.tanh(gates[:, 3 * h :])
            new_cell = f_gate * cell + i_gate * g_cand
            tanh_cell = np.tanh(new_cell)
            new_hidden = o_gate * tanh_cell
            cache.append(
                (hidden, cell, i_gate, f_gate, o_gate, g_cand, tanh_cell)
            )
            hidden, cell = new_hidden, new_cell
        forecast = hidden @ self.w_out.value + self.b_out.value
        return forecast, (inputs, cache, hidden)

    def _backward(self, grad_forecast: FloatArray, forward_state) -> None:
        inputs, cache, last_hidden = forward_state
        h = self.hidden
        self.w_out.grad += last_hidden.T @ grad_forecast
        self.b_out.grad += grad_forecast.sum(axis=0)
        grad_hidden = grad_forecast @ self.w_out.value.T
        grad_cell = np.zeros_like(grad_hidden)
        for t in range(inputs.shape[1] - 1, -1, -1):
            prev_hidden, prev_cell, i_gate, f_gate, o_gate, g_cand, tanh_cell = cache[t]
            grad_o = grad_hidden * tanh_cell
            grad_cell = grad_cell + grad_hidden * o_gate * (1.0 - tanh_cell**2)
            grad_i = grad_cell * g_cand
            grad_f = grad_cell * prev_cell
            grad_g = grad_cell * i_gate
            # back through the gate nonlinearities
            d_gates = np.concatenate(
                [
                    grad_i * i_gate * (1.0 - i_gate),
                    grad_f * f_gate * (1.0 - f_gate),
                    grad_o * o_gate * (1.0 - o_gate),
                    grad_g * (1.0 - g_cand**2),
                ],
                axis=1,
            )
            self.w.grad += inputs[:, t, :].T @ d_gates
            self.u.grad += prev_hidden.T @ d_gates
            self.b.grad += d_gates.sum(axis=0)
            grad_hidden = d_gates @ self.u.value.T
            grad_cell = grad_cell * f_gate

    def _clip_gradients(self) -> None:
        for param in self._parameters:
            norm = float(np.linalg.norm(param.grad))
            if norm > self.clip:
                param.grad *= self.clip / norm

    # ------------------------------------------------------------------
    def fit(self, windows: FloatArray, epochs: int | None = None) -> float:
        windows = self._check(windows)
        self.scaler.fit(windows)
        return self._train(windows, epochs or self.default_epochs)

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        windows = self._check(windows)
        if not self.scaler.is_fitted:
            self.scaler.fit(windows)
        return self._train(windows, epochs)

    def _train(self, windows: FloatArray, epochs: int) -> float:
        scaled = self.scaler.transform(windows)
        inputs = scaled[:, :-1, :]
        targets = scaled[:, -1, :]
        starts = range(0, len(inputs), self.batch_size)
        losses = np.empty(len(starts))
        last_loss = float("nan")
        for _ in range(max(epochs, 1)):
            order = self._rng.permutation(len(inputs))
            for b, start in enumerate(starts):
                idx = order[start : start + self.batch_size]
                batch_in, batch_target = inputs[idx], targets[idx]
                for param in self._parameters:
                    param.zero_grad()
                forecast, state = self._forward(batch_in)
                losses[b] = nn.mse_loss(forecast, batch_target)
                self._backward(nn.mse_loss_grad(forecast, batch_target), state)
                self._clip_gradients()
                self._optimizer.step()
            last_loss = float(np.mean(losses))
        self._fitted = True
        return last_loss

    def predict(self, x: FeatureVector) -> FloatArray:
        """Forecast ``s_t`` from the window's first ``w - 1`` rows."""
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected window shape {(self.window, self.n_channels)}, got {x.shape}"
            )
        scaled = self.scaler.transform(x)
        forecast, _ = self._forward(scaled[None, :-1, :])
        return self.scaler.inverse(forecast[0])

    def _check(self, windows: FloatArray) -> FloatArray:
        windows = _as_windows(windows)
        if windows.shape[1:] != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected windows of shape (*, {self.window}, {self.n_channels}), "
                f"got {windows.shape}"
            )
        return windows
