"""N-BEATS: neural basis expansion for time-series forecasting (Oreshkin et al.).

Each block maps the current residual input through a fully-connected stack
to two coefficient vectors ``theta_b`` / ``theta_f`` that are expanded over
backcast/forecast basis vectors.  Blocks are wired with double residual
connections: block ``l+1`` consumes ``u_l - backcast_l`` while the final
forecast is the sum of all block forecasts.

In the paper's streaming scenario the model forecasts ``s_t`` (one stream
vector, ``N`` values) from the preceding ``w - 1`` stream vectors of the
data representation.

Three basis families are provided:

- ``"generic"`` — learnable linear expansion (the default, as in the
  generic N-BEATS configuration);
- ``"trend"`` — fixed low-degree polynomial basis;
- ``"seasonality"`` — fixed Fourier basis.

The fixed bases make the coefficients interpretable as trend/seasonality
strengths (Section IV-C's interpretability remark).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.types import FeatureVector, FloatArray
from repro import nn
from repro.models.base import (
    Standardizer,
    StreamModel,
    _as_windows,
    fleet_tiled_forward,
    tiled_forward,
)


def trend_basis(theta_per_channel: int, length: int, n_channels: int) -> FloatArray:
    """Polynomial basis matrix of shape ``(theta_per_channel * N, length * N)``.

    Row ``i`` of the per-channel block evaluates ``(t / length)^i`` over the
    ``length`` output positions; channels are laid out block-diagonally so a
    single matmul expands all of them.
    """
    grid = np.arange(length, dtype=np.float64) / max(length, 1)
    per_channel = np.stack([grid**i for i in range(theta_per_channel)])
    return np.kron(per_channel, np.eye(n_channels)).reshape(
        theta_per_channel * n_channels, length * n_channels
    )


def seasonality_basis(
    harmonics: int, length: int, n_channels: int
) -> FloatArray:
    """Fourier basis with ``harmonics`` cos/sin pairs plus a constant term."""
    grid = np.arange(length, dtype=np.float64) / max(length, 1)
    rows = [np.ones_like(grid)]
    for harmonic in range(1, harmonics + 1):
        rows.append(np.cos(2 * np.pi * harmonic * grid))
        rows.append(np.sin(2 * np.pi * harmonic * grid))
    per_channel = np.stack(rows)
    return np.kron(per_channel, np.eye(n_channels)).reshape(
        per_channel.shape[0] * n_channels, length * n_channels
    )


class _FixedBasis(nn.Module):
    """Expansion over a fixed matrix ``V``: ``out = theta @ V``."""

    def __init__(self, matrix: FloatArray) -> None:
        self.matrix = np.asarray(matrix, dtype=np.float64)

    @property
    def theta_dim(self) -> int:
        return int(self.matrix.shape[0])

    def forward(self, theta: FloatArray) -> FloatArray:
        return theta @ self.matrix

    def backward(self, grad: FloatArray) -> FloatArray:
        return grad @ self.matrix.T


class _GenericBasis(nn.Module):
    """Learnable expansion: a bias-free linear layer over theta."""

    def __init__(self, theta_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.linear = nn.Linear(theta_dim, out_dim, rng)
        self.linear.bias.value[...] = 0.0

    @property
    def theta_dim(self) -> int:
        return int(self.linear.in_features)

    def forward(self, theta: FloatArray) -> FloatArray:
        return self.linear(theta)

    def backward(self, grad: FloatArray) -> FloatArray:
        return self.linear.backward(grad)


def _nbeats_forward(
    blocks: list, inputs: FloatArray, forecast_dim: int
) -> FloatArray:
    """Residual block wiring shared by per-session and fleet forwards."""
    residual = inputs
    forecast = np.zeros(inputs.shape[:-1] + (forecast_dim,))
    for block in blocks:
        backcast, block_forecast = block.forward(residual)
        residual = residual - backcast
        forecast = forecast + block_forecast
    return forecast


def _nbeats_backward(
    blocks: list, grad_forecast: FloatArray, backcast_dim: int
) -> None:
    """Backprop through the residual wiring, shape-agnostic over leading axes.

    With ``u_{l+1} = u_l - b_l`` and ``y = sum_l f_l``:
    ``dL/db_l = -dL/du_{l+1}`` and ``dL/du_l = dL/du_{l+1} +
    block_backward``.  The gradient w.r.t. the residual after the last
    block is zero because nothing consumes it.
    """
    grad_residual = np.zeros(grad_forecast.shape[:-1] + (backcast_dim,))
    for block in reversed(blocks):
        grad_input = block.backward_both(-grad_residual, grad_forecast)
        grad_residual = grad_residual + grad_input


class NBeatsBlock(nn.Module):
    """One N-BEATS block producing a backcast and a forecast."""

    def __init__(
        self,
        input_dim: int,
        hidden: int,
        backcast_basis: nn.Module,
        forecast_basis: nn.Module,
        rng: np.random.Generator,
    ) -> None:
        self.fc = nn.Sequential(
            nn.Linear(input_dim, hidden, rng, init="he"),
            nn.ReLU(),
            nn.Linear(hidden, hidden, rng, init="he"),
            nn.ReLU(),
        )
        self.theta_b_layer = nn.Linear(hidden, backcast_basis.theta_dim, rng)
        self.theta_f_layer = nn.Linear(hidden, forecast_basis.theta_dim, rng)
        self.backcast_basis = backcast_basis
        self.forecast_basis = forecast_basis

    def forward(self, u: FloatArray) -> tuple[FloatArray, FloatArray]:
        hidden = self.fc(u)
        theta_b = self.theta_b_layer(hidden)
        theta_f = self.theta_f_layer(hidden)
        backcast = self.backcast_basis(theta_b)
        forecast = self.forecast_basis(theta_f)
        return backcast, forecast

    def backward_both(
        self, grad_backcast: FloatArray, grad_forecast: FloatArray
    ) -> FloatArray:
        """Backprop given gradients w.r.t. both outputs; returns ``dL/du``."""
        grad_theta_b = self.backcast_basis.backward(grad_backcast)
        grad_theta_f = self.forecast_basis.backward(grad_forecast)
        grad_hidden = self.theta_b_layer.backward(grad_theta_b)
        grad_hidden = grad_hidden + self.theta_f_layer.backward(grad_theta_f)
        return self.fc.backward(grad_hidden)


class NBeats(StreamModel):
    """N-BEATS forecaster for the streaming framework.

    Args:
        window: data representation length ``w``; the model consumes the
            first ``w - 1`` rows and forecasts the final one.
        n_channels: stream channel count ``N``.
        stack_types: basis family per block, e.g. ``("generic", "generic")``
            or ``("trend", "seasonality")``.
        hidden: width of each block's FC stack.
        theta_dim: coefficient count per block for generic bases; trend uses
            ``degree + 1 = 3`` and seasonality ``2 * harmonics + 1``
            per-channel coefficients instead.
        lr: Adam learning rate.
        epochs: default epoch count for a full :meth:`fit`.
        batch_size: minibatch size.
        seed: RNG seed.
    """

    name = "nbeats"
    prediction_kind = "forecast"

    def __init__(
        self,
        window: int,
        n_channels: int,
        stack_types: tuple[str, ...] = ("generic", "generic"),
        hidden: int = 32,
        theta_dim: int = 8,
        trend_degree: int = 2,
        harmonics: int = 3,
        lr: float = 1e-3,
        epochs: int = 20,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if not stack_types:
            raise ConfigurationError("need at least one block")
        self.window = window
        self.n_channels = n_channels
        self.backcast_dim = (window - 1) * n_channels
        self.forecast_dim = n_channels
        self.default_epochs = epochs
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)

        self.blocks: list[NBeatsBlock] = []
        for kind in stack_types:
            back, fore = self._make_bases(kind, theta_dim, trend_degree, harmonics)
            self.blocks.append(
                NBeatsBlock(self.backcast_dim, hidden, back, fore, self._rng)
            )
        parameters = [p for block in self.blocks for p in block.parameters()]
        self._optimizer = nn.Adam(parameters, lr=lr)
        self.scaler = Standardizer()

    def _make_bases(
        self, kind: str, theta_dim: int, trend_degree: int, harmonics: int
    ) -> tuple[nn.Module, nn.Module]:
        backcast_len = self.window - 1
        if kind == "generic":
            return (
                _GenericBasis(theta_dim, self.backcast_dim, self._rng),
                _GenericBasis(theta_dim, self.forecast_dim, self._rng),
            )
        if kind == "trend":
            return (
                _FixedBasis(trend_basis(trend_degree + 1, backcast_len, self.n_channels)),
                _FixedBasis(trend_basis(trend_degree + 1, 1, self.n_channels)),
            )
        if kind == "seasonality":
            return (
                _FixedBasis(
                    seasonality_basis(harmonics, backcast_len, self.n_channels)
                ),
                _FixedBasis(seasonality_basis(harmonics, 1, self.n_channels)),
            )
        raise ConfigurationError(
            f"unknown stack type {kind!r}; expected generic/trend/seasonality"
        )

    def parameters(self):
        for block in self.blocks:
            yield from block.parameters()

    # ------------------------------------------------------------------
    def _forward(self, inputs: FloatArray) -> FloatArray:
        """Residually-wired forward pass; returns the summed forecast.

        Shape-agnostic over leading axes so the same code serves plain
        ``(B, F)`` batches, ``(T, tile, F)`` stacked tiles and
        ``(K, T, tile, F)`` fleet stacks.
        """
        return _nbeats_forward(self.blocks, inputs, self.forecast_dim)

    def _backward(self, grad_forecast: FloatArray) -> None:
        """Backprop through the residual wiring (see :func:`_nbeats_backward`)."""
        _nbeats_backward(self.blocks, grad_forecast, self.backcast_dim)

    # ------------------------------------------------------------------
    def fit(self, windows: FloatArray, epochs: int | None = None) -> float:
        windows = self._check(windows)
        self.scaler.fit(windows)
        return self._train(windows, epochs or self.default_epochs)

    def finetune(self, windows: FloatArray, epochs: int = 1) -> float:
        windows = self._check(windows)
        if not self.scaler.is_fitted:
            self.scaler.fit(windows)
        return self._train(windows, epochs)

    def _train(self, windows: FloatArray, epochs: int) -> float:
        scaled = self.scaler.transform(windows)
        inputs = scaled[:, :-1, :].reshape(len(scaled), -1)
        targets = scaled[:, -1, :]
        starts = range(0, len(inputs), self.batch_size)
        losses = np.empty(len(starts))
        last_loss = float("nan")
        for _ in range(max(epochs, 1)):
            order = self._rng.permutation(len(inputs))
            for b, start in enumerate(starts):
                idx = order[start : start + self.batch_size]
                batch_in, batch_target = inputs[idx], targets[idx]
                for block in self.blocks:
                    block.zero_grad()
                forecast = self._forward(batch_in)
                losses[b] = nn.mse_loss(forecast, batch_target)
                self._backward(nn.mse_loss_grad(forecast, batch_target))
                self._optimizer.step()
            last_loss = float(np.mean(losses))
        self._fitted = True
        return last_loss

    def predict(self, x: FeatureVector) -> FloatArray:
        """Forecast ``s_t`` from the window's first ``w - 1`` rows."""
        self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected window shape {(self.window, self.n_channels)}, got {x.shape}"
            )
        scaled = self.scaler.transform(x)
        inputs = scaled[:-1].reshape(1, -1)
        forecast = self._forward(inputs)[0]
        return self.scaler.inverse(forecast)

    def predict_batch(self, X: FloatArray) -> FloatArray:
        """Forecast for a ``(B, w, N)`` block in one tiled residual pass."""
        self._require_fitted()
        X = self._check(X)
        scaled = self.scaler.transform(X)
        inputs = scaled[:, :-1, :].reshape(len(X), -1)
        forecasts = tiled_forward(self._forward, inputs)
        return self.scaler.inverse(forecasts)

    def _check(self, windows: FloatArray) -> FloatArray:
        windows = _as_windows(windows)
        if windows.shape[1:] != (self.window, self.n_channels):
            raise ConfigurationError(
                f"expected windows of shape (*, {self.window}, {self.n_channels}), "
                f"got {windows.shape}"
            )
        return windows

    # ------------------------------------------------------------------
    def fleet_modules(self) -> tuple:
        return tuple(self.blocks)

    @classmethod
    def fleet_predict_batch(
        cls, models: list, mirror: tuple, windows_list: list
    ) -> list:
        forecast_dim = models[0].forecast_dim
        inputs_list = [
            model.scaler.transform(X)[:, :-1, :].reshape(len(X), model.backcast_dim)
            for model, X in zip(models, windows_list)
        ]
        forecasts = fleet_tiled_forward(
            lambda stacked: _nbeats_forward(list(mirror), stacked, forecast_dim),
            inputs_list,
        )
        return [
            model.scaler.inverse(rows)
            for model, rows in zip(models, forecasts)
        ]

    @classmethod
    def fleet_finetune(
        cls, models: list, windows_list: list, epochs: int
    ) -> tuple[list[float], list[float]] | None:
        """Session-axis fused :meth:`finetune` of K N-BEATS models.

        The residual forward/backward wiring is shape-agnostic over
        leading axes, so the per-session minibatch loop runs unchanged on
        ``(K, B, F)`` stacks through the arena mirror blocks; fixed basis
        matrices are shared 2-D constants that broadcast over the session
        axis.
        """
        first = models[0]
        n = len(windows_list[0])
        if (
            n == 0
            or any(len(w) != n for w in windows_list)
            or any(not m.scaler.is_fitted for m in models)
            or any(m.batch_size != first.batch_size for m in models)
            or any(
                m.forecast_dim != first.forecast_dim
                or m.backcast_dim != first.backcast_dim
                for m in models
            )
        ):
            return None
        try:
            windows_list = [m._check(w) for m, w in zip(models, windows_list)]
            arena = nn.ParameterArena(
                [m.fleet_modules() for m in models], attach=False
            )
            lane = nn.AdamLane([m._optimizer for m in models], arena)
        except (ConfigurationError, ValueError, KeyError):
            return None
        loss_before = cls._fleet_loss(models, arena.mirror, windows_list)

        blocks = list(arena.mirror)
        scaled = [m.scaler.transform(w) for m, w in zip(models, windows_list)]
        inputs = np.stack([s[:, :-1, :].reshape(n, -1) for s in scaled])
        targets = np.stack([s[:, -1, :] for s in scaled])
        rows = np.arange(len(models))[:, None]
        starts = range(0, n, first.batch_size)
        losses = np.empty((len(models), len(starts)))
        for _ in range(max(epochs, 1)):
            orders = np.stack([m._rng.permutation(n) for m in models])
            for b, start in enumerate(starts):
                idx = orders[:, start : start + first.batch_size]
                batch_in, batch_target = inputs[rows, idx], targets[rows, idx]
                arena.zero_grad()
                forecast = _nbeats_forward(blocks, batch_in, first.forecast_dim)
                for k in range(len(models)):
                    losses[k, b] = nn.mse_loss(forecast[k], batch_target[k])
                _nbeats_backward(
                    blocks,
                    nn.fleet_mse_loss_grad(forecast, batch_target),
                    first.backcast_dim,
                )
                lane.step()
            last = losses.mean(axis=1)
        arena.writeback()
        lane.writeback()
        for model in models:
            model._fitted = True
        return loss_before, [float(x) for x in last]
