"""Evaluation metrics: range-based PR, PR-AUC, NAB and VUS."""

from repro.metrics.latency import LatencyResult, detection_latency
from repro.metrics.nab import (
    PROFILES,
    REWARD_LOW_FN,
    REWARD_LOW_FP,
    STANDARD,
    NABProfile,
    NABResult,
    detection_reward,
    nab_score,
    nab_score_profile,
    scaled_sigmoid,
)
from repro.metrics.pointwise import (
    Confusion,
    candidate_thresholds,
    point_adjusted_confusion,
    point_adjusted_predictions,
    pointwise_confusion,
)
from repro.metrics.ranged import (
    RangeConfusion,
    range_confusion,
    range_pr_auc,
    range_pr_curve,
    range_precision_recall,
    step_pr_auc,
)
from repro.metrics.vus import VUSResult, buffered_label_weights, vus

__all__ = [
    "Confusion",
    "LatencyResult",
    "NABProfile",
    "NABResult",
    "PROFILES",
    "REWARD_LOW_FN",
    "REWARD_LOW_FP",
    "STANDARD",
    "nab_score_profile",
    "RangeConfusion",
    "VUSResult",
    "buffered_label_weights",
    "candidate_thresholds",
    "detection_latency",
    "detection_reward",
    "nab_score",
    "point_adjusted_confusion",
    "point_adjusted_predictions",
    "pointwise_confusion",
    "range_confusion",
    "range_pr_auc",
    "range_pr_curve",
    "range_precision_recall",
    "scaled_sigmoid",
    "step_pr_auc",
    "vus",
]
