"""Evaluation metrics: range-based PR, PR-AUC, NAB and VUS.

All curve-based metrics run on the shared all-threshold sweep core in
:mod:`repro.metrics.sweep` — one sort of the score array answers every
threshold's confusion counts; the historical per-threshold loops are
retained as ``*_reference`` functions and pinned by the property tests.
"""

from repro.metrics.latency import LatencyResult, detection_latency
from repro.metrics.nab import (
    PROFILES,
    REWARD_LOW_FN,
    REWARD_LOW_FP,
    STANDARD,
    NABProfile,
    NABResult,
    NABSweep,
    detection_reward,
    nab_score,
    nab_score_profile,
    nab_sweep,
    nab_sweep_reference,
    scaled_sigmoid,
)
from repro.metrics.pointwise import (
    Confusion,
    candidate_thresholds,
    point_adjusted_confusion,
    point_adjusted_predictions,
    pointwise_confusion,
)
from repro.metrics.ranged import (
    RangeConfusion,
    range_confusion,
    range_pr_auc,
    range_pr_curve,
    range_pr_curve_reference,
    range_precision_recall,
    step_pr_auc,
    step_pr_auc_reference,
)
from repro.metrics.sweep import (
    PRCurve,
    RangeSweep,
    ScoreSweep,
    count_ge,
    mass_ge,
    pr_curve,
    range_sweep,
    step_auc,
    window_peaks,
)
from repro.metrics.vus import (
    VUSResult,
    buffered_label_weights,
    buffered_label_weights_reference,
    vus,
    weighted_curves_reference,
)

__all__ = [
    "Confusion",
    "LatencyResult",
    "NABProfile",
    "NABResult",
    "NABSweep",
    "PRCurve",
    "PROFILES",
    "REWARD_LOW_FN",
    "REWARD_LOW_FP",
    "RangeConfusion",
    "RangeSweep",
    "STANDARD",
    "ScoreSweep",
    "VUSResult",
    "buffered_label_weights",
    "buffered_label_weights_reference",
    "candidate_thresholds",
    "count_ge",
    "detection_latency",
    "detection_reward",
    "mass_ge",
    "nab_score",
    "nab_score_profile",
    "nab_sweep",
    "nab_sweep_reference",
    "point_adjusted_confusion",
    "point_adjusted_predictions",
    "pointwise_confusion",
    "pr_curve",
    "range_confusion",
    "range_pr_auc",
    "range_pr_curve",
    "range_pr_curve_reference",
    "range_precision_recall",
    "range_sweep",
    "scaled_sigmoid",
    "step_auc",
    "step_pr_auc",
    "step_pr_auc_reference",
    "vus",
    "weighted_curves_reference",
    "window_peaks",
]
