"""Numenta Anomaly Benchmark scoring (Lavin & Ahmad, 2015).

The NAB score rewards early detection inside each true anomaly window via
a scaled sigmoid over the detection's relative position, and penalizes
point-wise false positives.  Matching the paper's description:

- the **first** positive prediction inside a true window earns a reward of
  ``sigmoid(position)`` normalized so a detection at the window start is
  worth 1 and one at the window end approaches 0;
- each missed window costs ``a_fn`` (default 1);
- each false-positive *time step* costs ``1 / n_windows`` (the paper:
  "every time step in that interval contributes -1/|anomalies|") scaled by
  ``a_fp``;
- the total is normalized by the number of true windows, so a perfect
  detector scores 1 and an always-positive detector on a long stream goes
  deeply negative — reproducing the paper's very negative NAB values next
  to high range-based precision/recall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.core.types import AnomalyWindow, FloatArray, windows_from_labels
from repro.metrics.sweep import count_ge, mass_ge, window_peaks


def scaled_sigmoid(y: float) -> float:
    """NAB's scaled sigmoid ``2 / (1 + e^{5y}) - 1``.

    ``y`` is the detection position relative to the window, mapped so the
    window start is -1 and the window end is 0: early detections approach
    +0.987, detections at the window end approach 0, and positions after
    the window would go negative.
    """
    return 2.0 / (1.0 + math.exp(5.0 * y)) - 1.0


#: Normalizer so a detection exactly at the window start earns reward 1.
_MAX_REWARD = scaled_sigmoid(-1.0)


def detection_reward(detection: int, window: AnomalyWindow) -> float:
    """Reward in ``[0, 1]`` for the first detection at step ``detection``."""
    if not window.contains(detection):
        raise ValueError(f"step {detection} outside window {window}")
    span = max(len(window) - 1, 1)
    relative = (detection - window.start) / span - 1.0  # start -> -1, end -> 0
    return scaled_sigmoid(relative) / _MAX_REWARD


@dataclass(frozen=True)
class NABResult:
    """Decomposition of a NAB score."""

    score: float
    rewards: float
    n_detected: int
    n_missed: int
    n_false_positive_steps: int


@dataclass(frozen=True)
class NABProfile:
    """Application profile weighting FPs vs FNs (as in the real NAB).

    NAB ships three profiles; the reward structure differs only in the
    relative cost of false positives and misses:

    - ``STANDARD`` — balanced;
    - ``REWARD_LOW_FP`` — false alarms are expensive (e.g. paging an
      on-call operator);
    - ``REWARD_LOW_FN`` — misses are expensive (e.g. safety monitoring).
    """

    name: str
    a_fp: float
    a_fn: float


STANDARD = NABProfile("standard", a_fp=1.0, a_fn=1.0)
REWARD_LOW_FP = NABProfile("reward_low_FP", a_fp=2.0, a_fn=1.0)
REWARD_LOW_FN = NABProfile("reward_low_FN", a_fp=0.5, a_fn=2.0)

PROFILES = {p.name: p for p in (STANDARD, REWARD_LOW_FP, REWARD_LOW_FN)}


def nab_score(
    scores: FloatArray,
    labels: NDArray[np.int_],
    threshold: float,
    a_fp: float = 1.0,
    a_fn: float = 1.0,
) -> NABResult:
    """NAB score for the point predictions ``scores >= threshold``.

    Args:
        scores: anomaly scores, shape ``(T,)``.
        labels: binary ground truth, shape ``(T,)``.
        threshold: decision threshold.
        a_fp: weight of the per-step false-positive penalty.
        a_fn: weight of the per-window miss penalty.

    Returns:
        The normalized score together with its components.  Returns a
        score of 0 with empty components when there are no true windows.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError(
            f"scores shape {scores.shape} != labels shape {labels.shape}"
        )
    predicted = scores >= threshold
    true_windows = windows_from_labels(labels)
    if not true_windows:
        return NABResult(0.0, 0.0, 0, 0, int(predicted.sum()))

    n_windows = len(true_windows)
    rewards = 0.0
    n_detected = 0
    for window in true_windows:
        inside = np.flatnonzero(predicted[window.start : window.end])
        if inside.size:
            rewards += detection_reward(window.start + int(inside[0]), window)
            n_detected += 1
    n_missed = n_windows - n_detected

    outside_truth = predicted & ~labels.astype(bool)
    n_fp_steps = int(outside_truth.sum())

    raw = rewards - a_fn * n_missed - a_fp * n_fp_steps / n_windows
    return NABResult(
        score=raw / n_windows,
        rewards=rewards,
        n_detected=n_detected,
        n_missed=n_missed,
        n_false_positive_steps=n_fp_steps,
    )


def nab_score_profile(
    scores: FloatArray,
    labels: NDArray[np.int_],
    threshold: float,
    profile: NABProfile = STANDARD,
) -> NABResult:
    """NAB score under one of the application profiles."""
    return nab_score(
        scores, labels, threshold, a_fp=profile.a_fp, a_fn=profile.a_fn
    )


# ----------------------------------------------------------------------
# All-threshold sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NABSweep:
    """NAB score decomposition at every threshold (arrays aligned to
    ``thresholds``)."""

    thresholds: FloatArray
    scores: FloatArray
    rewards: FloatArray
    n_detected: NDArray[np.int_]
    n_missed: NDArray[np.int_]
    n_false_positive_steps: NDArray[np.int_]


def _window_rewards(scores: FloatArray, window: AnomalyWindow) -> FloatArray:
    """Vectorized :func:`detection_reward` for every step of one window."""
    positions = np.arange(window.start, window.end)
    span = max(len(window) - 1, 1)
    relative = (positions - window.start) / span - 1.0
    return (2.0 / (1.0 + np.exp(5.0 * relative)) - 1.0) / _MAX_REWARD


def nab_sweep(
    scores: FloatArray,
    labels: NDArray[np.int_],
    thresholds: FloatArray,
    a_fp: float = 1.0,
    a_fn: float = 1.0,
) -> NABSweep:
    """NAB scores at every threshold from one sorted pass.

    The reward term is the only non-trivial piece: at threshold ``t`` a
    window's reward is earned by its *first* step with score ``>= t``.
    Within a window, the first hit can only be a strict prefix-maximum
    position ``j`` — and it is the first hit exactly for thresholds in
    ``(prefix_max_before_j, scores[j]]``.  Summing rewards over those
    static intervals is two weighted suffix-sum lookups
    (:func:`repro.metrics.sweep.mass_ge`); detections and per-step false
    positives are plain ``count_ge`` queries.  Equivalent to calling
    :func:`nab_score` per threshold (see :func:`nab_sweep_reference`),
    in O((n + T) log n) instead of O(T · n).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError(
            f"scores shape {scores.shape} != labels shape {labels.shape}"
        )
    thresholds = np.asarray(thresholds, dtype=np.float64)
    true_windows = windows_from_labels(labels)
    n_thresholds = thresholds.size
    if not true_windows:
        fp_steps = count_ge(scores, thresholds)
        zeros_f = np.zeros(n_thresholds)
        zeros_i = np.zeros(n_thresholds, dtype=int)
        return NABSweep(
            thresholds=thresholds,
            scores=zeros_f,
            rewards=zeros_f.copy(),
            n_detected=zeros_i,
            n_missed=zeros_i.copy(),
            n_false_positive_steps=fp_steps,
        )

    n_windows = len(true_windows)
    detected = count_ge(window_peaks(scores, true_windows), thresholds)
    missed = n_windows - detected
    fp_steps = count_ge(scores[~labels.astype(bool)], thresholds)

    # First-hit reward intervals: per window, the strict prefix-maximum
    # positions j earn reward(j) for thresholds in (prev_record, s_j].
    hi_parts, lo_parts, reward_parts = [], [], []
    for window in true_windows:
        inside = scores[window.start : window.end]
        prefix_max = np.maximum.accumulate(inside)
        record = np.empty(inside.size, dtype=bool)
        record[0] = True
        record[1:] = inside[1:] > prefix_max[:-1]
        hi = inside[record]
        lo = np.concatenate(([-np.inf], hi[:-1]))
        hi_parts.append(hi)
        lo_parts.append(lo)
        reward_parts.append(_window_rewards(scores, window)[record])
    hi_all = np.concatenate(hi_parts)
    lo_all = np.concatenate(lo_parts)
    rewards_all = np.concatenate(reward_parts)
    rewards = mass_ge(hi_all, rewards_all, thresholds) - mass_ge(
        lo_all, rewards_all, thresholds
    )

    raw = rewards - a_fn * missed - a_fp * fp_steps / n_windows
    return NABSweep(
        thresholds=thresholds,
        scores=raw / n_windows,
        rewards=rewards,
        n_detected=detected,
        n_missed=missed,
        n_false_positive_steps=fp_steps,
    )


def nab_sweep_reference(
    scores: FloatArray,
    labels: NDArray[np.int_],
    thresholds: FloatArray,
    a_fp: float = 1.0,
    a_fn: float = 1.0,
) -> NABSweep:
    """One :func:`nab_score` call per threshold (the pinning reference)."""
    thresholds = np.asarray(thresholds, dtype=np.float64)
    results = [
        nab_score(scores, labels, float(t), a_fp=a_fp, a_fn=a_fn) for t in thresholds
    ]
    return NABSweep(
        thresholds=thresholds,
        scores=np.asarray([r.score for r in results]),
        rewards=np.asarray([r.rewards for r in results]),
        n_detected=np.asarray([r.n_detected for r in results]),
        n_missed=np.asarray([r.n_missed for r in results]),
        n_false_positive_steps=np.asarray(
            [r.n_false_positive_steps for r in results]
        ),
    )
